//! In-tree, offline facade for the `crossbeam` pieces this workspace uses:
//! a bounded MPMC channel with disconnect semantics (see
//! `shims/README.md`). Backed by a mutex-protected ring buffer and two
//! condvars — not lock-free like real crossbeam, but the pipeline moves
//! whole snapshots per message, so channel overhead is negligible.

#![warn(missing_docs)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Inner<T> {
        queue: Mutex<Shared<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: usize,
    }

    struct Shared<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a bounded channel.
    pub struct Sender<T>(Arc<Inner<T>>);

    /// The receiving half of a bounded channel.
    pub struct Receiver<T>(Arc<Inner<T>>);

    /// Creates a bounded channel with room for `capacity` in-flight
    /// messages (`capacity >= 1`).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        assert!(capacity >= 1, "bounded channel capacity must be >= 1");
        let inner = Arc::new(Inner {
            queue: Mutex::new(Shared { items: VecDeque::new(), senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails (returning
        /// the value) once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut shared = self.0.queue.lock().unwrap();
            loop {
                if shared.receivers == 0 {
                    return Err(SendError(value));
                }
                if shared.items.len() < self.0.capacity {
                    shared.items.push_back(value);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
                shared = self.0.not_full.wait(shared).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut shared = self.0.queue.lock().unwrap();
            shared.senders -= 1;
            if shared.senders == 0 {
                drop(shared);
                self.0.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives. Fails once the channel is empty
        /// and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut shared = self.0.queue.lock().unwrap();
            loop {
                if let Some(item) = shared.items.pop_front() {
                    self.0.not_full.notify_one();
                    return Ok(item);
                }
                if shared.senders == 0 {
                    return Err(RecvError);
                }
                shared = self.0.not_empty.wait(shared).unwrap();
            }
        }

        /// A blocking iterator over received messages; ends when the channel
        /// is empty and all senders are gone.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.queue.lock().unwrap().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut shared = self.0.queue.lock().unwrap();
            shared.receivers -= 1;
            if shared.receivers == 0 {
                drop(shared);
                self.0.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}
