//! In-tree, offline facade for the `rayon` API surface this workspace
//! uses: `slice.par_iter().map(f).collect()` and
//! `range.into_par_iter().map(f).collect()` (see `shims/README.md`).
//!
//! Unlike a pure sequential stub, `map` really fans out: the source items
//! are split into one contiguous block per available core and mapped on
//! scoped `std::thread`s, preserving order on collect. There is no work
//! stealing, which is fine for this workspace's uniform per-item cost
//! (SHA-1 over similar-size chunks, per-machine corpus synthesis).

#![warn(missing_docs)]

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

/// A parallel iterator: a description of work that [`collect`] executes
/// across threads.
///
/// [`collect`]: ParallelIterator::collect
pub trait ParallelIterator: Sized {
    /// The item type produced.
    type Item: Send;

    /// Executes the pipeline and returns all items, in order.
    fn drive(self) -> Vec<Self::Item>;

    /// Maps every item through `f` (in parallel once driven).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Executes the pipeline and gathers the results in source order.
    fn collect<C: From<Vec<Self::Item>>>(self) -> C {
        C::from(self.drive())
    }

    /// Executes the pipeline for its side effects.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        self.map(f).drive();
    }

    /// Executes the pipeline and sums the results.
    fn sum<S: std::iter::Sum<Self::Item>>(self) -> S {
        self.drive().into_iter().sum()
    }
}

/// Types convertible into a [`ParallelIterator`] by value.
pub trait IntoParallelIterator {
    /// The item type produced.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Types whose references convert into a [`ParallelIterator`] over `&Item`.
pub trait IntoParallelRefIterator<'a> {
    /// The (reference) item type produced.
    type Item: Send;
    /// The concrete parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` as a parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over the elements of a slice.
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn drive(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { slice: self }
    }
}

/// Parallel iterator over an integer range.
pub struct ParRange {
    range: std::ops::Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn drive(self) -> Vec<usize> {
        self.range.collect()
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// The result of [`ParallelIterator::map`]: the stage where the actual
/// fan-out happens.
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    I::Item: Send,
    R: Send,
    F: Fn(I::Item) -> R + Sync,
{
    type Item = R;

    fn drive(self) -> Vec<R> {
        let items = self.base.drive();
        parallel_map(items, &self.f)
    }
}

/// Maps `items` through `f` on up to `available_parallelism` scoped
/// threads, one contiguous block each, and returns results in order.
fn parallel_map<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let len = items.len();
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(len);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    let chunk = len.div_ceil(threads);
    let mut blocks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items.into_iter();
    for _ in 0..threads {
        blocks.push(items.by_ref().take(chunk).collect());
    }

    let mapped: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = blocks
            .into_iter()
            .map(|block| scope.spawn(move || block.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("rayon facade worker panicked")).collect()
    });
    mapped.into_iter().flatten().collect()
}
