//! In-tree, offline facade for the `bytes` crate: a cheaply-cloneable,
//! sliceable, immutable byte buffer (see `shims/README.md`).
//!
//! [`Bytes`] is an `Arc<[u8]>` plus a window; `clone` and `slice` are O(1)
//! and never copy, which is the property the workload generator and the
//! staged pipeline rely on.

#![warn(missing_docs)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply-cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    len: usize,
}

impl Bytes {
    /// Creates an empty buffer (no allocation).
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes in the buffer's window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns a view of a sub-range without copying (O(1), shares the
    /// underlying allocation).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of range {}", self.len);
        Bytes { data: Arc::clone(&self.data), start: self.start + start, len: end - start }
    }

    /// The buffer's window as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.start + self.len]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v), start: 0, len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len)
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}
