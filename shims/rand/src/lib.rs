//! In-tree, offline facade for the `rand` 0.10 API surface this workspace
//! uses: `StdRng::seed_from_u64`, `random()`, `random_range()` and
//! `fill_bytes()` (see `shims/README.md`).
//!
//! The generator is SplitMix64-seeded xoshiro256++ — statistically strong
//! for workload synthesis, deterministic for a given seed, and **not**
//! cryptographically secure (neither is the code this replaces for the
//! corpus-generation purpose it serves).

#![warn(missing_docs)]

/// Commonly used traits and types, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

/// Concrete generator implementations, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing sampling methods, automatically available on every
/// [`RngCore`].
pub trait Rng: RngCore + Sized {
    /// Samples a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable uniformly over their whole domain (the facade's stand-in
/// for `Distribution<StandardUniform>`).
pub trait Standard: Sized {
    /// Draws one uniform value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges over `T` that can be sampled uniformly, mirroring
/// `rand::distr::uniform::SampleRange` (the two-parameter shape matters:
/// it lets integer-literal ranges infer their type from the call site).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a bounded range, mirroring
/// `rand::distr::uniform::SampleUniform`.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[start, end)` (`inclusive = false`) or
    /// `[start, end]` (`inclusive = true`).
    fn sample_bounded<R: RngCore>(rng: &mut R, start: Self, end: Self, inclusive: bool) -> Self;
}

/// Uniform integer sampling via Lemire-style widening multiply, debiased by
/// rejection.
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling on the zone below the last full multiple of span.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounded<R: RngCore>(
                rng: &mut R,
                start: Self,
                end: Self,
                inclusive: bool,
            ) -> Self {
                // Two's-complement span arithmetic is correct for signed
                // types too: `end - start` in u64 wraps to the true width.
                if inclusive {
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        // Full-domain inclusive range of a 64-bit type.
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(uniform_u64(rng, span) as $t)
                } else {
                    assert!(start < end, "cannot sample empty range");
                    let span = (end as u64).wrapping_sub(start as u64);
                    start.wrapping_add(uniform_u64(rng, span) as $t)
                }
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_bounded(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        T::sample_bounded(rng, start, end, true)
    }
}

/// Generators seedable from fixed state, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The facade's standard generator: xoshiro256++ seeded via SplitMix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ step.
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}
