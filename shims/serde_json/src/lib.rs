//! In-tree, offline facade for the subset of `serde_json` this workspace
//! uses: `to_string[_pretty]`, `to_vec`, `from_str`, `from_slice`, the
//! [`Value`] tree and the [`json!`] macro (see `shims/README.md`).
//!
//! The implementation round-trips through the serde facade's `Content`
//! tree; the emitted JSON is deterministic (struct fields in declaration
//! order, object literals in source order).

#![warn(missing_docs)]

use serde::{Content, ContentError, Deserialize, Serialize};

mod parse;
mod write;

pub use parse::parse_content;

/// Error produced by JSON (de)serialization.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<ContentError> for Error {
    fn from(e: ContentError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::ser::to_content(value)?;
    let mut out = String::new();
    write::write_compact(&content, &mut out);
    Ok(out)
}

/// Serializes `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content = serde::ser::to_content(value)?;
    let mut out = String::new();
    write::write_pretty(&content, 0, &mut out);
    Ok(out)
}

/// Serializes `value` to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a `T` from a JSON string.
pub fn from_str<T>(s: &str) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let content = parse::parse_content(s).map_err(Error)?;
    T::deserialize(content).map_err(Into::into)
}

/// Deserializes a `T` from JSON bytes (must be UTF-8).
pub fn from_slice<T>(bytes: &[u8]) -> Result<T, Error>
where
    T: for<'de> Deserialize<'de>,
{
    let s = std::str::from_utf8(bytes).map_err(|e| Error(e.to_string()))?;
    from_str(s)
}

/// A dynamically-typed JSON value, as built by the [`json!`] macro.
///
/// Objects preserve insertion order (unlike crates-io serde_json's sorted
/// `Map`), which keeps exhibit output stable and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// A JSON number: unsigned, signed, or floating-point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point.
    F64(f64),
}

impl Value {
    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::U64(v) => Value::Number(Number::U64(v)),
            Content::I64(v) => Value::Number(Number::I64(v)),
            Content::F64(v) => Value::Number(Number::F64(v)),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(entries) => Value::Object(
                entries.into_iter().map(|(k, v)| (k, Value::from_content(v))).collect(),
            ),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number::U64(v)) => Content::U64(v),
            Value::Number(Number::I64(v)) => Content::I64(v),
            Value::Number(Number::F64(v)) => Content::F64(v),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(entries) => {
                Content::Map(entries.into_iter().map(|(k, v)| (k, v.into_content())).collect())
            }
        }
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.clone().into_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(deserializer.deserialize_content()?))
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        write::write_compact(&self.clone().into_content(), &mut out);
        f.write_str(&out)
    }
}

/// Converts any `Serialize` value into a [`Value`] tree.
///
/// Serialization into `Value` is infallible for every type in this
/// workspace; a custom error from a hand-written `Serialize` impl panics.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    Value::from_content(
        serde::ser::to_content(value).expect("serialization into Value cannot fail"),
    )
}

/// Builds a [`Value`] from a JSON-like literal.
///
/// Supports the shapes the workspace uses: flat or nested object/array
/// literals whose values are expressions, plus bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}
