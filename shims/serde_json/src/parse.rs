//! A small recursive-descent JSON parser producing a `Content` tree.

use serde::Content;

/// Parses a JSON document into a [`Content`] tree.
///
/// Accepts exactly one top-level value surrounded by optional whitespace.
pub fn parse_content(input: &str) -> Result<Content, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(|c| c as char), self.pos)),
        }
    }

    fn parse_array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect a \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(cp).ok_or("invalid unicode escape".to_string())?,
                            );
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is validated UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }
}
