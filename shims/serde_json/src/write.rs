//! JSON text emission from a `Content` tree.

use serde::Content;

/// Writes `c` as compact JSON (no whitespace).
pub(crate) fn write_compact(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => write_f64(*v, out),
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

/// Writes `c` as 2-space-indented JSON at the given indent depth.
pub(crate) fn write_pretty(c: &Content, depth: usize, out: &mut String) {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_pretty(item, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                indent(depth + 1, out);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, depth + 1, out);
            }
            out.push('\n');
            indent(depth, out);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

fn indent(depth: usize, out: &mut String) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// Writes an `f64` the way serde_json does: finite values via the shortest
/// round-trippable decimal, non-finite values as `null`.
fn write_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = v.to_string();
        out.push_str(&s);
        // Keep a float marker so the value parses back as F64 when exact
        // integral (e.g. 2.0 -> "2.0", not "2").
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
