//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for
//! the in-tree serde facade (`shims/serde`).
//!
//! Scope is intentionally the subset this workspace uses — and the macros
//! fail loudly (compile error) on anything outside it:
//!
//! * non-generic structs with named fields → serialized as a `Content::Map`
//!   keyed by field name, in declaration order;
//! * non-generic enums whose variants are all units → serialized as a
//!   `Content::Str` of the variant name (matching serde_json's
//!   externally-tagged representation for unit variants).
//!
//! `#[serde(...)]` attributes are not supported and are rejected rather
//! than silently ignored.
//!
//! Everything is done with `proc_macro` alone (no `syn`/`quote`): the item
//! is scanned for its name and field/variant list, and the impl is emitted
//! as a formatted string parsed back into a `TokenStream`.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the input item turned out to be.
enum Item {
    /// Struct name + named fields, in declaration order.
    Struct(String, Vec<String>),
    /// Enum name + unit variant names, in declaration order.
    Enum(String, Vec<String>),
}

/// Derives the facade's `Serialize` for a named-field struct or unit enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut body = String::new();
            body.push_str(&format!(
                "let mut __map: Vec<(String, ::serde::Content)> = \
                 Vec::with_capacity({});\n",
                fields.len()
            ));
            for f in &fields {
                body.push_str(&format!(
                    "__map.push((\"{f}\".to_string(), \
                     ::serde::ser::to_content(&self.{f})\
                     .map_err(::serde::ser::lift_err::<S::Error>)?));\n"
                ));
            }
            body.push_str("__serializer.serialize_content(::serde::Content::Map(__map))");
            impl_serialize(&name, &body)
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!("{name}::{v} => __serializer.serialize_str(\"{v}\"),\n"));
            }
            impl_serialize(&name, &format!("match self {{ {arms} }}"))
        }
    };
    code.parse().expect("serde_derive: generated invalid Serialize impl")
}

/// Derives the facade's `Deserialize` for a named-field struct or unit enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut body = String::new();
            body.push_str(&format!(
                "let mut __map = match __deserializer.deserialize_content()? {{\n\
                     ::serde::Content::Map(m) => m,\n\
                     _ => return Err(::serde::de::Error::custom(\n\
                         \"expected map for struct {name}\")),\n\
                 }};\n"
            ));
            for (i, f) in fields.iter().enumerate() {
                body.push_str(&format!(
                    "let __field{i} = {{\n\
                         let __idx = __map.iter().position(|(k, _)| k == \"{f}\")\n\
                             .ok_or_else(|| <D::Error as ::serde::de::Error>::custom(\n\
                                 \"missing field `{f}` in {name}\"))?;\n\
                         ::serde::Deserialize::deserialize(__map.swap_remove(__idx).1)\n\
                             .map_err(::serde::de::lift_err::<D::Error>)?\n\
                     }};\n"
                ));
            }
            let ctor: Vec<String> =
                fields.iter().enumerate().map(|(i, f)| format!("{f}: __field{i}")).collect();
            body.push_str(&format!("Ok({name} {{ {} }})", ctor.join(", ")));
            impl_deserialize(&name, &body)
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!("\"{v}\" => Ok({name}::{v}),\n"));
            }
            let body = format!(
                "match __deserializer.deserialize_content()? {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n\
                         {arms}\
                         other => Err(::serde::de::Error::custom(format!(\n\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     _ => Err(::serde::de::Error::custom(\"expected string for enum {name}\")),\n\
                 }}"
            );
            impl_deserialize(&name, &body)
        }
    };
    code.parse().expect("serde_derive: generated invalid Deserialize impl")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, __serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(__deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// Scans the derive input for the item name and its fields/variants.
fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let mut kind: Option<&'static str> = None;

    // Walk the prefix: outer attributes, visibility, then `struct`/`enum`.
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#[...]` attribute: swallow the bracket group. Reject
                // serde attributes instead of silently mis-serializing.
                if let Some(TokenTree::Group(g)) = iter.next() {
                    if g.stream().to_string().starts_with("serde") {
                        panic!("serde facade derive: #[serde(...)] attributes are unsupported");
                    }
                }
            }
            TokenTree::Ident(id) => match id.to_string().as_str() {
                "pub" => {
                    // Swallow a `(crate)`-style visibility group if present.
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                "struct" => {
                    kind = Some("struct");
                    break;
                }
                "enum" => {
                    kind = Some("enum");
                    break;
                }
                _ => {}
            },
            _ => {}
        }
    }

    let kind = kind.expect("serde facade derive: expected `struct` or `enum`");
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde facade derive: expected item name, found {other:?}"),
    };

    // The next brace group is the body. Anything before it that isn't the
    // body means generics/where-clauses, which this facade does not support.
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde facade derive: only non-generic brace-bodied items are supported \
             (struct {name}: found {other:?})"
        ),
    };

    if kind == "struct" {
        Item::Struct(name, parse_named_fields(body))
    } else {
        Item::Enum(name, parse_unit_variants(body))
    }
}

/// Extracts field names from a named-field struct body.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    loop {
        // Skip attributes (doc comments included) and visibility.
        match iter.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
                continue;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        // Field name.
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde facade derive: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde facade derive: expected `:` after field `{name}`, found {other:?} \
                 (tuple structs are unsupported)"
            ),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

/// Extracts variant names from an all-unit-variant enum body.
fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut iter = body.into_iter().peekable();
    while let Some(tt) = iter.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                iter.next(); // the [...] group
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            TokenTree::Ident(id) => {
                let v = id.to_string();
                if let Some(TokenTree::Group(_)) = iter.peek() {
                    panic!(
                        "serde facade derive: enum variant `{v}` carries data; \
                         only unit variants are supported"
                    );
                }
                variants.push(v);
            }
            other => panic!("serde facade derive: unexpected token in enum body: {other:?}"),
        }
    }
    variants
}
