//! Deserialization half of the facade: [`Deserialize`], [`Deserializer`]
//! and the [`Content`]-destructuring impls the derive macros call into.

use crate::{Content, ContentError};

/// A data structure that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Deserializes `Self` from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// A data format that can deserialize into the facade's data model.
///
/// A format decodes itself into one self-describing [`Content`] tree; the
/// `Deserialize` impls then destructure that tree.
pub trait Deserializer<'de>: Sized {
    /// Error produced on failure.
    type Error: Error;

    /// Decodes the input into a [`Content`] tree.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// Trait for deserialization error types, mirroring `serde::de::Error`.
pub trait Error: Sized + std::fmt::Display {
    /// Builds an error from an arbitrary display-able message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

impl<'de> Deserializer<'de> for Content {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self)
    }
}

/// Forwards a [`ContentError`] into the deserializer's error type (the dual
/// of [`crate::ser::lift_err`], used when recursing into sub-content).
pub fn lift_err<E: Error>(e: ContentError) -> E {
    E::custom(e)
}

fn type_err<E: Error>(expected: &str, got: &Content) -> E {
    let kind = match got {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "float",
        Content::Str(_) => "string",
        Content::Seq(_) => "sequence",
        Content::Map(_) => "map",
    };
    E::custom(format_args!("expected {expected}, found {kind}"))
}

macro_rules! impl_deserialize_uint {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::U64(v) => <$t>::try_from(v)
                        .map_err(|_| D::Error::custom(format_args!("{v} out of range"))),
                    other => Err(type_err(stringify!($t), &other)),
                }
            }
        }
    )*};
}
impl_deserialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let wide: i64 = match deserializer.deserialize_content()? {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v)
                        .map_err(|_| D::Error::custom(format_args!("{v} out of range")))?,
                    other => return Err(type_err(stringify!($t), &other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format_args!("{wide} out of range")))
            }
        }
    )*};
}
impl_deserialize_int!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(type_err("f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(type_err("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(v) => Ok(v),
            other => Err(type_err("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(()),
            other => Err(type_err("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(other).map(Some).map_err(lift_err),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(items) => {
                items.into_iter().map(|c| T::deserialize(c).map_err(lift_err)).collect()
            }
            other => Err(type_err("sequence", &other)),
        }
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal, $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(items) => {
                        if items.len() != $len {
                            return Err(D::Error::custom(format_args!(
                                "expected tuple of length {}, found {}", $len, items.len()
                            )));
                        }
                        let mut it = items.into_iter();
                        Ok(($($name::deserialize(it.next().expect("length checked"))
                            .map_err(lift_err)?,)+))
                    }
                    other => Err(type_err("tuple sequence", &other)),
                }
            }
        }
    )*};
}
impl_deserialize_tuple! {
    (2, T0, T1)
    (3, T0, T1, T2)
    (4, T0, T1, T2, T3)
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::deserialize(v).map_err(lift_err)?)))
                .collect(),
            other => Err(type_err("map", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for std::collections::HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| Ok((k, V::deserialize(v).map_err(lift_err)?)))
                .collect(),
            other => Err(type_err("map", &other)),
        }
    }
}
