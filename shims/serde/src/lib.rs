//! In-tree, offline facade for the subset of the `serde` data model used by
//! this workspace (see `shims/README.md` for the why and the contract).
//!
//! The design deliberately collapses serde's visitor machinery into a small
//! self-describing [`Content`] tree: serializers accept a `Content`,
//! deserializers yield one, and the derive macros (from the sibling
//! `serde_derive` facade) build/destructure it. The public trait names and
//! method signatures match real serde closely enough that every manual
//! `impl Serialize`/`impl Deserialize` in the workspace compiles unchanged,
//! and swapping back to crates-io serde is a one-line manifest change.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

/// A self-describing serialized value: the facade's entire data model.
///
/// Maps preserve insertion order (derive order for structs), which keeps
/// emitted JSON stable across runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / Rust `Option::None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (all of `u8..=u64` and `usize` widen to this).
    U64(u64),
    /// A signed integer (only used for values that don't fit `U64`).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A sequence (`Vec`, slices, tuples).
    Seq(Vec<Content>),
    /// A key-value map (structs, string-keyed maps).
    Map(Vec<(String, Content)>),
}

/// The error type produced while building or destructuring [`Content`].
#[derive(Debug, Clone)]
pub struct ContentError(String);

impl ContentError {
    /// Creates an error carrying `msg`.
    pub fn new(msg: impl Into<String>) -> Self {
        ContentError(msg.into())
    }
}

impl std::fmt::Display for ContentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}
