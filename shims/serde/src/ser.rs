//! Serialization half of the facade: [`Serialize`], [`Serializer`] and the
//! [`Content`]-building helpers the derive macros call into.

use crate::{Content, ContentError};

/// A data structure that can be serialized.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data format that can serialize the facade's data model.
///
/// Unlike real serde there is no visitor plumbing: compound values are
/// funneled through [`Serializer::serialize_content`] as a pre-built
/// [`Content`] tree. The scalar methods exist so that the workspace's manual
/// `impl Serialize` blocks (which call e.g. `serialize_str`) compile
/// unchanged.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error produced on failure.
    type Error: Error;

    /// Serializes a boolean.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes a signed integer.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an unsigned integer.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a floating-point number.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit/null value.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes an arbitrary pre-built [`Content`] tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// Trait for serialization error types, mirroring `serde::ser::Error`.
pub trait Error: Sized + std::fmt::Display {
    /// Builds an error from an arbitrary display-able message.
    fn custom<T: std::fmt::Display>(msg: T) -> Self;
}

/// Serializes `value` into a [`Content`] tree.
///
/// This is the workhorse behind the derive macros and `serde_json`: every
/// compound `Serialize` impl reduces its fields to `Content` with this and
/// hands the result to [`Serializer::serialize_content`].
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// A [`Serializer`] whose output is the [`Content`] tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_bool(self, v: bool) -> Result<Content, ContentError> {
        Ok(Content::Bool(v))
    }
    fn serialize_i64(self, v: i64) -> Result<Content, ContentError> {
        if v >= 0 {
            Ok(Content::U64(v as u64))
        } else {
            Ok(Content::I64(v))
        }
    }
    fn serialize_u64(self, v: u64) -> Result<Content, ContentError> {
        Ok(Content::U64(v))
    }
    fn serialize_f64(self, v: f64) -> Result<Content, ContentError> {
        Ok(Content::F64(v))
    }
    fn serialize_str(self, v: &str) -> Result<Content, ContentError> {
        Ok(Content::Str(v.to_string()))
    }
    fn serialize_unit(self) -> Result<Content, ContentError> {
        Ok(Content::Null)
    }
    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Forwards a [`ContentError`] into the serializer's error type.
///
/// Used by derived and container impls: inner fields serialize through
/// [`to_content`] (error type `ContentError`) while the outer call must
/// return `S::Error`.
pub fn lift_err<E: Error>(e: ContentError) -> E {
    E::custom(e)
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
impl_serialize_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_unit(),
        }
    }
}

fn seq_to_content<'a, T, I, S>(items: I, serializer: S) -> Result<S::Ok, S::Error>
where
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
    S: Serializer,
{
    let seq: Result<Vec<Content>, ContentError> = items.into_iter().map(to_content).collect();
    serializer.serialize_content(Content::Seq(seq.map_err(lift_err)?))
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_content(self.iter(), serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_content(self.iter(), serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        seq_to_content(self.iter(), serializer)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let seq = vec![$(to_content(&self.$idx).map_err(lift_err)?),+];
                serializer.serialize_content(Content::Seq(seq))
            }
        }
    )*};
}
impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = Vec::with_capacity(self.len());
        for (k, v) in self {
            map.push((k.clone(), to_content(v).map_err(lift_err)?));
        }
        serializer.serialize_content(Content::Map(map))
    }
}

impl<V: Serialize, H: std::hash::BuildHasher> Serialize
    for std::collections::HashMap<String, V, H>
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Sort for deterministic output; HashMap iteration order is random.
        let mut entries: Vec<(&String, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        let mut map = Vec::with_capacity(entries.len());
        for (k, v) in entries {
            map.push((k.clone(), to_content(v).map_err(lift_err)?));
        }
        serializer.serialize_content(Content::Map(map))
    }
}
