//! In-tree, offline facade for the `criterion` API surface this workspace
//! uses (see `shims/README.md`).
//!
//! Compared to real criterion there is no statistical analysis, outlier
//! rejection, or HTML report: each benchmark is warmed up briefly, then
//! timed over enough iterations to fill a fixed measurement window, and a
//! single `median-of-batches ns/iter` line (plus derived throughput) is
//! printed. That is deliberately lightweight but stable enough to compare
//! an `obs`-on and `obs`-off build of the same benchmark.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs `f` as a named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string(), throughput: None }
    }
}

/// A group of related benchmarks sharing a throughput definition.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Declares how much work one iteration performs, enabling derived
    /// throughput output.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Adjusts the sample count (accepted for API compatibility; the facade
    /// sizes its measurement window automatically).
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Runs `f` as a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_benchmark(&format!("{}/{}", self.name, id.0), self.throughput, f);
        self
    }

    /// Runs `f` with a fixed input as a benchmark inside this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.0);
        run_benchmark(&name, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (printing happens eagerly; this is a no-op kept
    /// for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }

    /// An id made of just a displayed parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId(name.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId(name)
    }
}

/// The amount of work one benchmark iteration performs.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many bytes each.
    Bytes(u64),
    /// Iterations process this many elements each.
    Elements(u64),
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
}

impl Bencher {
    /// Times `f`, storing the measured cost per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run for ~20ms to populate caches and settle clocks.
        let warmup_end = Instant::now() + Duration::from_millis(20);
        let mut warmup_iters: u64 = 0;
        while Instant::now() < warmup_end {
            black_box(f());
            warmup_iters += 1;
        }

        // Pick a batch size that keeps each timed batch around 5ms, then
        // take the median of several batches (robust to scheduler noise).
        let per_iter_est = Duration::from_millis(20).as_nanos() as f64 / warmup_iters.max(1) as f64;
        let batch = ((5_000_000.0 / per_iter_est.max(1.0)) as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, throughput: Option<Throughput>, mut f: F) {
    let mut bencher = Bencher { ns_per_iter: 0.0 };
    f(&mut bencher);
    let ns = bencher.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if ns > 0.0 => {
            let gib_s = bytes as f64 / ns * 1e9 / (1u64 << 30) as f64;
            format!("  ({gib_s:.3} GiB/s)")
        }
        Some(Throughput::Elements(elems)) if ns > 0.0 => {
            let melem_s = elems as f64 / ns * 1e9 / 1e6;
            format!("  ({melem_s:.3} Melem/s)")
        }
        _ => String::new(),
    };
    println!("{name:<50} {ns:>14.1} ns/iter{rate}");
}

/// Declares a group function running the listed benchmark functions,
/// mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
