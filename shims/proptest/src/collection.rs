//! Collection strategies, mirroring `proptest::collection`.

use crate::test_runner::TestRng;
use crate::Strategy;

/// A length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// The strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max - self.size.min) as u64;
        let len = self.size.min + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
