//! Fixed-size array strategies, mirroring `proptest::array`.

use crate::test_runner::TestRng;
use crate::Strategy;

/// A strategy producing `[S::Value; 20]` with each element drawn
/// independently from `element`.
pub fn uniform20<S: Strategy>(element: S) -> Uniform20<S> {
    Uniform20 { element }
}

/// The strategy returned by [`uniform20`].
pub struct Uniform20<S> {
    element: S,
}

impl<S: Strategy> Strategy for Uniform20<S> {
    type Value = [S::Value; 20];
    fn generate(&self, rng: &mut TestRng) -> [S::Value; 20] {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
