//! In-tree, offline facade for the `proptest` API surface this workspace
//! uses (see `shims/README.md`).
//!
//! Semantics versus real proptest:
//!
//! * inputs are generated from a deterministic per-test RNG (seeded from
//!   the test's source location), so failures reproduce across runs;
//! * there is **no shrinking** — a failing case reports the panic from the
//!   property body as-is;
//! * `prop_assert!`/`prop_assert_eq!` are plain `assert!`s.
//!
//! Strategies are generators: [`Strategy::generate`] draws one value from a
//! [`test_runner::TestRng`]. Ranges, tuples, `any::<T>()`, `Just`,
//! `prop_map`, `prop_oneof!`, `collection::vec` and `array::uniform20`
//! cover every call site in the workspace.

#![warn(missing_docs)]

pub mod array;
pub mod collection;
pub mod test_runner;

use test_runner::TestRng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, BoxedStrategy, Just, Strategy};
    // Macros are exported at crate root; surface them like the real prelude
    // does, together with the `prop` module alias.
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { base: self, f }
    }

    /// Erases the strategy type (needed by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// A strategy that always yields a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one uniformly random value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The canonical whole-domain strategy for `A`.
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range strategy");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// A choice among same-valued strategies, built by [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a uniform choice over `arms` (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Picks uniformly among the listed strategies (all must yield the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a property-body condition (plain `assert!` in this facade).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts property-body equality (plain `assert_eq!` in this facade).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Declares property tests: each `fn name(binding in strategy, ...)` block
/// becomes a `#[test]` running the body over `ProptestConfig::cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($config) $($rest)*);
    };
    (@with ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($binding:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            // Location-derived base seed: deterministic, distinct per test.
            let seed = $crate::test_runner::location_seed(file!(), line!(), column!());
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::new(seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                $(let $binding = $crate::Strategy::generate(&$strategy, &mut rng);)+
                $body
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
