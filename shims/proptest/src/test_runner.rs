//! Test-runner configuration and the deterministic RNG behind the facade.

/// Configuration for a `proptest!` block, mirroring
/// `proptest::test_runner::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps un-configured property
        // blocks fast while still exploring a useful input volume.
        ProptestConfig { cases: 64 }
    }
}

/// Derives a per-test base seed from the test's source location, so every
/// run of the same binary explores the same inputs.
pub fn location_seed(file: &str, line: u32, column: u32) -> u64 {
    // FNV-1a over the location string.
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in file.bytes().chain(line.to_le_bytes()).chain(column.to_le_bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The deterministic generator driving strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}
