//! In-tree, offline facade for `parking_lot`'s `Mutex`/`RwLock` API,
//! backed by `std::sync` (see `shims/README.md`).
//!
//! The semantic difference this facade papers over is poisoning: like real
//! parking_lot, `lock()`/`read()`/`write()` return guards directly and a
//! panicked holder does not poison the lock for later users.

#![warn(missing_docs)]

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the inner value (no locking needed: `&mut self`
    /// proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock that hands out guards without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutably borrows the inner value.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}
