//! Differential tests: every engine's measurements are bounded by an
//! engine-independent ground truth computed directly over the corpus.

use mhd_chunking::{Chunker, RabinChunker};
use mhd_core::EngineConfig;
use mhd_hash::{sha1, ChunkHash, FxHashSet};
use mhd_integration::{run_named, ALL_ENGINES};
use mhd_workload::{Corpus, CorpusSpec};

/// Exact chunk-level duplicate bytes: a global hash set over the whole
/// corpus at the given ECS — the ceiling for chunk-aligned deduplication.
fn chunk_level_dup_bytes(corpus: &Corpus, ecs: usize) -> u64 {
    let chunker = RabinChunker::with_avg(ecs).unwrap();
    let mut seen: FxHashSet<ChunkHash> = FxHashSet::default();
    let mut dup = 0u64;
    for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            for s in chunker.spans(&file.data) {
                if !seen.insert(sha1(&file.data[s.offset..s.end()])) {
                    dup += s.len as u64;
                }
            }
        }
    }
    dup
}

#[test]
fn no_engine_exceeds_the_chunk_level_ceiling_much() {
    // MHD's byte-granular HHR can legitimately exceed the *chunk-aligned*
    // ceiling slightly (it removes partial-chunk duplicates inside merged
    // blocks); everyone else must stay at or below it.
    let corpus = Corpus::generate(CorpusSpec { seed: 71, ..CorpusSpec::paper_like(12 << 20) });
    let ecs = 1024;
    let ceiling = chunk_level_dup_bytes(&corpus, ecs);
    assert!(ceiling > corpus.total_bytes() / 3, "corpus must be duplicate-rich");

    let mut config = EngineConfig::new(ecs, 8);
    config.cache_manifests = 8;
    for name in ALL_ENGINES {
        let (report, _) = run_named(name, &corpus, config);
        let slack = if name == "bf-mhd" { ceiling / 20 } else { 0 };
        assert!(
            report.dup_bytes <= ceiling + slack,
            "{name} found {} dup bytes above the ceiling {ceiling}",
            report.dup_bytes
        );
    }
}

#[test]
fn cdc_dominates_big_chunk_engines_on_data() {
    // The full-index small-chunk engine is the data-only reference the
    // big-chunk-first engines approximate from below.
    let corpus = Corpus::generate(CorpusSpec { seed: 72, ..CorpusSpec::paper_like(12 << 20) });
    let mut config = EngineConfig::new(1024, 8);
    config.cache_manifests = 8;
    let (cdc, _) = run_named("cdc", &corpus, config);
    for name in ["bimodal", "subchunk", "fbc"] {
        let (r, _) = run_named(name, &corpus, config);
        assert!(
            r.dup_bytes <= cdc.dup_bytes,
            "{name} {} should not out-dedup full-index CDC {}",
            r.dup_bytes,
            cdc.dup_bytes
        );
    }
}

#[test]
fn stored_data_never_below_generator_fresh_bytes() {
    // The generator knows exactly how many fresh (never-seen) bytes it
    // emitted; no lossless deduplicator can store fewer.
    let corpus = Corpus::generate(CorpusSpec::tiny(73));
    let floor = corpus.stats.fresh_bytes;
    for name in ALL_ENGINES {
        let (report, _) = run_named(name, &corpus, EngineConfig::new(512, 8));
        assert!(
            report.ledger.stored_data_bytes >= floor * 9 / 10,
            "{name} stored {} below the information floor {floor}",
            report.ledger.stored_data_bytes
        );
    }
}
