//! The paper's comparative claims, checked as executable assertions on a
//! mid-sized corpus (the full-scale versions are the `mhd-bench` binaries;
//! these run in the test suite at reduced size).

use mhd_core::metrics::{compute, DiskModel};
use mhd_core::EngineConfig;
use mhd_integration::run_named;
use mhd_workload::{Corpus, CorpusSpec};

fn corpus() -> Corpus {
    Corpus::generate(CorpusSpec { seed: 77, ..CorpusSpec::paper_like(24 << 20) })
}

fn config() -> EngineConfig {
    let mut c = EngineConfig::new(1024, 16);
    c.cache_manifests = 8;
    c.bloom_bytes = 64 << 10;
    c
}

#[test]
fn mhd_has_least_total_metadata() {
    // Fig. 7(d): "The overall performance of the BF-MHD algorithm was the
    // best among the algorithms compared."
    let corpus = corpus();
    let (mhd, _) = run_named("bf-mhd", &corpus, config());
    for other in ["bimodal", "subchunk", "sparse-indexing", "cdc"] {
        let (r, _) = run_named(other, &corpus, config());
        assert!(
            mhd.ledger.total_metadata_bytes() < r.ledger.total_metadata_bytes(),
            "BF-MHD metadata {} must undercut {other}'s {}",
            mhd.ledger.total_metadata_bytes(),
            r.ledger.total_metadata_bytes()
        );
    }
}

#[test]
fn mhd_has_best_real_der() {
    // Fig. 8(b): "BF-MHD achieved the best real DER."
    let corpus = corpus();
    let disk = DiskModel::default();
    let (mhd, _) = run_named("bf-mhd", &corpus, config());
    let mhd_real = compute(&mhd, &disk).real_der;
    for other in ["bimodal", "subchunk", "sparse-indexing"] {
        let (r, _) = run_named(other, &corpus, config());
        let real = compute(&r, &disk).real_der;
        assert!(mhd_real > real, "BF-MHD real DER {mhd_real:.3} must beat {other}'s {real:.3}");
    }
}

#[test]
fn manifest_entries_scale_with_sd() {
    // §IV: MHD's manifests hold ~2N/SD entries — doubling SD roughly
    // halves manifest bytes on fresh data.
    let corpus = Corpus::generate(CorpusSpec {
        seed: 78,
        snapshots: 1, // fresh data only: no HHR growth
        ..CorpusSpec::paper_like(8 << 20)
    });
    let mut small_sd = config();
    small_sd.sd = 8;
    let mut large_sd = config();
    large_sd.sd = 32;
    let (a, _) = run_named("bf-mhd", &corpus, small_sd);
    let (b, _) = run_named("bf-mhd", &corpus, large_sd);
    let ratio = a.ledger.manifest_bytes as f64 / b.ledger.manifest_bytes.max(1) as f64;
    assert!(
        (2.0..8.0).contains(&ratio),
        "manifest bytes should shrink ~4x from SD 8 to SD 32, got {ratio:.2}x"
    );
}

#[test]
fn smaller_sd_improves_real_der_tradeoff() {
    // Fig. 9: "smaller SD led to better trade-offs between the real DER
    // and MetaDataRatio."
    let corpus = corpus();
    let disk = DiskModel::default();
    let mut reals = Vec::new();
    for sd in [32usize, 16, 8] {
        let mut c = config();
        c.sd = sd;
        let (r, _) = run_named("bf-mhd", &corpus, c);
        reals.push(compute(&r, &disk).real_der);
    }
    assert!(
        reals[2] >= reals[0] - 0.05,
        "real DER at SD 8 ({:.3}) should not lose to SD 32 ({:.3})",
        reals[2],
        reals[0]
    );
}

#[test]
fn cdc_finds_most_data_duplicates_but_pays_in_metadata() {
    // The full-index flat CDC is the data-only upper bound among the
    // hook-based engines, and the most metadata-hungry (512F + 312N).
    let corpus = corpus();
    let (cdc, _) = run_named("cdc", &corpus, config());
    let (mhd, _) = run_named("bf-mhd", &corpus, config());
    assert!(cdc.dup_bytes >= mhd.dup_bytes);
    assert!(cdc.ledger.inodes_hooks > 4 * mhd.ledger.inodes_hooks);
}

#[test]
fn bloom_filter_suppresses_most_fresh_lookups() {
    // §IV assumes "the bloom filter eliminates all queries for
    // non-duplicate hash values"; measured, the suppressed count must
    // dominate the on-disk hook probes for fresh-heavy input.
    let corpus = corpus();
    let (r, _) = run_named("bf-mhd", &corpus, config());
    assert!(
        r.stats.bloom_suppressed > r.stats.hook_input,
        "suppressed {} vs hook probes {}",
        r.stats.bloom_suppressed,
        r.stats.hook_input
    );
}

#[test]
fn mhd_io_beats_others_when_inequality_holds() {
    // §IV: "when 3L < D/SD, the number of disk accesses for MHD is lower
    // than all other algorithms compared" — checked with measured counts
    // when the measured workload satisfies the precondition.
    let corpus = corpus();
    let (mhd, _) = run_named("bf-mhd", &corpus, config());
    let (cdc, _) = run_named("cdc", &corpus, config());
    if 3 * mhd.dup_slices < cdc.chunks_dup / 16 {
        for other in ["bimodal", "cdc"] {
            let (r, _) = run_named(other, &corpus, config());
            assert!(
                mhd.stats.total_with_bloom() < r.stats.total_with_bloom(),
                "MHD accesses {} vs {other} {}",
                mhd.stats.total_with_bloom(),
                r.stats.total_with_bloom()
            );
        }
    }
}
