//! End-to-end correctness across all six engines: byte-exact restore,
//! conservation of bytes, and metric sanity over a shared corpus.

use mhd_core::metrics::{compute, DiskModel};
use mhd_core::{restore, EngineConfig};
use mhd_integration::{run_named, ALL_ENGINES};
use mhd_workload::{Corpus, CorpusSpec};

fn corpus() -> Corpus {
    Corpus::generate(CorpusSpec::tiny(1234))
}

#[test]
fn every_engine_restores_byte_exactly() {
    let corpus = corpus();
    let total_files: usize = corpus.snapshots.iter().map(|s| s.files.len()).sum();
    for name in ALL_ENGINES {
        let (_, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let verified = restore::verify_corpus(&mut substrate, &corpus)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(verified, total_files, "{name}");
    }
}

#[test]
fn bytes_are_conserved() {
    // Every input byte is either stored or accounted as duplicate.
    let corpus = corpus();
    for name in ALL_ENGINES {
        let (report, _) = run_named(name, &corpus, EngineConfig::new(512, 8));
        assert_eq!(report.input_bytes, corpus.total_bytes(), "{name}");
        assert_eq!(
            report.ledger.stored_data_bytes + report.dup_bytes,
            report.input_bytes,
            "{name}: stored + duplicate must equal input"
        );
    }
}

#[test]
fn metrics_are_sane_for_every_engine() {
    let corpus = corpus();
    for name in ALL_ENGINES {
        let (report, _) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let m = compute(&report, &DiskModel::default());
        assert!(m.data_only_der >= 1.0, "{name}: data DER {}", m.data_only_der);
        assert!(m.real_der >= 1.0, "{name}: real DER {}", m.real_der);
        assert!(m.real_der <= m.data_only_der, "{name}");
        assert!(m.metadata_ratio > 0.0 && m.metadata_ratio < 0.5, "{name}: {}", m.metadata_ratio);
        assert!(m.throughput_ratio > 0.0, "{name}");
        assert!(report.dup_slices > 0, "{name}: the tiny corpus has duplication");
    }
}

#[test]
fn ledger_matches_backend_contents() {
    // The accounting ledger must agree with what is actually stored.
    use mhd_store::{Backend, FileKind};
    let corpus = corpus();
    for name in ALL_ENGINES {
        let (report, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let backend = substrate.backend_mut();
        assert_eq!(
            report.ledger.inodes_disk_chunks,
            backend.count(FileKind::DiskChunk),
            "{name}: DiskChunk inodes"
        );
        assert_eq!(
            report.ledger.inodes_manifests,
            backend.count(FileKind::Manifest),
            "{name}: Manifest inodes"
        );
        assert_eq!(
            report.ledger.inodes_hooks,
            backend.count(FileKind::Hook),
            "{name}: Hook inodes"
        );
        assert_eq!(
            report.ledger.inodes_file_manifests,
            backend.count(FileKind::FileManifest),
            "{name}: FileManifest inodes"
        );
        assert_eq!(
            report.ledger.stored_data_bytes,
            backend.bytes_of_kind(FileKind::DiskChunk),
            "{name}: stored bytes"
        );
        assert_eq!(
            report.ledger.manifest_bytes,
            backend.bytes_of_kind(FileKind::Manifest),
            "{name}: manifest bytes (updates must track the delta)"
        );
        assert_eq!(
            report.ledger.hook_bytes,
            backend.bytes_of_kind(FileKind::Hook),
            "{name}: hook bytes"
        );
    }
}

#[test]
fn determinism_across_runs() {
    let corpus = corpus();
    for name in ALL_ENGINES {
        let (a, _) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let (b, _) = run_named(name, &corpus, EngineConfig::new(512, 8));
        assert_eq!(a.ledger, b.ledger, "{name}");
        assert_eq!(a.stats, b.stats, "{name}");
        assert_eq!(a.dup_bytes, b.dup_bytes, "{name}");
        assert_eq!(a.dup_slices, b.dup_slices, "{name}");
    }
}

#[test]
fn every_engine_store_passes_fsck() {
    let corpus = corpus();
    for name in ALL_ENGINES {
        let (_, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let report = mhd_core::fsck::check_store(&mut substrate);
        assert!(report.is_healthy(), "{name}: {:?}", report.problems);
        assert!(report.manifests > 0, "{name}");
    }
}

#[test]
fn mhd_reload_bound_holds_end_to_end() {
    let corpus = corpus();
    let (report, _) = run_named("bf-mhd", &corpus, EngineConfig::new(512, 8));
    assert!(report.stats.hhr_reloads() <= 2 * report.dup_slices);
    assert!(report.hhr_count > 0, "the corpus must exercise HHR");
}
