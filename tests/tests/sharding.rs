//! Sharded-fleet behaviour: scaling, affinity, and the cross-shard
//! duplication trade-off.

use mhd_core::shard::ShardedMhd;
use mhd_core::{Deduplicator, EngineConfig, MhdEngine};
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

fn run_fleet(corpus: &Corpus, shards: usize) -> mhd_core::DedupReport {
    let machines = corpus.spec().machines;
    let mut fleet = ShardedMhd::new_in_memory(shards, EngineConfig::new(512, 8)).unwrap();
    for day in corpus.snapshots.chunks(machines) {
        fleet.process_batch(day).unwrap();
    }
    fleet.finish().unwrap().0
}

fn run_single(corpus: &Corpus) -> mhd_core::DedupReport {
    let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
    for s in &corpus.snapshots {
        e.process_snapshot(s).unwrap();
    }
    e.finish().unwrap()
}

#[test]
fn sharding_costs_cross_machine_dup() {
    // A corpus where cross-machine duplication matters: one OS family, so
    // every machine shares the same base image. A single engine stores the
    // base once; a fleet stores it once *per shard holding such machines*.
    let spec = CorpusSpec {
        seed: 401,
        machines: 6,
        snapshots: 3,
        os_families: 1,
        machine_bytes: 128 << 10,
        os_base_fraction: 0.7,
        mean_slice_len: 8 << 10,
        mean_site_len: 2 << 10,
        file_bytes: 32 << 10,
        ..CorpusSpec::default()
    };
    let corpus = Corpus::generate(spec);

    let single = run_single(&corpus);
    let fleet3 = run_fleet(&corpus, 3);

    let base = (spec.machine_bytes as f64 * spec.os_base_fraction) as u64;
    let extra = fleet3.ledger.stored_data_bytes - single.ledger.stored_data_bytes;
    // The fleet stores roughly (shards − 1) extra copies of the base.
    assert!(extra > base, "sharding should cost at least one extra base copy, got {extra}");
    assert!(extra < 4 * base, "but not more than ~(shards+1) copies, got {extra}");
    // Temporal dedup is preserved: the fleet still finds most duplicates.
    assert!(fleet3.dup_bytes * 10 > single.dup_bytes * 7);
}

#[test]
fn fleet_reports_merge_consistently() {
    let corpus = Corpus::generate(CorpusSpec::tiny(402));
    let machines = corpus.spec().machines;
    let mut fleet = ShardedMhd::new_in_memory(2, EngineConfig::new(512, 8)).unwrap();
    for day in corpus.snapshots.chunks(machines) {
        fleet.process_batch(day).unwrap();
    }
    let (merged, per_shard) = fleet.finish().unwrap();
    assert_eq!(merged.input_bytes, per_shard.iter().map(|r| r.input_bytes).sum::<u64>());
    assert_eq!(merged.dup_bytes, per_shard.iter().map(|r| r.dup_bytes).sum::<u64>());
    assert_eq!(
        merged.ledger.stored_data_bytes,
        per_shard.iter().map(|r| r.ledger.stored_data_bytes).sum::<u64>()
    );
    // Wall-clock merges as max, not sum.
    let max = per_shard.iter().map(|r| r.dedup_seconds).fold(0.0f64, f64::max);
    assert!((merged.dedup_seconds - max).abs() < 1e-9);
}

#[test]
fn every_shard_store_is_fsck_clean() {
    let corpus = Corpus::generate(CorpusSpec::tiny(403));
    let machines = corpus.spec().machines;
    let mut fleet = ShardedMhd::new_in_memory(3, EngineConfig::new(512, 8)).unwrap();
    for day in corpus.snapshots.chunks(machines) {
        fleet.process_batch(day).unwrap();
    }
    fleet.finish().unwrap();
    for shard in 0..3 {
        let report = mhd_core::fsck::check_store(fleet.shard_mut(shard).substrate_mut());
        assert!(report.is_healthy(), "shard {shard}: {:?}", report.problems);
    }
}
