//! GC and compaction across engines and over the directory backend: the
//! maintenance path must be as engine-agnostic as the store format.

use mhd_core::{compact, gc, restore, Deduplicator, EngineConfig};
use mhd_integration::run_named;
use mhd_workload::{Corpus, CorpusSpec};

#[test]
fn gc_reclaims_for_every_engine_layout() {
    // Delete everything: every engine's store must drain to zero data and
    // zero metadata inodes (hook/manifest/container layouts all differ).
    let corpus = Corpus::generate(CorpusSpec::tiny(901));
    for name in mhd_integration::ALL_ENGINES {
        let (_, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        let report = gc::delete_stream(&mut substrate, "m").unwrap();
        assert!(report.recipes_deleted > 0, "{name}");
        let ledger = substrate.ledger();
        assert_eq!(ledger.stored_data_bytes, 0, "{name}");
        assert_eq!(ledger.inodes_disk_chunks, 0, "{name}");
        assert_eq!(ledger.inodes_manifests, 0, "{name}");
        assert_eq!(ledger.inodes_hooks, 0, "{name}");
    }
}

#[test]
fn partial_gc_keeps_every_engine_restorable() {
    let corpus = Corpus::generate(CorpusSpec::tiny(902));
    for name in mhd_integration::ALL_ENGINES {
        let (_, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        gc::delete_stream(&mut substrate, "m0/d0").unwrap();
        gc::delete_stream(&mut substrate, "m1/d0").unwrap();
        for snapshot in &corpus.snapshots {
            for file in &snapshot.files {
                if file.path.starts_with("m0/d0") || file.path.starts_with("m1/d0") {
                    continue;
                }
                let restored = restore::restore_file(&mut substrate, &file.path)
                    .unwrap_or_else(|e| panic!("{name} {}: {e}", file.path));
                assert_eq!(restored, file.data, "{name} {}", file.path);
            }
        }
        let fsck = mhd_core::fsck::check_store(&mut substrate);
        assert!(fsck.is_healthy(), "{name}: {:?}", fsck.problems);
    }
}

#[test]
fn compaction_skips_multi_container_layouts_safely() {
    // SubChunk and SparseIndexing manifests span containers; compaction
    // must skip them (never corrupt them), even after retirements.
    let corpus = Corpus::generate(CorpusSpec::tiny(903));
    for name in ["subchunk", "sparse-indexing"] {
        let (_, mut substrate) = run_named(name, &corpus, EngineConfig::new(512, 8));
        gc::delete_stream(&mut substrate, "m0/d0").unwrap();
        let report = compact::compact(&mut substrate, 0.99).unwrap();
        // Nothing eligible is fine; corruption is not.
        let _ = report;
        let fsck = mhd_core::fsck::check_store(&mut substrate);
        assert!(fsck.is_healthy(), "{name}: {:?}", fsck.problems);
        for snapshot in &corpus.snapshots {
            for file in &snapshot.files {
                if file.path.starts_with("m0/d0") {
                    continue;
                }
                let restored = restore::restore_file(&mut substrate, &file.path).unwrap();
                assert_eq!(restored, file.data, "{name} {}", file.path);
            }
        }
    }
}

#[test]
fn full_lifecycle_on_directory_backend() {
    // backup → retire → gc → compact → restore, all against real files.
    use mhd_core::MhdEngine;
    use mhd_store::DirBackend;

    let root = std::env::temp_dir().join(format!("mhd-maint-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let corpus = Corpus::generate(CorpusSpec::tiny(904));
    let mut engine =
        MhdEngine::new(DirBackend::create(&root).unwrap(), EngineConfig::new(512, 8)).unwrap();
    for s in &corpus.snapshots {
        engine.process_snapshot(s).unwrap();
    }
    engine.finish().unwrap();

    gc::delete_stream(engine.substrate_mut(), "m0_d0").unwrap();
    compact::compact(engine.substrate_mut(), 0.95).unwrap();

    let fsck = mhd_core::fsck::check_store(engine.substrate_mut());
    assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            if file.path.starts_with("m0/d0") {
                continue;
            }
            let restored = restore::restore_file(engine.substrate_mut(), &file.path).unwrap();
            assert_eq!(restored, file.data, "{}", file.path);
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}
