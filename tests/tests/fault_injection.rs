//! Failure injection: engines must surface backend errors without
//! panicking, and state committed before the fault must stay readable.
//!
//! Two crash models are exercised:
//!
//! * **operation-boundary crashes** via [`FaultBackend`]: the n-th backend
//!   operation fails before mutating anything — the store is whatever the
//!   engine had committed up to that point;
//! * **torn physical writes** via `DirBackend::fault_short_write_at`: a
//!   file write stops half-way, modelling power loss mid-write — the
//!   atomic tmp+rename path must keep the target object intact and
//!   recovery must clean up the debris.

use std::path::PathBuf;

use bytes::Bytes;
use mhd_core::fsck::{check_store, recover_store};
use mhd_core::{CdcEngine, Deduplicator, EngineConfig, EngineError, MhdEngine};
use mhd_store::{
    Backend, BatchedDirBackend, DirBackend, Durability, FaultBackend, FaultPoint, FileKind,
    IoConfig, MemBackend,
};
use mhd_workload::{Corpus, CorpusSpec, FileEntry, Snapshot};

fn snapshot(seed: u64) -> Snapshot {
    let corpus = Corpus::generate(CorpusSpec::tiny(seed));
    corpus.snapshots[0].clone()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhd-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn xorshift_bytes(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

fn one_file_snapshot(label: &str, data: Vec<u8>) -> Snapshot {
    Snapshot {
        machine: 0,
        day: 0,
        files: vec![FileEntry { path: format!("{label}/disk.img"), data: Bytes::from(data) }],
    }
}

/// A pair of backups where the second edits 1 KiB in the middle of the
/// first — the canonical BME + HHR trigger (duplicates straddle the edit,
/// so the merged manifest entry must be hysteresis-split and rewritten).
fn hhr_backup_pair() -> (Snapshot, Snapshot) {
    let original = xorshift_bytes(64 << 10, 2);
    let mut edited = original.clone();
    let patch = xorshift_bytes(1024, 3);
    edited[30_000..31_024].copy_from_slice(&patch);
    (one_file_snapshot("day0", original), one_file_snapshot("day1", edited))
}

/// Every fault index up to `horizon` either succeeds (fault landed past
/// the run) or surfaces `EngineError::Store` — never a panic.
#[test]
fn mhd_survives_faults_at_every_offset() {
    let snap = snapshot(501);
    let mut failures = 0;
    for fault_at in 0..40u64 {
        let backend = FaultBackend::new(MemBackend::new(), fault_at);
        let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 4)).expect("config");
        let result = engine.process_snapshot(&snap).and_then(|()| engine.finish().map(|_| ()));
        if let Err(e) = result {
            failures += 1;
            assert!(matches!(e, EngineError::Store(_)), "unexpected error kind: {e}");
        }
    }
    assert!(failures > 0, "some fault offsets must land inside the run");
}

#[test]
fn cdc_survives_faults_at_every_offset() {
    let snap = snapshot(502);
    let mut failures = 0;
    for fault_at in 0..40u64 {
        let backend = FaultBackend::new(MemBackend::new(), fault_at);
        let mut engine = CdcEngine::new(backend, EngineConfig::new(512, 4)).expect("config");
        let result = engine.process_snapshot(&snap).and_then(|()| engine.finish().map(|_| ()));
        if let Err(e) = result {
            failures += 1;
            assert!(matches!(e, EngineError::Store(_)));
        }
    }
    assert!(failures > 0);
}

/// After a mid-run fault, objects written before the fault are intact and
/// internally consistent (immutable DiskChunks/Hooks are never half
/// updated).
#[test]
fn committed_state_survives_fault() {
    let corpus = Corpus::generate(CorpusSpec::tiny(503));
    // First, measure how many backend ops a clean run performs.
    let clean = FaultBackend::new(MemBackend::new(), u64::MAX);
    let mut engine = MhdEngine::new(clean, EngineConfig::new(512, 4)).expect("config");
    for s in &corpus.snapshots {
        engine.process_snapshot(s).expect("clean run");
    }
    engine.finish().expect("clean finish");
    let total_ops = {
        let b = engine.substrate_mut().backend_mut();
        b.ops()
    };

    // Now fault half-way and inspect the backend afterwards.
    let fault_at = total_ops / 2;
    let faulty = FaultBackend::new(MemBackend::new(), fault_at);
    let mut engine = MhdEngine::new(faulty, EngineConfig::new(512, 4)).expect("config");
    let mut failed = false;
    for s in &corpus.snapshots {
        if engine.process_snapshot(s).is_err() {
            failed = true;
            break;
        }
    }
    if !failed {
        failed = engine.finish().is_err();
    }
    assert!(failed, "fault at {fault_at}/{total_ops} must fire");

    let backend = engine.substrate_mut().backend_mut();
    // Every committed manifest must decode and point at existing chunks.
    for name in backend.list(FileKind::Manifest) {
        let bytes = backend.get(FileKind::Manifest, &name).expect("committed manifest readable");
        let manifest = mhd_store::Manifest::decode(
            mhd_store::ManifestId(u64::from_str_radix(&name, 16).expect("hex name")),
            &bytes,
        )
        .expect("committed manifest decodes");
        for e in &manifest.entries {
            assert!(
                backend.exists(FileKind::DiskChunk, &e.container.name()),
                "manifest {name} references missing container"
            );
        }
    }
}

/// A file whose processing failed writes nothing that breaks restore of
/// earlier, fully-committed files.
#[test]
fn earlier_files_restore_after_fault() {
    let corpus = Corpus::generate(CorpusSpec::tiny(504));
    let faulty = FaultBackend::new(MemBackend::new(), 30);
    let mut engine = MhdEngine::new(faulty, EngineConfig::new(512, 4)).expect("config");
    let mut processed_streams = 0usize;
    for s in &corpus.snapshots {
        if engine.process_snapshot(s).is_err() {
            break;
        }
        processed_streams += 1;
    }
    let substrate = engine.substrate_mut();
    // Every FileManifest that exists must restore byte-exactly.
    let mut restored = 0;
    for s in corpus.snapshots.iter().take(processed_streams) {
        for f in &s.files {
            let bytes = mhd_core::restore::restore_file(substrate, &f.path)
                .unwrap_or_else(|e| panic!("{}: {e}", f.path));
            assert_eq!(bytes, f.data, "{}", f.path);
            restored += 1;
        }
    }
    // (restored == 0 is legal if the fault hit the very first file.)
    let _ = restored;
}

/// Satellite regression: a write killed mid-way through a manifest rewrite
/// must leave the old manifest intact (the torn bytes land in the hidden
/// tmp file, never the target), and recovery must clean up the debris.
#[test]
fn torn_manifest_rewrite_preserves_old_content() {
    let (day0, day1) = hhr_backup_pair();
    let dir = temp_dir("torn-hhr");
    let backend = DirBackend::create_with(&dir, Durability::Rename).unwrap();
    let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
    engine.process_snapshot(&day0).unwrap();
    engine.process_snapshot(&day1).unwrap();
    // finish() writes back the HHR-dirtied manifests; tear the very next
    // physical file write half-way.
    engine.substrate_mut().backend_mut().fault_short_write_at(0);
    let err = engine.finish();
    assert!(matches!(err, Err(EngineError::Store(_))), "torn write must surface: {err:?}");

    // The torn write went to a tmp file: recovery removes it (plus the
    // write-ahead intent), and the store is structurally sound.
    let substrate = engine.substrate_mut();
    let report = recover_store(substrate).unwrap();
    assert!(report.tmp_files_removed >= 1, "torn tmp file must be found: {report:?}");
    assert!(recover_store(substrate).unwrap().is_clean(), "recovery is idempotent");
    let fsck = check_store(substrate);
    assert!(fsck.is_healthy(), "problems after torn rewrite: {:?}", fsck.problems);

    // Day-0 content (committed before the torn rewrite) restores exactly.
    let restored = mhd_core::restore::restore_file(substrate, "day0/disk.img").unwrap();
    assert_eq!(restored, day0.files[0].data, "day0 must survive the torn day1 rewrite");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Satellite regression: per-kind fault points let a test target exactly
/// the HHR manifest-rewrite path. Every Manifest-write index across the
/// HHR run leaves a store whose committed state is consistent.
#[test]
fn manifest_write_faults_leave_consistent_store() {
    let (day0, day1) = hhr_backup_pair();
    // Count the Manifest writes a clean run performs.
    let clean = FaultBackend::with_point(
        MemBackend::new(),
        FaultPoint::write(Some(FileKind::Manifest), u64::MAX),
    );
    let mut engine = MhdEngine::new(clean, EngineConfig::new(512, 8)).expect("config");
    engine.process_snapshot(&day0).unwrap();
    engine.process_snapshot(&day1).unwrap();
    engine.finish().unwrap();
    let manifest_writes = engine.substrate_mut().backend_mut().matching_ops();
    assert!(manifest_writes >= 2, "HHR run must write manifests (got {manifest_writes})");

    let mut faulted = 0u64;
    for fail_at in 0..manifest_writes {
        let backend = FaultBackend::with_point(
            MemBackend::new(),
            FaultPoint::write(Some(FileKind::Manifest), fail_at),
        );
        let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
        let result = engine
            .process_snapshot(&day0)
            .and_then(|()| engine.process_snapshot(&day1))
            .and_then(|()| engine.finish().map(|_| ()));
        if result.is_err() {
            faulted += 1;
        }
        let substrate = engine.substrate_mut();
        let fsck = check_store(substrate);
        assert!(
            fsck.is_healthy(),
            "manifest-write fault {fail_at}/{manifest_writes}: {:?}",
            fsck.problems
        );
    }
    assert_eq!(faulted, manifest_writes, "every targeted manifest write must fire");
}

/// The crash-during-HHR matrix of the issue: run a backup pair that
/// triggers BME + HHR over a real directory store, crash at *every* write
/// index of the second backup, and require that recovery + fsck see a
/// consistent store and that every day-0 file restores byte-identically.
#[test]
fn crash_matrix_during_hhr_recovers_day0() {
    let (day0, day1) = hhr_backup_pair();

    // Clean run over a directory store: find the write-op window of the
    // second backup (+ finish), which contains the HHR manifest rewrite.
    let dir = temp_dir("matrix-clean");
    let backend = FaultBackend::with_point(
        DirBackend::create(&dir).unwrap(),
        FaultPoint::write(None, u64::MAX),
    );
    let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
    engine.process_snapshot(&day0).unwrap();
    let day0_writes = engine.substrate_mut().backend_mut().matching_ops();
    engine.process_snapshot(&day1).unwrap();
    engine.finish().unwrap();
    let total_writes = engine.substrate_mut().backend_mut().matching_ops();
    drop(engine);
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(total_writes > day0_writes, "backup 2 must write");

    for fail_at in day0_writes..total_writes {
        let dir = temp_dir("matrix");
        let backend = FaultBackend::with_point(
            DirBackend::create(&dir).unwrap(),
            FaultPoint::write(None, fail_at),
        );
        let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
        engine.process_snapshot(&day0).expect("backup 1 is before the fault window");
        let result = engine.process_snapshot(&day1).and_then(|()| engine.finish().map(|_| ()));
        assert!(result.is_err(), "write fault {fail_at} must fire during backup 2");

        // Crash "happened": recover the store and check every invariant.
        let substrate = engine.substrate_mut();
        recover_store(substrate).unwrap();
        let fsck = check_store(substrate);
        assert!(
            fsck.is_healthy(),
            "crash at write {fail_at} ({}..{}): {:?}",
            day0_writes,
            total_writes,
            fsck.problems
        );
        // The pre-crash backup restores byte-identically.
        let restored = mhd_core::restore::restore_file(substrate, "day0/disk.img")
            .unwrap_or_else(|e| panic!("crash at write {fail_at}: day0 unrestorable: {e}"));
        assert_eq!(restored, day0.files[0].data, "crash at write {fail_at}");
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The batched backend with worker threads and fsync durability must
/// produce the same dedup results as the write-through backends — batching
/// must be invisible to the engines. Exercised for all five paper engines.
#[test]
fn engines_identical_across_backends() {
    use mhd_core::{BimodalEngine, SparseIndexEngine, SubChunkEngine};

    let corpus = Corpus::generate(CorpusSpec::tiny(505));

    fn run<B: Backend, D: Deduplicator>(
        make: impl FnOnce(B) -> D,
        backend: B,
        corpus: &Corpus,
    ) -> mhd_core::DedupReport {
        let mut engine = make(backend);
        for s in &corpus.snapshots {
            engine.process_snapshot(s).expect("dedup");
        }
        engine.finish().expect("finish")
    }

    // One comparison triple per engine: MemBackend (reference),
    // write-through DirBackend, and the batched pool with fsync.
    macro_rules! compare {
        ($name:literal, $ctor:expr) => {{
            let mem = run($ctor, MemBackend::new(), &corpus);
            let dir_root = temp_dir(concat!("equiv-dir-", $name));
            let dir = run($ctor, DirBackend::create(&dir_root).unwrap(), &corpus);
            let batched_root = temp_dir(concat!("equiv-batched-", $name));
            let batched = run(
                $ctor,
                BatchedDirBackend::create_with(
                    &batched_root,
                    IoConfig {
                        threads: 3,
                        batch_ops: 7,
                        durability: Durability::Fsync,
                        ..IoConfig::default()
                    },
                )
                .unwrap(),
                &corpus,
            );
            for (label, other) in [("dir", &dir), ("batched", &batched)] {
                assert_eq!(mem.input_bytes, other.input_bytes, "{} {label}", $name);
                assert_eq!(mem.dup_bytes, other.dup_bytes, "{} {label}", $name);
                assert_eq!(mem.dup_slices, other.dup_slices, "{} {label}", $name);
                assert_eq!(mem.chunks_stored, other.chunks_stored, "{} {label}", $name);
                assert_eq!(mem.chunks_dup, other.chunks_dup, "{} {label}", $name);
                assert_eq!(mem.hhr_count, other.hhr_count, "{} {label}", $name);
                assert_eq!(mem.stats, other.stats, "{} {label}", $name);
                assert_eq!(mem.ledger, other.ledger, "{} {label}", $name);
            }
            std::fs::remove_dir_all(&dir_root).unwrap();
            std::fs::remove_dir_all(&batched_root).unwrap();
        }};
    }

    let config = EngineConfig::new(512, 8);
    compare!("mhd", |b| MhdEngine::new(b, config).expect("config"));
    compare!("cdc", |b| CdcEngine::new(b, config).expect("config"));
    compare!("bimodal", |b| BimodalEngine::new(b, config).expect("config"));
    compare!("subchunk", |b| SubChunkEngine::new(b, config).expect("config"));
    compare!("sparse", |b| SparseIndexEngine::new(b, config).expect("config"));
}

/// Read-side fault points: a failed chunk reload during HHR's byte
/// re-reads must surface as an error, not corrupt the store.
#[test]
fn read_fault_during_hhr_reload_is_clean() {
    let (day0, day1) = hhr_backup_pair();
    // HHR reloads stored chunk bytes through get_range on DiskChunks.
    let backend =
        FaultBackend::with_point(MemBackend::new(), FaultPoint::read(Some(FileKind::DiskChunk), 0));
    let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 8)).expect("config");
    engine.process_snapshot(&day0).unwrap();
    let result = engine.process_snapshot(&day1).and_then(|()| engine.finish().map(|_| ()));
    // Whether or not the reload happened before the fault index, the store
    // must stay consistent.
    let _ = result;
    let substrate = engine.substrate_mut();
    let fsck = check_store(substrate);
    assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    let restored = mhd_core::restore::restore_file(substrate, "day0/disk.img").unwrap();
    assert_eq!(restored, day0.files[0].data);
}
