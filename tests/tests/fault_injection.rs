//! Failure injection: engines must surface backend errors without
//! panicking, and state committed before the fault must stay readable.

use mhd_core::{CdcEngine, Deduplicator, EngineConfig, EngineError, MhdEngine};
use mhd_store::{Backend, FaultBackend, FileKind, MemBackend};
use mhd_workload::{Corpus, CorpusSpec, Snapshot};

fn snapshot(seed: u64) -> Snapshot {
    let corpus = Corpus::generate(CorpusSpec::tiny(seed));
    corpus.snapshots[0].clone()
}

/// Every fault index up to `horizon` either succeeds (fault landed past
/// the run) or surfaces `EngineError::Store` — never a panic.
#[test]
fn mhd_survives_faults_at_every_offset() {
    let snap = snapshot(501);
    let mut failures = 0;
    for fault_at in 0..40u64 {
        let backend = FaultBackend::new(MemBackend::new(), fault_at);
        let mut engine = MhdEngine::new(backend, EngineConfig::new(512, 4)).expect("config");
        let result = engine.process_snapshot(&snap).and_then(|()| engine.finish().map(|_| ()));
        if let Err(e) = result {
            failures += 1;
            assert!(matches!(e, EngineError::Store(_)), "unexpected error kind: {e}");
        }
    }
    assert!(failures > 0, "some fault offsets must land inside the run");
}

#[test]
fn cdc_survives_faults_at_every_offset() {
    let snap = snapshot(502);
    let mut failures = 0;
    for fault_at in 0..40u64 {
        let backend = FaultBackend::new(MemBackend::new(), fault_at);
        let mut engine = CdcEngine::new(backend, EngineConfig::new(512, 4)).expect("config");
        let result = engine.process_snapshot(&snap).and_then(|()| engine.finish().map(|_| ()));
        if let Err(e) = result {
            failures += 1;
            assert!(matches!(e, EngineError::Store(_)));
        }
    }
    assert!(failures > 0);
}

/// After a mid-run fault, objects written before the fault are intact and
/// internally consistent (immutable DiskChunks/Hooks are never half
/// updated).
#[test]
fn committed_state_survives_fault() {
    let corpus = Corpus::generate(CorpusSpec::tiny(503));
    // First, measure how many backend ops a clean run performs.
    let clean = FaultBackend::new(MemBackend::new(), u64::MAX);
    let mut engine = MhdEngine::new(clean, EngineConfig::new(512, 4)).expect("config");
    for s in &corpus.snapshots {
        engine.process_snapshot(s).expect("clean run");
    }
    engine.finish().expect("clean finish");
    let total_ops = {
        let b = engine.substrate_mut().backend_mut();
        b.ops()
    };

    // Now fault half-way and inspect the backend afterwards.
    let fault_at = total_ops / 2;
    let faulty = FaultBackend::new(MemBackend::new(), fault_at);
    let mut engine = MhdEngine::new(faulty, EngineConfig::new(512, 4)).expect("config");
    let mut failed = false;
    for s in &corpus.snapshots {
        if engine.process_snapshot(s).is_err() {
            failed = true;
            break;
        }
    }
    if !failed {
        failed = engine.finish().is_err();
    }
    assert!(failed, "fault at {fault_at}/{total_ops} must fire");

    let backend = engine.substrate_mut().backend_mut();
    // Every committed manifest must decode and point at existing chunks.
    for name in backend.list(FileKind::Manifest) {
        let bytes = backend.get(FileKind::Manifest, &name).expect("committed manifest readable");
        let manifest = mhd_store::Manifest::decode(
            mhd_store::ManifestId(u64::from_str_radix(&name, 16).expect("hex name")),
            &bytes,
        )
        .expect("committed manifest decodes");
        for e in &manifest.entries {
            assert!(
                backend.exists(FileKind::DiskChunk, &e.container.name()),
                "manifest {name} references missing container"
            );
        }
    }
}

/// A file whose processing failed writes nothing that breaks restore of
/// earlier, fully-committed files.
#[test]
fn earlier_files_restore_after_fault() {
    let corpus = Corpus::generate(CorpusSpec::tiny(504));
    let faulty = FaultBackend::new(MemBackend::new(), 30);
    let mut engine = MhdEngine::new(faulty, EngineConfig::new(512, 4)).expect("config");
    let mut processed_streams = 0usize;
    for s in &corpus.snapshots {
        if engine.process_snapshot(s).is_err() {
            break;
        }
        processed_streams += 1;
    }
    let substrate = engine.substrate_mut();
    // Every FileManifest that exists must restore byte-exactly.
    let mut restored = 0;
    for s in corpus.snapshots.iter().take(processed_streams) {
        for f in &s.files {
            let bytes = mhd_core::restore::restore_file(substrate, &f.path)
                .unwrap_or_else(|e| panic!("{}: {e}", f.path));
            assert_eq!(bytes, f.data, "{}", f.path);
            restored += 1;
        }
    }
    // (restored == 0 is legal if the fault hit the very first file.)
    let _ = restored;
}
