//! Daemon integration: concurrent client sessions over the Unix-socket
//! protocol against one shared store — per-tenant isolation, cross-tenant
//! dedup, abort hygiene, and GC safety under in-progress sessions.

use std::path::{Path, PathBuf};
use std::thread;

use mhd_daemon::{Client, Daemon, DaemonConfig};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mhd-daemon-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Deterministic pseudo-random payload; same (len, seed) → same bytes.
fn payload(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

/// Spawns a daemon on a fresh store; returns (store root, socket path).
fn spawn_daemon(tag: &str) -> (PathBuf, PathBuf, mhd_daemon::ServeHandle) {
    let root = temp_dir(tag);
    let store = root.join("store");
    let socket = root.join("mhd.sock");
    let daemon = Daemon::open(&store, DaemonConfig::default()).expect("open daemon");
    let handle = daemon.spawn(&socket).expect("spawn daemon");
    (store, socket, handle)
}

fn shutdown(socket: &Path, handle: mhd_daemon::ServeHandle) {
    let mut admin = Client::connect(socket).expect("connect for shutdown");
    admin.shutdown().expect("shutdown");
    handle.join().expect("serve thread");
}

#[test]
fn three_concurrent_tenants_restore_byte_identical() {
    let (_store, socket, handle) = spawn_daemon("three-tenants");

    // Three clients back up distinct corpora concurrently, each under its
    // own tenant namespace.
    let workers: Vec<_> = (0..3u64)
        .map(|i| {
            let socket = socket.clone();
            thread::spawn(move || {
                let tenant = format!("tenant{i}");
                let mut c = Client::connect(&socket).expect("connect");
                c.open(&tenant).expect("open tenant");
                c.begin("day0").expect("begin");
                for f in 0..4u64 {
                    let data = payload(20_000 + (f as usize) * 3_000, i * 100 + f);
                    c.send_file(&format!("disk{f}.img"), &data).expect("send");
                }
                let summary = c.commit().expect("commit");
                assert_eq!(summary.files, 4);
                tenant
            })
        })
        .collect();
    let tenants: Vec<String> = workers.into_iter().map(|w| w.join().expect("worker")).collect();

    // Every tenant sees exactly its own four files and restores them
    // byte-identically; no listing leaks across namespaces.
    for (i, tenant) in tenants.iter().enumerate() {
        let mut c = Client::connect(&socket).expect("connect");
        c.open(tenant).expect("open tenant");
        let names = c.ls().expect("ls");
        assert_eq!(names.len(), 4, "tenant {tenant} sees {names:?}");
        for name in &names {
            assert!(name.starts_with("day0_"), "foreign or unscoped name {name} in {tenant}");
        }
        for f in 0..4u64 {
            let expected = payload(20_000 + (f as usize) * 3_000, i as u64 * 100 + f);
            let got = c.restore(&format!("day0_disk{f}.img")).expect("restore");
            assert_eq!(got, expected, "tenant {tenant} file {f} corrupted");
        }
        assert!(c.fsck().expect("fsck").contains("healthy"));
    }

    shutdown(&socket, handle);
}

#[test]
fn identical_corpora_dedup_across_tenants_with_isolated_listings() {
    let (_store, socket, handle) = spawn_daemon("cross-dedup");
    let files: Vec<(String, Vec<u8>)> =
        (0..3u64).map(|f| (format!("img{f}.bin"), payload(40_000, 7_000 + f))).collect();

    let mut grown = Vec::new();
    for tenant in ["alpha", "beta"] {
        let mut c = Client::connect(&socket).expect("connect");
        c.open(tenant).expect("open");
        c.begin("base").expect("begin");
        for (name, data) in &files {
            c.send_file(name, data).expect("send");
        }
        grown.push(c.commit().expect("commit").grown_bytes);
    }

    // Identical bytes under a second tenant cost almost nothing: the
    // shared index serves cross-tenant dedup, only metadata grows.
    assert!(
        grown[1] * 5 < grown[0],
        "second tenant grew {} vs first {}; cross-tenant dedup failed",
        grown[1],
        grown[0]
    );

    // Listings stay per-tenant even though the chunks are shared.
    for tenant in ["alpha", "beta"] {
        let mut c = Client::connect(&socket).expect("connect");
        c.open(tenant).expect("open");
        let names = c.ls().expect("ls");
        assert_eq!(names.len(), files.len());
        for (name, data) in &files {
            let restored = c.restore(&format!("base_{name}")).expect("restore");
            assert_eq!(&restored, data, "{tenant}/{name}");
        }
    }

    shutdown(&socket, handle);
}

#[test]
fn abort_mid_write_leaves_no_orphans() {
    let (_store, socket, handle) = spawn_daemon("abort");

    let mut c = Client::connect(&socket).expect("connect");
    c.open("acme").expect("open");
    c.begin("nightly").expect("begin");
    c.send_file("half.img", &payload(30_000, 99)).expect("send");
    c.abort().expect("abort");

    // Nothing of the aborted session is visible, the store is healthy,
    // and the stream label is free for immediate reuse.
    assert!(c.ls().expect("ls").is_empty());
    assert!(c.fsck().expect("fsck").contains("healthy"));
    c.begin("nightly").expect("label released after abort");
    c.send_file("full.img", &payload(30_000, 100)).expect("send");
    let summary = c.commit().expect("commit");
    assert_eq!(summary.files, 1);
    assert_eq!(c.ls().expect("ls"), vec!["nightly_full.img".to_string()]);

    // A client that disconnects mid-session (no ABORT verb) is cleaned up
    // server-side the same way.
    let mut dropped = Client::connect(&socket).expect("connect");
    dropped.open("acme").expect("open");
    dropped.begin("torn").expect("begin");
    dropped.send_file("lost.img", &payload(10_000, 101)).expect("send");
    drop(dropped);

    // Poll until the server reaps the dropped connection and releases the
    // label (read timeout is 200ms, so this converges quickly).
    let mut reclaimed = false;
    for _ in 0..50 {
        if c.begin("torn").is_ok() {
            reclaimed = true;
            break;
        }
        thread::sleep(std::time::Duration::from_millis(100));
    }
    assert!(reclaimed, "disconnect did not release the session label");
    c.abort().expect("abort probe session");
    assert!(c.fsck().expect("fsck").contains("healthy"));

    shutdown(&socket, handle);
}

#[test]
fn gc_during_active_session_keeps_its_chunks_reachable() {
    let (_store, socket, handle) = spawn_daemon("gc-live");

    // Session A registers (capturing a GC watermark) but has not yet
    // committed when tenant B writes and an admin runs GC.
    let mut a = Client::connect(&socket).expect("connect a");
    a.open("slow").expect("open");
    a.begin("big").expect("begin");
    a.send_file("a0.img", &payload(25_000, 500)).expect("send");

    let mut b = Client::connect(&socket).expect("connect b");
    b.open("fast").expect("open");
    b.begin("quick").expect("begin");
    b.send_file("b0.img", &payload(25_000, 600)).expect("send");
    b.commit().expect("commit b");

    // GC with A's session registered: everything at or above A's
    // watermark — including B's freshly committed chunks — is protected.
    let mut admin = Client::connect(&socket).expect("connect admin");
    let gc = admin.gc().expect("gc");
    let swept: u64 = gc.split_whitespace().next().and_then(|w| w.parse().ok()).expect("gc reply");
    assert_eq!(swept, 0, "GC swept {swept} chunks under an active session: {gc}");

    // A finishes afterwards; both tenants restore byte-identically.
    a.send_file("a1.img", &payload(25_000, 501)).expect("send");
    a.commit().expect("commit a");
    assert_eq!(a.restore("big_a0.img").expect("restore"), payload(25_000, 500));
    assert_eq!(a.restore("big_a1.img").expect("restore"), payload(25_000, 501));
    b.restore("quick_b0.img").expect("restore b");
    assert_eq!(b.restore("quick_b0.img").expect("restore"), payload(25_000, 600));
    assert!(admin.fsck().expect("fsck").contains("healthy"));

    shutdown(&socket, handle);
}

#[test]
fn daemon_survives_restart_and_resumes_dedup() {
    let (store, socket, handle) = spawn_daemon("restart");

    let files: Vec<(String, Vec<u8>)> =
        (0..2u64).map(|f| (format!("f{f}.img"), payload(30_000, 900 + f))).collect();
    let first = {
        let mut c = Client::connect(&socket).expect("connect");
        c.open("durable").expect("open");
        c.begin("day0").expect("begin");
        for (name, data) in &files {
            c.send_file(name, data).expect("send");
        }
        c.commit().expect("commit").grown_bytes
    };
    shutdown(&socket, handle);

    // Reopen the same store: the rebuilt index must dedup the same bytes
    // and the old stream must still restore.
    let daemon = Daemon::open(&store, DaemonConfig::default()).expect("reopen");
    assert!(daemon.store().recovery().is_clean(), "clean shutdown left recovery work");
    let handle = daemon.spawn(&socket).expect("respawn");
    let mut c = Client::connect(&socket).expect("connect");
    c.open("durable").expect("open");
    c.begin("day1").expect("begin");
    for (name, data) in &files {
        c.send_file(name, data).expect("send");
    }
    let second = c.commit().expect("commit").grown_bytes;
    assert!(second * 5 < first, "restart lost dedup state: day1 grew {second} vs day0 {first}");
    for (name, data) in &files {
        assert_eq!(&c.restore(&format!("day0_{name}")).expect("restore old"), data);
        assert_eq!(&c.restore(&format!("day1_{name}")).expect("restore new"), data);
    }

    shutdown(&socket, handle);
}

/// Pulls an unsigned field out of a shim `serde_json::Value` object.
fn stat_u64(doc: &serde_json::Value, name: &str) -> u64 {
    let serde_json::Value::Object(fields) = doc else { panic!("stats must be an object") };
    let value = fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
    let Some(serde_json::Value::Number(serde_json::Number::U64(n))) = value else {
        panic!("stats field {name} missing or not a u64 in {doc}")
    };
    *n
}

#[test]
fn stats_track_sessions_and_shared_index() {
    let (_store, socket, handle) = spawn_daemon("stats");

    let mut c = Client::connect(&socket).expect("connect");
    c.open("ops").expect("open");
    c.begin("s1").expect("begin");
    c.send_file("x.img", &payload(20_000, 42)).expect("send");

    let mut admin = Client::connect(&socket).expect("connect admin");
    let live: serde_json::Value =
        serde_json::from_str(&admin.stats().expect("stats")).expect("stats json");
    assert_eq!(stat_u64(&live, "active_sessions"), 1);

    c.commit().expect("commit");
    let settled: serde_json::Value =
        serde_json::from_str(&admin.stats().expect("stats")).expect("stats json");
    assert_eq!(stat_u64(&settled, "active_sessions"), 0);
    assert_eq!(stat_u64(&settled, "streams"), 1);
    let entries = stat_u64(&settled, "index_entries");
    assert!(entries > 0);
    let serde_json::Value::Object(fields) = &settled else { panic!("stats must be an object") };
    let occupancy = fields.iter().find(|(k, _)| k == "index_occupancy").map(|(_, v)| v);
    let Some(serde_json::Value::Array(occupancy)) = occupancy else {
        panic!("index_occupancy missing")
    };
    assert_eq!(occupancy.len(), DaemonConfig::default().index_shards);
    let total: u64 = occupancy
        .iter()
        .map(|v| match v {
            serde_json::Value::Number(serde_json::Number::U64(n)) => *n,
            other => panic!("occupancy entry not a u64: {other}"),
        })
        .sum();
    assert_eq!(total, entries);

    shutdown(&socket, handle);
}
