//! Property-based whole-system tests: for arbitrary generated mini-corpora
//! and arbitrary engine parameters, deduplicate-then-restore is the
//! identity and accounting invariants hold.

use bytes::Bytes;
use mhd_core::{restore, EngineConfig};
use mhd_integration::ALL_ENGINES;
use mhd_workload::{FileEntry, Snapshot};
use proptest::prelude::*;

/// Builds arbitrary multi-stream inputs with deliberate duplication:
/// streams are random byte soups plus splices of earlier content.
fn arb_streams() -> impl Strategy<Value = Vec<Snapshot>> {
    (
        proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..20_000), 1..4),
        any::<u64>(),
    )
        .prop_map(|(mut bodies, seed)| {
            // Splice duplication: append a copy of stream 0's middle into
            // every later stream.
            let dup: Vec<u8> = bodies[0].iter().copied().skip(bodies[0].len() / 4).collect();
            for body in bodies.iter_mut().skip(1) {
                body.extend_from_slice(&dup);
            }
            bodies
                .into_iter()
                .enumerate()
                .map(|(day, body)| {
                    // Split each body into 1-3 files.
                    let n = 1 + (seed as usize + day) % 3;
                    let part = body.len() / n + 1;
                    let shared = Bytes::from(body);
                    let files = (0..n)
                        .map(|i| {
                            let start = (i * part).min(shared.len());
                            let end = ((i + 1) * part).min(shared.len());
                            FileEntry {
                                path: format!("m0/d{day}/f{i}"),
                                data: shared.slice(start..end),
                            }
                        })
                        .collect();
                    Snapshot { machine: 0, day, files }
                })
                .collect()
        })
}

/// Mirrors `restore::verify_corpus` for raw snapshot lists.
fn verify(
    substrate: &mut mhd_store::Substrate<mhd_store::MemBackend>,
    snapshots: &[Snapshot],
) -> Result<(), String> {
    for s in snapshots {
        for f in &s.files {
            let restored = restore::restore_file(substrate, &f.path)
                .map_err(|e| format!("{}: {e}", f.path))?;
            if restored != f.data {
                return Err(format!("{} mismatch", f.path));
            }
        }
    }
    Ok(())
}

fn run_over(
    name: &str,
    snapshots: &[Snapshot],
    config: EngineConfig,
) -> (mhd_core::DedupReport, mhd_store::Substrate<mhd_store::MemBackend>) {
    // Reuse the corpus-driven helper by temporarily wrapping the streams.
    // (run_named consumes a Corpus; build the equivalent inline.)
    use mhd_core::Deduplicator;
    use mhd_store::MemBackend;
    macro_rules! drive {
        ($engine:expr) => {{
            let mut engine = $engine.expect("valid config");
            for s in snapshots {
                engine.process_snapshot(s).expect("dedup");
            }
            let report = engine.finish().expect("finish");
            let substrate = std::mem::replace(
                mhd_integration::SubstrateAccess::substrate_mut_dyn(&mut engine),
                mhd_store::Substrate::new(MemBackend::new()),
            );
            (report, substrate)
        }};
    }
    match name {
        "bf-mhd" => drive!(mhd_core::MhdEngine::new(MemBackend::new(), config)),
        "cdc" => drive!(mhd_core::CdcEngine::new(MemBackend::new(), config)),
        "bimodal" => drive!(mhd_core::BimodalEngine::new(MemBackend::new(), config)),
        "subchunk" => drive!(mhd_core::SubChunkEngine::new(MemBackend::new(), config)),
        "sparse-indexing" => drive!(mhd_core::SparseIndexEngine::new(MemBackend::new(), config)),
        "fbc" => drive!(mhd_core::FbcEngine::new(MemBackend::new(), config)),
        other => panic!("unknown engine {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// dedup ∘ restore == identity for MHD over arbitrary inputs and SD.
    #[test]
    fn prop_mhd_roundtrip(streams in arb_streams(), sd in 2usize..12) {
        let mut config = EngineConfig::new(256, sd);
        config.cache_manifests = 2; // force evictions and write-backs
        let (report, mut substrate) = run_over("bf-mhd", &streams, config);
        prop_assert_eq!(
            report.ledger.stored_data_bytes + report.dup_bytes,
            report.input_bytes
        );
        prop_assert!(verify(&mut substrate, &streams).is_ok());
        prop_assert!(report.stats.hhr_reloads() <= 2 * report.dup_slices);
    }

    /// Same for the four baselines (smaller case count: they share most of
    /// the machinery).
    #[test]
    fn prop_baselines_roundtrip(streams in arb_streams()) {
        for name in ALL_ENGINES {
            let mut config = EngineConfig::new(256, 4);
            config.cache_manifests = 2;
            let (report, mut substrate) = run_over(name, &streams, config);
            prop_assert_eq!(
                report.ledger.stored_data_bytes + report.dup_bytes,
                report.input_bytes,
                "{}", name
            );
            prop_assert!(verify(&mut substrate, &streams).is_ok(), "{}", name);
        }
    }
}
