//! The trace analyzer end to end: pair balancing, stall/overlap
//! accounting and lossy JSONL ingestion over hand-built traces, plus the
//! runtime behaviours that need the real ring buffers — a capacity-2
//! ring dropping a `StageBegin` inside an open stage (the Chrome-export
//! regression), and pruning of ring buffers owned by exited threads.
//!
//! The analyzer itself ([`mhd_obs::analysis`]) is a pure function over
//! `TraceRecord` slices, so those tests run as ordinary parallel
//! `#[test]`s; everything touching the process-global trace rings stays
//! in the single `trace_runtime_behaviour` test (same pattern as
//! `observability.rs`).

use mhd_obs::analysis::{analyze, balance_stages, AnalyzeOptions};
use mhd_obs::{TraceEvent, TraceRecord};

fn rec(ts_ns: u64, tid: u32, event: TraceEvent) -> TraceRecord {
    TraceRecord { ts_ns, tid, event }
}

fn begin(ts_ns: u64, tid: u32, stage: &str) -> TraceRecord {
    rec(ts_ns, tid, TraceEvent::StageBegin { stage: stage.to_string() })
}

fn end(ts_ns: u64, tid: u32, stage: &str) -> TraceRecord {
    rec(ts_ns, tid, TraceEvent::StageEnd { stage: stage.to_string() })
}

/// Counts Chrome `trace_event` phases in a `trace_to_chrome` export.
fn chrome_phases(chrome: &str) -> (u64, u64) {
    let doc: serde_json::Value = serde_json::from_str(chrome).expect("chrome export parses");
    let serde_json::Value::Object(top) = &doc else { panic!("chrome export must be an object") };
    let (_, events) = top.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents key");
    let serde_json::Value::Array(events) = events else { panic!("traceEvents must be an array") };
    let mut begins = 0u64;
    let mut ends = 0u64;
    for event in events {
        let serde_json::Value::Object(fields) = event else { panic!("event must be an object") };
        let ph = fields.iter().find(|(k, _)| k == "ph").map(|(_, v)| v).expect("ph field");
        let serde_json::Value::String(ph) = ph else { panic!("ph not a string") };
        match ph.as_str() {
            "B" => begins += 1,
            "E" => ends += 1,
            _ => {}
        }
    }
    (begins, ends)
}

#[test]
fn empty_trace_analyzes_to_zeroes() {
    let analysis = analyze(&[], &AnalyzeOptions::default());
    assert_eq!(analysis.events, 0);
    assert_eq!(analysis.wall_ns, 0);
    assert_eq!(analysis.threads, 0);
    assert!(analysis.stages.is_empty());
    assert!(analysis.thread_utilization.is_empty());
    assert_eq!(analysis.stalls.count, 0);
    assert_eq!(analysis.orphan_ends, 0);
    assert_eq!(analysis.unclosed_begins, 0);
    // The text report renders without panicking on the degenerate case.
    assert!(analysis.render().contains("events"));
}

#[test]
fn single_thread_sequential_stages_account_time_and_stalls() {
    // [0,100] chunking, gap, [150,250] dedup — all on one thread.
    let records = vec![
        begin(0, 0, "chunking"),
        end(100, 0, "chunking"),
        begin(150, 0, "dedup"),
        end(250, 0, "dedup"),
    ];
    let analysis = analyze(&records, &AnalyzeOptions::default());
    assert_eq!(analysis.events, 4);
    assert_eq!(analysis.threads, 1);
    assert_eq!(analysis.wall_ns, 250);
    assert_eq!(analysis.orphan_ends, 0);
    assert_eq!(analysis.unclosed_begins, 0);

    let stage = |name: &str| analysis.stages.iter().find(|s| s.stage == name).expect("stage");
    assert_eq!(stage("chunking").total_ns, 100);
    assert_eq!(stage("chunking").count, 1);
    assert_eq!(stage("dedup").total_ns, 100);

    // One stall: the [100,150] gap where no stage was open.
    assert_eq!(analysis.stalls.count, 1);
    assert_eq!(analysis.stalls.total_ns, 50);
    assert_eq!(analysis.stalls.longest_ns, 50);
    assert_eq!(analysis.stalls.intervals, vec![(100, 150)]);

    // No second thread, so nothing can overlap.
    assert_eq!(analysis.overlap_ns, 0);

    // The single thread was busy 200 of 250 ns.
    assert_eq!(analysis.thread_utilization.len(), 1);
    let t0 = &analysis.thread_utilization[0];
    assert_eq!(t0.busy_ns, 200);
    assert!((t0.utilization - 0.8).abs() < 1e-9);
}

#[test]
fn interleaved_multi_thread_stages_overlap() {
    // Thread 0 works [0,200], thread 1 works [100,300]: they overlap on
    // [100,200], and the union [0,300] covers the window — no stalls.
    let records = vec![
        begin(0, 0, "hashing"),
        begin(100, 1, "dedup"),
        end(200, 0, "hashing"),
        end(300, 1, "dedup"),
    ];
    let analysis = analyze(&records, &AnalyzeOptions::default());
    assert_eq!(analysis.threads, 2);
    assert_eq!(analysis.wall_ns, 300);
    assert_eq!(analysis.overlap_ns, 100, "the two stages overlap on [100,200]");
    assert_eq!(analysis.stalls.count, 0);
    assert_eq!(analysis.stalls.total_ns, 0);

    // Concurrency sweep: depth 1 for [0,100] and [200,300], depth 2 for
    // [100,200].
    let depth =
        |d: u64| analysis.concurrency.iter().find(|(k, _)| *k == d).map(|(_, ns)| *ns).unwrap_or(0);
    assert_eq!(depth(1), 200);
    assert_eq!(depth(2), 100);

    let util = |tid: u32| {
        analysis.thread_utilization.iter().find(|t| t.tid == tid).expect("per-thread row")
    };
    assert_eq!(util(0).busy_ns, 200);
    assert_eq!(util(1).busy_ns, 200);
    assert_eq!(util(0).stages, 1);
}

#[test]
fn truncated_traces_balance_instead_of_panicking() {
    // An orphan StageEnd (its begin fell off the ring) and an unclosed
    // StageBegin (guard alive past trace_stop) in one trace.
    let records = vec![
        end(50, 0, "lost-begin"),
        begin(100, 1, "never-ends"),
        rec(150, 1, TraceEvent::HookHit),
    ];
    let balanced = balance_stages(&records);
    assert_eq!(balanced.orphan_ends, 1);
    assert_eq!(balanced.unclosed_begins, 1);
    assert_eq!(balanced.intervals.len(), 2);
    let orphan = balanced.intervals.iter().find(|i| i.stage == "lost-begin").unwrap();
    assert!(orphan.synthetic_begin && !orphan.synthetic_end);
    assert_eq!((orphan.start_ns, orphan.end_ns), (50, 50), "clamped to the window start");
    let unclosed = balanced.intervals.iter().find(|i| i.stage == "never-ends").unwrap();
    assert!(!unclosed.synthetic_begin && unclosed.synthetic_end);
    assert_eq!((unclosed.start_ns, unclosed.end_ns), (100, 150), "closed at the window end");

    let analysis = analyze(&records, &AnalyzeOptions::default());
    assert_eq!(analysis.orphan_ends, 1);
    assert_eq!(analysis.unclosed_begins, 1);
    assert!(analysis.render().contains("truncation"));

    // The Chrome export must stay balanced despite both defects.
    let (begins, ends) = chrome_phases(&mhd_obs::trace_to_chrome(&records));
    assert_eq!(begins, ends, "chrome export must pair every B with an E");
    assert_eq!(begins, 1, "the orphan end is skipped, the unclosed begin synthesized");
}

#[test]
fn lossy_jsonl_skips_garbage_and_blank_lines() {
    let good = vec![begin(10, 0, "s"), rec(20, 0, TraceEvent::ChunkEmitted { bytes: 7 })];
    let mut input = mhd_obs::trace_to_jsonl(&good);
    input.push_str("\n\nnot json at all\n{\"ts_ns\":1}\n");
    input.push_str(&mhd_obs::trace_to_jsonl(&[end(30, 0, "s")]));
    let (records, skipped) = mhd_obs::trace_from_jsonl_lossy(&input);
    assert_eq!(records.len(), 3, "the three valid lines survive");
    assert_eq!(skipped, 2, "garbage and truncated-object lines are counted");
    assert_eq!(records[2], end(30, 0, "s"));

    // Strict parsing refuses the same input; lossy is the recovery path.
    assert!(mhd_obs::trace_from_jsonl(&input).is_err());

    // And the recovered records analyze cleanly.
    let analysis = analyze(&records, &AnalyzeOptions::default());
    assert_eq!(analysis.events, 3);
    assert_eq!(analysis.stages.len(), 1);
    assert_eq!(analysis.stages[0].total_ns, 20);
}

#[test]
fn rate_buckets_honour_options() {
    let records: Vec<TraceRecord> = (0..40).map(|i| rec(i * 10, 0, TraceEvent::HookHit)).collect();
    let opts = AnalyzeOptions { rate_buckets: 4, ..AnalyzeOptions::default() };
    let analysis = analyze(&records, &opts);
    let hook = analysis.rates.iter().find(|r| r.kind == "HookHit").expect("HookHit rate");
    assert_eq!(hook.total, 40);
    assert_eq!(hook.per_bucket.len(), 4);
    assert_eq!(hook.per_bucket.iter().sum::<u64>(), 40);
}

/// Runtime phases share the process-global trace rings, so they run in
/// one test, in order.
#[test]
fn trace_runtime_behaviour() {
    // ---- Phase 1: a capacity-2 ring drops the StageBegin of an open
    // stage; the drained trace must still export balanced Chrome JSON
    // (this corrupted Perfetto renders before pair balancing). ----
    mhd_obs::trace_start(2);
    {
        let _stage = mhd_obs::stage("squeezed");
        for _ in 0..3 {
            mhd_obs::trace(TraceEvent::HookHit);
        }
        // Ring now holds two HookHits; the StageBegin has been dropped.
    }
    mhd_obs::trace_stop();
    let records = mhd_obs::trace_drain();
    assert!(
        records.iter().any(|r| matches!(r.event, TraceEvent::StageEnd { .. })),
        "the StageEnd survives the ring"
    );
    assert!(
        !records.iter().any(|r| matches!(r.event, TraceEvent::StageBegin { .. })),
        "the StageBegin must have been evicted for this regression test to bite"
    );
    let (begins, ends) = chrome_phases(&mhd_obs::trace_to_chrome(&records));
    assert_eq!(begins, ends, "orphan StageEnd must not unbalance the Chrome export");
    let analysis = analyze(&records, &AnalyzeOptions::default());
    assert_eq!(analysis.orphan_ends, 1, "the analyzer reports the truncation");

    // ---- Phase 2: ring buffers of exited threads are pruned. ----
    mhd_obs::trace_start(mhd_obs::DEFAULT_TRACE_CAPACITY);
    mhd_obs::trace(TraceEvent::HookHit); // ensure this thread owns a ring
    let before = mhd_obs::trace_buffer_count();
    std::thread::spawn(|| {
        mhd_obs::trace(TraceEvent::ChunkEmitted { bytes: 1 });
    })
    .join()
    .unwrap();
    assert_eq!(
        mhd_obs::trace_buffer_count(),
        before + 1,
        "the dead thread's ring lingers until the next drain or trace_start"
    );
    let records = mhd_obs::trace_drain();
    assert!(
        records.iter().any(|r| matches!(r.event, TraceEvent::ChunkEmitted { bytes: 1 })),
        "the dead thread's events are drained before its ring is pruned"
    );
    assert_eq!(
        mhd_obs::trace_buffer_count(),
        before,
        "draining prunes rings whose owning thread has exited"
    );
    mhd_obs::trace_stop();
}
