//! The `mhd-obs` layer observed end to end: a pipelined BF-MHD run must
//! light up the counters and stage timers wired through every crate; two
//! concurrent scoped runs must partition cleanly (per-scope sums equal
//! the global delta); a sharded fleet must attribute per-shard occupancy;
//! a multi-engine exhibit must yield per-engine sub-snapshots; and the
//! recorded trace must round-trip through JSONL and export well-formed
//! Chrome `trace_event` JSON.
//!
//! The obs registry, scope table and trace rings are process-global, so
//! this file keeps all assertions in one `#[test]` running the phases in
//! a fixed order (the other integration-test binaries each get their own
//! process and registry).

use mhd_bench::{run_engine, scaled_config, EngineKind};
use mhd_core::pipeline::run_pipelined;
use mhd_core::shard::ShardedMhd;
use mhd_core::{Deduplicator, EngineConfig, MhdEngine};
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

/// Counters recorded on the engine-driving threads — the set whose
/// per-scope values must sum to the global delta when every run is
/// scoped.
const PARTITIONED_COUNTERS: [&str; 6] = [
    "chunking.chunks",
    "hashing.chunks",
    "mhd.hook_hits",
    "pipeline.snapshots_processed",
    "store.disk_chunk_writes",
    "cache.manifest_inserts",
];

#[test]
fn pipelined_mhd_run_populates_internal_metrics() {
    mhd_obs::trace_start(mhd_obs::DEFAULT_TRACE_CAPACITY);

    // ---- Phase 1: unscoped pipelined run lights up every crate. ----
    let corpus = Corpus::generate(CorpusSpec::tiny(1234));
    // A manifest cache far smaller than the corpus's manifest population:
    // duplicate detection must go through the Bloom filter and the on-disk
    // Hook store, not just the RAM cache.
    let config = EngineConfig { cache_manifests: 2, ..EngineConfig::new(512, 8) };
    let mut engine = MhdEngine::new(MemBackend::new(), config).unwrap();
    let n = run_pipelined(&mut engine, &corpus.snapshots, 2).unwrap();
    let report = engine.finish().unwrap();
    assert!(report.hhr_count > 0, "the corpus must exercise HHR");

    let snap = mhd_obs::snapshot();
    assert!(!snap.is_empty());

    // Chunking: every input byte went through the boundary finder.
    let chunks = snap.counter("chunking.chunks");
    assert!(chunks > 0);
    let sizes = snap.histogram("chunking.chunk_bytes").expect("chunk-size histogram");
    assert_eq!(sizes.count, chunks);
    assert_eq!(sizes.sum, corpus.total_bytes(), "chunk sizes must cover the input");
    let cuts = snap.histogram("chunking.find_cuts_ns").expect("boundary-scan timer");
    assert!(cuts.count > 0 && cuts.sum > 0);

    // Hashing stage: same chunk population, non-zero occupancy.
    assert_eq!(snap.counter("hashing.chunks"), chunks);
    let hashing = snap.histogram("stage.hashing_ns").expect("hashing-stage timer");
    assert!(hashing.count > 0 && hashing.sum > 0);

    // Dedup stage ran once per file that produced a manifest.
    let dedup = snap.histogram("stage.dedup_ns").expect("dedup-stage timer");
    assert!(dedup.count > 0 && dedup.sum > 0);

    // MHD events: hook hits feed BME/HHR; HHR fired per the report.
    assert!(snap.counter("mhd.hook_hits") > 0);
    assert_eq!(snap.counter("mhd.hhr_splits"), report.hhr_count);
    assert!(snap.histogram("mhd.hhr_dup_bytes").is_some_and(|h| h.count == report.hhr_count));

    // Bloom filter fronted the hook lookups.
    assert!(snap.counter("bloom.inserts") > 0);
    assert_eq!(
        snap.counter("bloom.probes"),
        snap.counter("bloom.maybe_hits") + snap.counter("bloom.negatives")
    );

    // Manifest cache observed both hits and misses on this corpus.
    assert!(snap.counter("cache.manifest_hits") > 0);
    assert!(snap.counter("cache.manifest_misses") > 0);

    // Store backend wrote chunks and manifests.
    assert!(snap.counter("store.disk_chunk_writes") > 0);
    assert!(snap.counter("store.manifest_writes") > 0);

    // Pipeline: every snapshot staged by the producer was processed.
    assert_eq!(snap.counter("pipeline.snapshots_staged"), n as u64);
    assert_eq!(snap.counter("pipeline.snapshots_processed"), n as u64);
    let consumer = snap.histogram("pipeline.consumer_ns").expect("consumer occupancy");
    assert_eq!(consumer.count, n as u64);

    // No scope was entered yet: the snapshot has no scope section.
    assert!(snap.scopes.is_empty(), "unscoped run must not invent scopes");

    // The whole snapshot survives a JSON round trip bit-exactly.
    let json = serde_json::to_string_pretty(&snap).unwrap();
    let back: mhd_obs::Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);

    // ---- Phase 2: two concurrent scoped pipelined runs partition. ----
    let baseline = snap;
    let corpora =
        [Corpus::generate(CorpusSpec::tiny(4321)), Corpus::generate(CorpusSpec::tiny(5432))];
    std::thread::scope(|ts| {
        for (i, corpus) in corpora.iter().enumerate() {
            ts.spawn(move || {
                let _scope = mhd_obs::scope!("run={i}");
                let config = EngineConfig { cache_manifests: 2, ..EngineConfig::new(512, 8) };
                let mut engine = MhdEngine::new(MemBackend::new(), config).unwrap();
                run_pipelined(&mut engine, &corpus.snapshots, 2).unwrap();
                engine.finish().unwrap();
            });
        }
    });
    let after = mhd_obs::snapshot();
    let delta = after.diff(&baseline);
    let run0 = after.scope("run=0").expect("run=0 sub-snapshot");
    let run1 = after.scope("run=1").expect("run=1 sub-snapshot");
    for name in PARTITIONED_COUNTERS {
        assert!(run0.counter(name) > 0, "{name} must fire in run=0");
        assert!(run1.counter(name) > 0, "{name} must fire in run=1");
        assert_eq!(
            run0.counter(name) + run1.counter(name),
            delta.counter(name),
            "{name}: per-scope values must sum to the global delta"
        );
    }
    // Histograms attribute too: each run's consumer occupancy is its own
    // snapshot count, and the two sum to the global delta.
    let h0 = run0.histogram("pipeline.consumer_ns").expect("scoped consumer occupancy");
    let h1 = run1.histogram("pipeline.consumer_ns").expect("scoped consumer occupancy");
    assert_eq!(h0.count, corpora[0].snapshots.len() as u64);
    assert_eq!(h1.count, corpora[1].snapshots.len() as u64);
    assert_eq!(
        h0.count + h1.count,
        delta.histogram("pipeline.consumer_ns").expect("global delta").count
    );

    // ---- Phase 3: sharded fleet attributes per-shard occupancy. ----
    let baseline = after;
    let fleet_corpus = Corpus::generate(CorpusSpec::tiny(6543));
    let machines = fleet_corpus.spec().machines;
    const SHARDS: usize = 3;
    {
        let _scope = mhd_obs::scope!("fleet=test");
        let mut fleet = ShardedMhd::new_in_memory(SHARDS, EngineConfig::new(512, 8)).unwrap();
        for day in fleet_corpus.snapshots.chunks(machines) {
            fleet.process_batch(day).unwrap();
        }
        fleet.finish().unwrap();
    }
    let after = mhd_obs::snapshot();
    let fleet_scope = after.scope("fleet=test").expect("fleet sub-snapshot");
    let mut shard_chunks = 0u64;
    for i in 0..SHARDS {
        let shard = after.scope(&format!("shard={i}")).expect("per-shard sub-snapshot");
        let occupancy = shard.histogram("shard.batch_ns").expect("per-shard occupancy timer");
        assert!(occupancy.count > 0, "shard={i} ran at least one batch");
        let streams = shard.histogram("shard.batch_streams").expect("queue-imbalance histogram");
        assert_eq!(streams.count, occupancy.count);
        shard_chunks += shard.counter("chunking.chunks");
    }
    // Shard threads carry the parent label too, so the per-shard work
    // sums to the parent scope's (machine-affinity routing sends every
    // stream to exactly one shard).
    assert_eq!(shard_chunks, fleet_scope.counter("chunking.chunks"));
    assert_eq!(
        fleet_scope.counter("chunking.chunks"),
        after.diff(&baseline).counter("chunking.chunks")
    );

    // ---- Phase 4: a multi-engine exhibit yields per-engine scopes. ----
    let baseline = after;
    let bench_corpus = Corpus::generate(CorpusSpec::tiny(7654));
    let engines = [EngineKind::Mhd, EngineKind::Cdc];
    for kind in engines {
        run_engine(kind, &bench_corpus, scaled_config(512, 8, bench_corpus.total_bytes()));
    }
    let after = mhd_obs::snapshot();
    let delta = after.diff(&baseline);
    let mut engine_chunks = 0u64;
    for kind in engines {
        let scope = after
            .scope(&format!("engine={}", kind.label()))
            .unwrap_or_else(|| panic!("engine={} sub-snapshot", kind.label()));
        let chunks = scope.counter("chunking.chunks");
        assert!(chunks > 0, "engine={} must chunk", kind.label());
        engine_chunks += chunks;
    }
    assert_eq!(
        engine_chunks,
        delta.counter("chunking.chunks"),
        "per-engine chunk counts must sum to the global delta"
    );

    // ---- Phase 5: the trace round-trips and exports valid Chrome JSON. ----
    mhd_obs::trace_stop();
    let records = mhd_obs::trace_drain();
    assert!(!records.is_empty(), "the phases above must have produced trace events");
    assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "drain sorts by time");
    let kinds: Vec<&str> = records.iter().map(|r| r.event.kind()).collect();
    for expected in ["ChunkEmitted", "HookHit", "StageBegin", "StageEnd"] {
        assert!(kinds.contains(&expected), "trace must contain {expected}");
    }

    // JSONL round trip is lossless.
    let jsonl = mhd_obs::trace_to_jsonl(&records);
    let back = mhd_obs::trace_from_jsonl(&jsonl).unwrap();
    assert_eq!(back, records);

    // Chrome export: one well-formed trace_event object per record.
    let chrome = mhd_obs::trace_to_chrome(&records);
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("chrome export parses");
    let serde_json::Value::Object(top) = &doc else { panic!("chrome export must be an object") };
    let (_, events) =
        top.iter().find(|(k, _)| k == "traceEvents").expect("traceEvents envelope key");
    let serde_json::Value::Array(events) = events else { panic!("traceEvents must be an array") };
    assert_eq!(events.len(), records.len());
    let mut begins = 0u64;
    let mut ends = 0u64;
    for event in events {
        let serde_json::Value::Object(fields) = event else { panic!("event must be an object") };
        let get = |key: &str| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        for required in ["name", "ph", "ts", "pid", "tid"] {
            assert!(get(required).is_some(), "chrome event missing {required}");
        }
        let serde_json::Value::String(ph) = get("ph").unwrap() else { panic!("ph not a string") };
        match ph.as_str() {
            "B" => begins += 1,
            "E" => ends += 1,
            "i" => assert!(get("args").is_some(), "instants must carry args"),
            other => panic!("unexpected chrome phase {other:?}"),
        }
    }
    assert!(begins > 0, "stage events must appear");
    assert_eq!(begins, ends, "every stage must open and close");
}
