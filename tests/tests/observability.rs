//! The `mhd-obs` layer observed end to end: a pipelined BF-MHD run must
//! light up the counters and stage timers wired through every crate, and
//! the resulting snapshot must survive a JSON round trip.
//!
//! The obs registry is process-global, so this file keeps all assertions
//! in one `#[test]` (the other integration-test binaries each get their
//! own process and registry).

use mhd_core::pipeline::run_pipelined;
use mhd_core::{Deduplicator, EngineConfig, MhdEngine};
use mhd_store::MemBackend;
use mhd_workload::{Corpus, CorpusSpec};

#[test]
fn pipelined_mhd_run_populates_internal_metrics() {
    let corpus = Corpus::generate(CorpusSpec::tiny(1234));
    // A manifest cache far smaller than the corpus's manifest population:
    // duplicate detection must go through the Bloom filter and the on-disk
    // Hook store, not just the RAM cache.
    let config = EngineConfig { cache_manifests: 2, ..EngineConfig::new(512, 8) };
    let mut engine = MhdEngine::new(MemBackend::new(), config).unwrap();
    let n = run_pipelined(&mut engine, &corpus.snapshots, 2).unwrap();
    let report = engine.finish().unwrap();
    assert!(report.hhr_count > 0, "the corpus must exercise HHR");

    let snap = mhd_obs::snapshot();
    assert!(!snap.is_empty());

    // Chunking: every input byte went through the boundary finder.
    let chunks = snap.counter("chunking.chunks");
    assert!(chunks > 0);
    let sizes = snap.histogram("chunking.chunk_bytes").expect("chunk-size histogram");
    assert_eq!(sizes.count, chunks);
    assert_eq!(sizes.sum, corpus.total_bytes(), "chunk sizes must cover the input");
    let cuts = snap.histogram("chunking.find_cuts_ns").expect("boundary-scan timer");
    assert!(cuts.count > 0 && cuts.sum > 0);

    // Hashing stage: same chunk population, non-zero occupancy.
    assert_eq!(snap.counter("hashing.chunks"), chunks);
    let hashing = snap.histogram("stage.hashing_ns").expect("hashing-stage timer");
    assert!(hashing.count > 0 && hashing.sum > 0);

    // Dedup stage ran once per file that produced a manifest.
    let dedup = snap.histogram("stage.dedup_ns").expect("dedup-stage timer");
    assert!(dedup.count > 0 && dedup.sum > 0);

    // MHD events: hook hits feed BME/HHR; HHR fired per the report.
    assert!(snap.counter("mhd.hook_hits") > 0);
    assert_eq!(snap.counter("mhd.hhr_splits"), report.hhr_count);
    assert!(snap.histogram("mhd.hhr_dup_bytes").is_some_and(|h| h.count == report.hhr_count));

    // Bloom filter fronted the hook lookups.
    assert!(snap.counter("bloom.inserts") > 0);
    assert_eq!(
        snap.counter("bloom.probes"),
        snap.counter("bloom.maybe_hits") + snap.counter("bloom.negatives")
    );

    // Manifest cache observed both hits and misses on this corpus.
    assert!(snap.counter("cache.manifest_hits") > 0);
    assert!(snap.counter("cache.manifest_misses") > 0);

    // Store backend wrote chunks and manifests.
    assert!(snap.counter("store.disk_chunk_writes") > 0);
    assert!(snap.counter("store.manifest_writes") > 0);

    // Pipeline: every snapshot staged by the producer was processed.
    assert_eq!(snap.counter("pipeline.snapshots_staged"), n as u64);
    assert_eq!(snap.counter("pipeline.snapshots_processed"), n as u64);
    let consumer = snap.histogram("pipeline.consumer_ns").expect("consumer occupancy");
    assert_eq!(consumer.count, n as u64);

    // The whole snapshot survives a JSON round trip bit-exactly.
    let json = serde_json::to_string_pretty(&snap).unwrap();
    let back: mhd_obs::Snapshot = serde_json::from_str(&json).unwrap();
    assert_eq!(back, snap);
}
