//! Tests for the extension features beyond the paper's core: SI-MHD,
//! compact recipe encoding (Meister-style), persistent engine state, and
//! the staged pipeline at scale.

use mhd_core::{pipeline, restore, Deduplicator, EngineConfig, HookIndex, MhdEngine};
use mhd_integration::run_named;
use mhd_store::{FileManifest, MemBackend};
use mhd_workload::{Corpus, CorpusSpec};

#[test]
fn si_mhd_matches_bf_mhd_dedup_with_less_disk_metadata() {
    let corpus = Corpus::generate(CorpusSpec::tiny(811));
    let bf_cfg = EngineConfig::new(512, 8);
    let mut si_cfg = bf_cfg;
    si_cfg.mhd.hook_index = HookIndex::SparseIndex;

    let (bf, _) = run_named("bf-mhd", &corpus, bf_cfg);

    let mut si = MhdEngine::new(MemBackend::new(), si_cfg).unwrap();
    for s in &corpus.snapshots {
        si.process_snapshot(s).unwrap();
    }
    let si_report = si.finish().unwrap();

    assert_eq!(si_report.dup_bytes, bf.dup_bytes);
    assert_eq!(si_report.ledger.stored_data_bytes, bf.ledger.stored_data_bytes);
    assert_eq!(si_report.ledger.inodes_hooks, 0);
    assert!(si_report.ledger.total_metadata_bytes() < bf.ledger.total_metadata_bytes());
    assert!(si_report.ram_index_bytes > 0);
    // And it still restores.
    assert!(restore::verify_corpus(si.substrate_mut(), &corpus).unwrap() > 0);
}

#[test]
fn recipe_compression_saves_on_real_recipes() {
    // Deduplicate a corpus, then re-encode every produced FileManifest
    // compactly: the varint/delta coding must round-trip and save
    // substantially on real extent patterns.
    let corpus = Corpus::generate(CorpusSpec::tiny(812));
    let (_, mut substrate) = run_named("bf-mhd", &corpus, EngineConfig::new(512, 8));

    let mut fixed = 0usize;
    let mut compact = 0usize;
    let mut recipes = 0usize;
    for name in substrate.list_file_manifests() {
        let fm = substrate.load_file_manifest(&name).unwrap();
        let c = fm.encode_compact();
        assert_eq!(FileManifest::decode_compact(&c).unwrap(), fm, "{name}");
        fixed += fm.encoded_len();
        compact += c.len();
        recipes += 1;
    }
    assert!(recipes > 10);
    assert!(
        compact * 2 < fixed,
        "compact recipes {compact} should be well under half of fixed {fixed}"
    );
}

#[test]
fn engine_state_survives_serialisation_mid_corpus() {
    // Process half the corpus, serialise, deserialise into a new engine
    // over the same backend, process the rest: results must match a
    // single continuous run.
    let corpus = Corpus::generate(CorpusSpec::tiny(813));
    let config = EngineConfig::new(512, 8);
    let half = corpus.snapshots.len() / 2;

    // Continuous reference.
    let mut whole = MhdEngine::new(MemBackend::new(), config).unwrap();
    for s in &corpus.snapshots {
        whole.process_snapshot(s).unwrap();
    }
    let whole_report = whole.finish().unwrap();

    // Split run: first half...
    let mut first = MhdEngine::new(MemBackend::new(), config).unwrap();
    for s in &corpus.snapshots[..half] {
        first.process_snapshot(s).unwrap();
    }
    let _ = first.finish().unwrap(); // flush dirty manifests
    let state_json = serde_json::to_string(&first.export_state()).unwrap();
    let backend = std::mem::replace(first.substrate_mut().backend_mut(), MemBackend::new());

    // ...resume in a fresh engine over the same backend.
    let mut second = MhdEngine::new(backend, config).unwrap();
    second.import_state(serde_json::from_str(&state_json).unwrap()).unwrap();
    for s in &corpus.snapshots[half..] {
        second.process_snapshot(s).unwrap();
    }
    let resumed_report = second.finish().unwrap();

    // Dedup outcome identical to the continuous run (the cache starts
    // cold after resume, so I/O counters may differ slightly; bytes and
    // structures must not).
    assert_eq!(resumed_report.input_bytes, whole_report.input_bytes);
    assert_eq!(resumed_report.ledger.stored_data_bytes, whole_report.ledger.stored_data_bytes);
    assert_eq!(resumed_report.dup_bytes, whole_report.dup_bytes);
    assert_eq!(resumed_report.ledger.inodes_manifests, whole_report.ledger.inodes_manifests);
    assert!(restore::verify_corpus(second.substrate_mut(), &corpus).unwrap() > 0);
}

#[test]
fn pipeline_scales_prefetch_depths() {
    let corpus = Corpus::generate(CorpusSpec::tiny(814));
    let mut reference: Option<u64> = None;
    for prefetch in [1usize, 2, 8] {
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let n = pipeline::run_pipelined(&mut e, &corpus.snapshots, prefetch).unwrap();
        assert_eq!(n, corpus.snapshots.len());
        let r = e.finish().unwrap();
        match reference {
            None => reference = Some(r.ledger.stored_data_bytes),
            Some(expect) => assert_eq!(r.ledger.stored_data_bytes, expect, "prefetch {prefetch}"),
        }
    }
}
