//! Shared helpers for the cross-crate integration tests in `tests/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use mhd_core::{
    BimodalEngine, CdcEngine, DedupReport, Deduplicator, EngineConfig, FbcEngine, MhdEngine,
    SparseIndexEngine, SubChunkEngine,
};
use mhd_store::{MemBackend, Substrate};
use mhd_workload::Corpus;

/// Every engine under test, by name.
pub const ALL_ENGINES: [&str; 6] =
    ["bf-mhd", "cdc", "bimodal", "subchunk", "sparse-indexing", "fbc"];

/// Runs the named engine over `corpus`; returns the report and the
/// substrate for restore verification.
pub fn run_named(
    name: &str,
    corpus: &Corpus,
    config: EngineConfig,
) -> (DedupReport, Substrate<MemBackend>) {
    macro_rules! drive {
        ($engine:expr) => {{
            let mut engine = $engine.expect("valid config");
            for s in &corpus.snapshots {
                engine.process_snapshot(s).expect("dedup");
            }
            let report = engine.finish().expect("finish");
            (report, take_substrate(engine))
        }};
    }
    // Each engine type owns its substrate; move it out via a byte-level
    // swap with a fresh one (the engine is dropped right after).
    fn take_substrate<E>(mut engine: E) -> Substrate<MemBackend>
    where
        E: SubstrateAccess,
    {
        std::mem::replace(engine.substrate_mut_dyn(), Substrate::new(MemBackend::new()))
    }

    match name {
        "bf-mhd" => drive!(MhdEngine::new(MemBackend::new(), config)),
        "cdc" => drive!(CdcEngine::new(MemBackend::new(), config)),
        "bimodal" => drive!(BimodalEngine::new(MemBackend::new(), config)),
        "subchunk" => drive!(SubChunkEngine::new(MemBackend::new(), config)),
        "sparse-indexing" => drive!(SparseIndexEngine::new(MemBackend::new(), config)),
        "fbc" => drive!(FbcEngine::new(MemBackend::new(), config)),
        other => panic!("unknown engine {other}"),
    }
}

/// Uniform access to each engine's substrate.
pub trait SubstrateAccess {
    /// The engine's substrate.
    fn substrate_mut_dyn(&mut self) -> &mut Substrate<MemBackend>;
}

macro_rules! impl_access {
    ($($ty:ident),*) => {
        $(impl SubstrateAccess for $ty<MemBackend> {
            fn substrate_mut_dyn(&mut self) -> &mut Substrate<MemBackend> {
                self.substrate_mut()
            }
        })*
    };
}
impl_access!(MhdEngine, CdcEngine, BimodalEngine, SubChunkEngine, SparseIndexEngine, FbcEngine);
