//! The real implementation, compiled when the `obs` feature is on.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::sync::{AtomicU64, Mutex, OnceLock, Ordering};

use crate::{bucket_index, CounterSnapshot, HistogramSnapshot, Snapshot, BUCKETS};

/// A monotonically increasing event counter.
///
/// Increments are `Relaxed` atomic adds: cross-thread visibility of exact
/// intermediate values is not needed, only the final tally (reads in
/// [`snapshot`] see every increment that happened-before the snapshot
/// call). When an attribution [`Scope`](crate::Scope) is live on the
/// recording thread, the delta is also propagated to the scope's
/// sub-registry.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    fn new(name: &'static str) -> Self {
        Counter { name, value: AtomicU64::new(0) }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.add_unscoped(n);
        if crate::scope::any_active() {
            crate::scope::propagate_counter(self.name, n);
        }
    }

    /// Adds `n` without scope propagation — what the scope layer calls on
    /// its own sub-registry instances (propagating those would recurse).
    #[inline]
    pub(crate) fn add_unscoped(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A log₂-bucketed distribution of `u64` values (sizes in bytes, latencies
/// in nanoseconds), with count, saturating sum, min and max. Like
/// [`Counter`], records propagate to any live attribution scope on the
/// recording thread.
#[derive(Debug)]
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    fn new(name: &'static str) -> Self {
        Histogram {
            name,
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.record_unscoped(value);
        if crate::scope::any_active() {
            crate::scope::propagate_histogram(self.name, value);
        }
    }

    /// Records without scope propagation — what the scope layer calls on
    /// its own sub-registry instances (propagating those would recurse).
    pub(crate) fn record_unscoped(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a u64 nanosecond sum overflows only
        // after ~584 years of accumulated time, but byte sums can get big.
        let mut sum = self.sum.load(Ordering::Relaxed);
        loop {
            let next = sum.saturating_add(value);
            match self.sum.compare_exchange_weak(sum, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(actual) => sum = actual,
            }
        }
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    fn snapshot(&self, name: &str) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            name: name.to_string(),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let v = b.load(Ordering::Relaxed);
                    (v > 0).then_some((i as u32, v))
                })
                .collect(),
        }
    }
}

/// An RAII scope timer: records elapsed nanoseconds into its histogram
/// when dropped.
#[must_use = "a Span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span {
    histogram: &'static Histogram,
    start: Instant,
}

impl Span {
    /// Starts timing now; the elapsed time lands in `histogram` on drop.
    #[inline]
    pub fn enter(histogram: &'static Histogram) -> Span {
        Span { histogram, start: Instant::now() }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        self.histogram.record(self.start.elapsed().as_nanos() as u64);
    }
}

/// A name → leaked-metric registry. One global instance backs the public
/// `counter()`/`histogram()` entry points; the scope layer keeps one more
/// per attribution label. Metrics live for the process lifetime so hot
/// paths hold plain `&'static` handles and never lock.
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<&'static str, &'static Counter>>,
    histograms: Mutex<BTreeMap<&'static str, &'static Histogram>>,
}

impl Registry {
    pub(crate) fn new() -> Registry {
        Registry { counters: Mutex::new(BTreeMap::new()), histograms: Mutex::new(BTreeMap::new()) }
    }

    pub(crate) fn counter(&self, name: &'static str) -> &'static Counter {
        let mut map = lock_ignore_poison(&self.counters);
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Counter::new(name))))
    }

    pub(crate) fn histogram(&self, name: &'static str) -> &'static Histogram {
        let mut map = lock_ignore_poison(&self.histograms);
        map.entry(name).or_insert_with(|| Box::leak(Box::new(Histogram::new(name))))
    }

    /// Copies this registry's metrics into a [`Snapshot`] with no scope
    /// section (sub-snapshots are flat), sorted by name.
    pub(crate) fn snapshot_flat(&self) -> Snapshot {
        let counters = lock_ignore_poison(&self.counters)
            .iter()
            .map(|(name, c)| CounterSnapshot { name: name.to_string(), value: c.value() })
            .collect();
        let histograms =
            lock_ignore_poison(&self.histograms).iter().map(|(name, h)| h.snapshot(name)).collect();
        Snapshot { counters, histograms, scopes: Vec::new() }
    }

    /// Zeroes every metric (names stay registered).
    pub(crate) fn reset(&self) {
        for c in lock_ignore_poison(&self.counters).values() {
            c.reset();
        }
        for h in lock_ignore_poison(&self.histograms).values() {
            h.reset();
        }
    }
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Returns (registering on first use) the counter named `name`.
///
/// Prefer the [`crate::counter!`] macro in hot paths — it caches the
/// lookup per call site.
pub fn counter(name: &'static str) -> &'static Counter {
    registry().counter(name)
}

/// Returns (registering on first use) the histogram named `name`.
///
/// Prefer the [`crate::histogram!`] macro in hot paths — it caches the
/// lookup per call site.
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry().histogram(name)
}

/// Copies every registered metric into a serializable [`Snapshot`],
/// sorted by name, including one sub-snapshot per attribution scope label
/// (see [`crate::scope!`]).
pub fn snapshot() -> Snapshot {
    let mut snap = registry().snapshot_flat();
    snap.scopes = crate::scope::scope_snapshots();
    snap
}

/// Zeroes every registered metric, scoped ones included (names and scope
/// labels stay registered). Used by benches to isolate phases and by
/// tests.
pub fn reset() {
    registry().reset();
    crate::scope::reset_scopes();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_index;

    // The registry is process-global, so every test uses unique metric
    // names instead of reset() (tests run concurrently).

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Powers of two open a new bucket; their predecessors close one.
        for bits in 1..64u32 {
            let boundary = 1u64 << bits;
            assert_eq!(bucket_index(boundary), bits as usize + 1, "2^{bits}");
            assert_eq!(bucket_index(boundary - 1), bits as usize, "2^{bits}-1");
        }
    }

    #[test]
    fn histogram_extreme_values() {
        let h = histogram("test.extremes");
        h.record(0);
        h.record(u64::MAX);
        let snap = h.snapshot("test.extremes");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        // 0 + u64::MAX saturates at u64::MAX rather than wrapping to
        // u64::MAX - 1 on a further record.
        h.record(u64::MAX);
        assert_eq!(h.snapshot("test.extremes").sum, u64::MAX);
        let snap = h.snapshot("test.extremes");
        assert_eq!(snap.buckets, vec![(0, 1), (64, 2)]);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let h = histogram("test.boundaries");
        for v in [1u64, 2, 3, 4, 7, 8] {
            h.record(v);
        }
        // 1 | 2,3 | 4..7 | 8..15
        let snap = h.snapshot("test.boundaries");
        assert_eq!(snap.buckets, vec![(1, 1), (2, 2), (3, 2), (4, 1)]);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 8);
        assert_eq!(snap.sum, 25);
    }

    #[test]
    fn empty_histogram_snapshot_is_zeroed() {
        let snap = histogram("test.empty").snapshot("test.empty");
        assert_eq!(snap.count, 0);
        assert_eq!(snap.min, 0, "min must not leak the u64::MAX sentinel");
        assert_eq!(snap.max, 0);
        assert!(snap.buckets.is_empty());
    }

    #[test]
    fn concurrent_counter_increments_are_lossless() {
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        let c = counter("test.concurrent");
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for _ in 0..PER_THREAD {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn concurrent_histogram_records_are_lossless() {
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 5_000;
        let h = histogram("test.concurrent_hist");
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                scope.spawn(|| {
                    for v in 1..=PER_THREAD {
                        h.record(v);
                    }
                });
            }
        });
        let snap = h.snapshot("test.concurrent_hist");
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(snap.sum, THREADS * PER_THREAD * (PER_THREAD + 1) / 2);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, PER_THREAD);
    }

    #[test]
    fn span_records_on_drop() {
        let h = histogram("test.span_ns");
        {
            let _timer = Span::enter(h);
            std::hint::black_box(0u64);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn macros_cache_the_same_metric_per_name() {
        fn site_a() {
            crate::counter!("test.macro_shared").inc();
        }
        fn site_b() {
            crate::counter!("test.macro_shared").inc();
        }
        site_a();
        site_b();
        assert_eq!(counter("test.macro_shared").value(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        counter("test.sorted_b").inc();
        counter("test.sorted_a").add(3);
        let snap = snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("test.sorted_a"), 3);
        assert_eq!(snap.counter("test.absent"), 0);
    }
}
