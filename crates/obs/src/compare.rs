//! Cross-run snapshot comparison: two `--internals` JSON files in, one
//! regression report out.
//!
//! [`Snapshot::diff`] isolates one run's contribution inside a single
//! process; this module compares *separate* runs — two snapshots written
//! by different invocations (a baseline `results/io_bench.json` against a
//! candidate, or two CI runs of the same seeded exhibit). Metrics are
//! aligned by scope label and metric name; every aligned pair yields a
//! [`MetricDelta`] with absolute and relative change, and deltas past the
//! configured threshold are flagged so `mhd compare` can gate CI with a
//! nonzero exit.
//!
//! Alignment semantics:
//!
//! * counters compare their value; histograms compare their `count`
//!   (deterministic event populations) and — unless the name marks a
//!   timing (`…_ns`) — their `sum`. Timing sums are wall-clock noise
//!   across machines and runs, so they are compared only with
//!   [`CompareOptions::include_timings`].
//! * metrics present on one side only are listed as added/removed, not
//!   flagged — new instrumentation must not fail CI retroactively;
//! * scopes recurse: `engine=BF-MHD` in the baseline aligns with
//!   `engine=BF-MHD` in the candidate, and its inner metrics are reported
//!   with the scope label as a prefix.
//!
//! The threshold is symmetric (a 30% drop flags like a 30% rise): the
//! comparator gates *drift*, not goodness — whether fewer cache evictions
//! are an improvement is the reviewer's call, the tool's job is to make
//! the change impossible to miss.

use serde::Serialize;

use crate::Snapshot;

/// Tuning for [`compare_snapshots`].
#[derive(Debug, Clone)]
pub struct CompareOptions {
    /// Relative-change threshold, in percent, past which an aligned
    /// metric is flagged as a regression.
    pub fail_pct: f64,
    /// Also compare the sums of `…_ns` timing histograms (off by default:
    /// wall-clock noise).
    pub include_timings: bool,
}

impl Default for CompareOptions {
    fn default() -> Self {
        CompareOptions { fail_pct: 5.0, include_timings: false }
    }
}

/// One aligned metric's change between baseline and candidate.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct MetricDelta {
    /// Scope label (empty for the global registry).
    pub scope: String,
    /// Metric name.
    pub name: String,
    /// Which facet changed: `"value"` for counters, `"count"`/`"sum"` for
    /// histograms.
    pub facet: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// `new - base`.
    pub delta: f64,
    /// Relative change in percent (against the baseline; an appearance
    /// from zero counts as 100%).
    pub rel_pct: f64,
    /// Whether `|rel_pct|` crossed the threshold.
    pub regressed: bool,
}

/// The cross-run report produced by [`compare_snapshots`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct CompareReport {
    /// Threshold used, percent.
    pub threshold_pct: f64,
    /// Aligned metric facets compared.
    pub compared: u64,
    /// Facets flagged past the threshold.
    pub regressions: u64,
    /// Every aligned facet that changed at all, largest `|rel_pct|`
    /// first.
    pub deltas: Vec<MetricDelta>,
    /// Metric names present only in the candidate (scope-prefixed).
    pub added: Vec<String>,
    /// Metric names present only in the baseline (scope-prefixed).
    pub removed: Vec<String>,
}

impl CompareReport {
    /// True when no aligned facet crossed the threshold.
    pub fn is_clean(&self) -> bool {
        self.regressions == 0
    }

    /// Renders the report as human-readable text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "compared {} metric facet(s) at threshold {}%: {} regression(s)",
            self.compared, self.threshold_pct, self.regressions
        );
        let changed: Vec<&MetricDelta> = self.deltas.iter().collect();
        if !changed.is_empty() {
            let name_w = changed
                .iter()
                .map(|d| full_name(&d.scope, &d.name).len() + d.facet.len() + 1)
                .max()
                .unwrap_or(0);
            for d in &changed {
                let _ = writeln!(
                    out,
                    "  {:<name_w$}  {:>14} -> {:>14}  {:>+9.2}%{}",
                    format!("{}.{}", full_name(&d.scope, &d.name), d.facet),
                    d.base,
                    d.new,
                    d.rel_pct,
                    if d.regressed { "  REGRESSED" } else { "" },
                );
            }
        }
        for name in &self.added {
            let _ = writeln!(out, "  added:   {name}");
        }
        for name in &self.removed {
            let _ = writeln!(out, "  removed: {name}");
        }
        if self.deltas.is_empty() && self.added.is_empty() && self.removed.is_empty() {
            let _ = writeln!(out, "  snapshots are identical on every aligned facet");
        }
        out
    }
}

fn full_name(scope: &str, name: &str) -> String {
    if scope.is_empty() {
        name.to_string()
    } else {
        format!("[{scope}] {name}")
    }
}

/// Whether a histogram name denotes a timing (nanosecond) distribution.
fn is_timing(name: &str) -> bool {
    name.ends_with("_ns")
}

fn push_delta(
    report: &mut CompareReport,
    opts: &CompareOptions,
    scope: &str,
    name: &str,
    facet: &str,
    base: f64,
    new: f64,
) {
    report.compared += 1;
    if base == new {
        return;
    }
    let rel_pct = if base == 0.0 { 100.0 } else { (new - base) / base * 100.0 };
    let regressed = rel_pct.abs() > opts.fail_pct;
    if regressed {
        report.regressions += 1;
    }
    report.deltas.push(MetricDelta {
        scope: scope.to_string(),
        name: name.to_string(),
        facet: facet.to_string(),
        base,
        new,
        delta: new - base,
        rel_pct,
        regressed,
    });
}

fn compare_section(
    report: &mut CompareReport,
    opts: &CompareOptions,
    scope: &str,
    base: &Snapshot,
    new: &Snapshot,
) {
    for counter in &base.counters {
        match new.counters.binary_search_by(|c| c.name.as_str().cmp(&counter.name)) {
            Ok(i) => push_delta(
                report,
                opts,
                scope,
                &counter.name,
                "value",
                counter.value as f64,
                new.counters[i].value as f64,
            ),
            Err(_) => report.removed.push(full_name(scope, &counter.name)),
        }
    }
    for counter in &new.counters {
        if base.counters.binary_search_by(|c| c.name.as_str().cmp(&counter.name)).is_err() {
            report.added.push(full_name(scope, &counter.name));
        }
    }
    for hist in &base.histograms {
        let Some(other) = new.histogram(&hist.name) else {
            report.removed.push(full_name(scope, &hist.name));
            continue;
        };
        push_delta(report, opts, scope, &hist.name, "count", hist.count as f64, other.count as f64);
        if !is_timing(&hist.name) || opts.include_timings {
            push_delta(report, opts, scope, &hist.name, "sum", hist.sum as f64, other.sum as f64);
        }
    }
    for hist in &new.histograms {
        if base.histogram(&hist.name).is_none() {
            report.added.push(full_name(scope, &hist.name));
        }
    }
}

/// Compares two snapshots (typically two `--internals` JSON files) and
/// reports every aligned metric facet that drifted, flagging those past
/// `opts.fail_pct`. Scopes align by label; unmatched scopes are listed as
/// added/removed wholesale.
pub fn compare_snapshots(base: &Snapshot, new: &Snapshot, opts: &CompareOptions) -> CompareReport {
    let mut report = CompareReport { threshold_pct: opts.fail_pct, ..Default::default() };
    compare_section(&mut report, opts, "", base, new);
    for (label, sub) in &base.scopes {
        match new.scope(label) {
            Some(other) => compare_section(&mut report, opts, label, sub, other),
            None => report.removed.push(format!("[{label}] (entire scope)")),
        }
    }
    for (label, _) in &new.scopes {
        if base.scope(label).is_none() {
            report.added.push(format!("[{label}] (entire scope)"));
        }
    }
    report.deltas.sort_by(|a, b| {
        b.rel_pct
            .abs()
            .partial_cmp(&a.rel_pct.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.scope.clone(), a.name.clone()).cmp(&(b.scope.clone(), b.name.clone())))
    });
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterSnapshot, HistogramSnapshot};

    fn hist(name: &str, count: u64, sum: u64) -> HistogramSnapshot {
        HistogramSnapshot { name: name.into(), count, sum, min: 0, max: 0, buckets: vec![] }
    }

    fn snap(counters: Vec<(&str, u64)>, histograms: Vec<HistogramSnapshot>) -> Snapshot {
        Snapshot {
            counters: counters
                .into_iter()
                .map(|(n, v)| CounterSnapshot { name: n.into(), value: v })
                .collect(),
            histograms,
            scopes: vec![],
        }
    }

    #[test]
    fn identical_snapshots_are_clean() {
        let a = snap(vec![("c.x", 10)], vec![hist("h.bytes", 5, 500)]);
        let report = compare_snapshots(&a, &a.clone(), &CompareOptions::default());
        assert!(report.is_clean());
        assert!(report.deltas.is_empty());
        assert_eq!(report.compared, 3, "counter value + hist count + hist sum");
        assert!(report.render().contains("identical"));
    }

    #[test]
    fn regression_flags_past_threshold() {
        let base = snap(vec![("c.x", 100)], vec![]);
        let new = snap(vec![("c.x", 110)], vec![]);
        let strict =
            compare_snapshots(&base, &new, &CompareOptions { fail_pct: 5.0, ..Default::default() });
        assert_eq!(strict.regressions, 1);
        assert!(!strict.is_clean());
        assert!((strict.deltas[0].rel_pct - 10.0).abs() < 1e-9);
        let lenient = compare_snapshots(
            &base,
            &new,
            &CompareOptions { fail_pct: 15.0, ..Default::default() },
        );
        assert!(lenient.is_clean(), "10% change under a 15% threshold");
        assert_eq!(lenient.deltas.len(), 1, "still reported, just not flagged");
    }

    #[test]
    fn histogram_count_regresses_but_timing_sum_is_ignored() {
        let base = snap(vec![], vec![hist("stage.dedup_ns", 10, 1_000_000)]);
        let new = snap(vec![], vec![hist("stage.dedup_ns", 20, 9_000_000)]);
        let default = compare_snapshots(&base, &new, &CompareOptions::default());
        // The count doubled: flagged. The noisy ns sum: not even compared.
        assert_eq!(default.regressions, 1);
        assert_eq!(default.compared, 1);
        let with_timings = compare_snapshots(
            &base,
            &new,
            &CompareOptions { include_timings: true, ..Default::default() },
        );
        assert_eq!(with_timings.compared, 2);
        assert_eq!(with_timings.regressions, 2);
    }

    #[test]
    fn added_and_removed_are_informational() {
        let base = snap(vec![("old.only", 1)], vec![hist("gone_hist", 1, 1)]);
        let new = snap(vec![("new.only", 1)], vec![hist("new_hist", 1, 1)]);
        let report = compare_snapshots(&base, &new, &CompareOptions::default());
        assert!(report.is_clean(), "disjoint metrics: nothing aligned, nothing flagged");
        assert_eq!(report.removed, vec!["old.only".to_string(), "gone_hist".to_string()]);
        assert_eq!(report.added, vec!["new.only".to_string(), "new_hist".to_string()]);
    }

    #[test]
    fn scopes_align_by_label() {
        let mut base = snap(vec![("c", 1)], vec![]);
        base.scopes.push(("engine=a".into(), snap(vec![("c", 50)], vec![])));
        base.scopes.push(("engine=gone".into(), snap(vec![("c", 1)], vec![])));
        let mut new = snap(vec![("c", 1)], vec![]);
        new.scopes.push(("engine=a".into(), snap(vec![("c", 100)], vec![])));
        let report = compare_snapshots(&base, &new, &CompareOptions::default());
        let scoped = report.deltas.iter().find(|d| d.scope == "engine=a").expect("scoped delta");
        assert_eq!(scoped.base, 50.0);
        assert_eq!(scoped.new, 100.0);
        assert!(scoped.regressed);
        assert!(report.removed.iter().any(|n| n.contains("engine=gone")));
    }

    #[test]
    fn appearance_from_zero_counts_as_full_change() {
        let base = snap(vec![("c", 0)], vec![]);
        let new = snap(vec![("c", 3)], vec![]);
        let report = compare_snapshots(&base, &new, &CompareOptions::default());
        assert_eq!(report.deltas[0].rel_pct, 100.0);
        assert!(!report.is_clean());
    }

    #[test]
    fn report_serializes() {
        let base = snap(vec![("c", 1)], vec![]);
        let new = snap(vec![("c", 2)], vec![]);
        let report = compare_snapshots(&base, &new, &CompareOptions::default());
        let json = serde_json::to_string_pretty(&report).unwrap();
        assert!(json.contains("\"regressions\""));
        assert!(json.contains("\"rel_pct\""));
    }
}
