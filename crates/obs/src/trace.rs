//! Structured trace events: the "when and where" companion to the
//! aggregate metrics.
//!
//! Counters say a run had 10 000 Hook hits; a trace says *when* they
//! fired relative to stage boundaries and on which thread. Events are
//! typed ([`TraceEvent`]), timestamped against a process-wide monotonic
//! epoch, and collected into bounded per-thread ring buffers — recording
//! never blocks on another thread's buffer, and an overfull buffer drops
//! its oldest events (tallied in the `trace.dropped` counter) rather than
//! growing without bound.
//!
//! Tracing is off (one relaxed load per would-be event) until
//! [`trace_start`] arms it; [`trace_drain`] collects the merged,
//! time-sorted record list. Two export formats:
//!
//! * [`trace_to_jsonl`] / [`trace_from_jsonl`] — one JSON object per
//!   line, the lossless round-trip format;
//! * [`trace_to_chrome`] — Chrome `trace_event` JSON (the
//!   `{"traceEvents": [...]}` envelope), loadable in `about:tracing` or
//!   [Perfetto](https://ui.perfetto.dev): stages become `B`/`E` duration
//!   pairs, point events become thread-scoped instants.
//!
//! With the `obs` feature off, recording compiles to nothing; the data
//! model and exporters stay available so tooling that *reads* traces
//! builds in every configuration.

use serde::{Content, Deserialize, Serialize};

/// The registered stage-name families: every [`stage`] label must begin
/// with one of these prefixes (the text before any `=` or `.`
/// qualifier — `"pipeline.producer"` and `"shard=3"` are both covered).
/// `mhd-lint`'s L4 pass parses this constant from source and
/// cross-checks every `mhd_obs::stage(..)` call site, keeping the
/// analyzer's stage taxonomy closed under review.
pub const STAGE_NAME_PREFIXES: &[&str] =
    &["backup", "commit", "daemon", "engine", "io", "pipeline", "shard"];

/// Direction of a match extension ([`TraceEvent::BmeExtend`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExtendDir {
    /// Backward match extension (BME) — extending a manifest match toward
    /// earlier chunks.
    Backward,
    /// Forward match extension (FME) — extending toward later chunks.
    Forward,
}

/// One typed trace event. Variants mirror the MHD-specific mechanisms
/// (Hooks, BME/FME, HHR) plus the generic pipeline machinery; see
/// DESIGN.md for the event glossary.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The chunker emitted one content-defined chunk of `bytes` bytes.
    ChunkEmitted {
        /// Chunk length in bytes.
        bytes: u64,
    },
    /// A sampled hash matched a Hook (Bloom filter or sparse index hit).
    HookHit,
    /// A manifest match was extended by `chunks` chunks in direction
    /// `dir` (BME backward, FME forward).
    BmeExtend {
        /// Extension direction.
        dir: ExtendDir,
        /// Number of chunks the match grew by.
        chunks: u64,
    },
    /// Hysteresis re-chunking split one chunk into `parts` parts.
    HhrSplit {
        /// Number of pieces the chunk was split into.
        parts: u64,
    },
    /// The manifest cache evicted an entry (`dirty` = it needed
    /// write-back).
    CacheEvict {
        /// Whether the evicted entry was dirty.
        dirty: bool,
    },
    /// A named processing stage began (paired with [`TraceEvent::StageEnd`]
    /// by stage name; emitted by [`stage`] guards).
    StageBegin {
        /// Stage name, e.g. `"engine=mhd"` or `"backup"`.
        stage: String,
    },
    /// A named processing stage ended.
    StageEnd {
        /// Stage name matching the earlier `StageBegin`.
        stage: String,
    },
}

impl TraceEvent {
    /// The variant name — the `"type"` field in serialized form and the
    /// instant name in Chrome exports.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::ChunkEmitted { .. } => "ChunkEmitted",
            TraceEvent::HookHit => "HookHit",
            TraceEvent::BmeExtend { .. } => "BmeExtend",
            TraceEvent::HhrSplit { .. } => "HhrSplit",
            TraceEvent::CacheEvict { .. } => "CacheEvict",
            TraceEvent::StageBegin { .. } => "StageBegin",
            TraceEvent::StageEnd { .. } => "StageEnd",
        }
    }
}

// Serialized as a flat map tagged by a "type" field:
// {"type":"BmeExtend","dir":"Backward","chunks":3}. Hand-written because
// the serde facade's derive covers only unit enums.
impl Serialize for TraceEvent {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map: Vec<(String, Content)> = Vec::with_capacity(3);
        map.push(("type".to_string(), Content::Str(self.kind().to_string())));
        match self {
            TraceEvent::ChunkEmitted { bytes } => {
                map.push(("bytes".to_string(), Content::U64(*bytes)));
            }
            TraceEvent::HookHit => {}
            TraceEvent::BmeExtend { dir, chunks } => {
                let dir = match dir {
                    ExtendDir::Backward => "Backward",
                    ExtendDir::Forward => "Forward",
                };
                map.push(("dir".to_string(), Content::Str(dir.to_string())));
                map.push(("chunks".to_string(), Content::U64(*chunks)));
            }
            TraceEvent::HhrSplit { parts } => {
                map.push(("parts".to_string(), Content::U64(*parts)));
            }
            TraceEvent::CacheEvict { dirty } => {
                map.push(("dirty".to_string(), Content::Bool(*dirty)));
            }
            TraceEvent::StageBegin { stage } | TraceEvent::StageEnd { stage } => {
                map.push(("stage".to_string(), Content::Str(stage.clone())));
            }
        }
        serializer.serialize_content(Content::Map(map))
    }
}

impl<'de> Deserialize<'de> for TraceEvent {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut map = match deserializer.deserialize_content()? {
            Content::Map(m) => m,
            _ => return Err(serde::de::Error::custom("expected map for TraceEvent")),
        };
        let mut take =
            |key: &str| map.iter().position(|(k, _)| k == key).map(|i| map.swap_remove(i).1);
        let field = |content: Option<Content>, name: &str| {
            content.ok_or_else(|| {
                serde::de::Error::custom(format!("missing field `{name}` in TraceEvent"))
            })
        };
        let kind = match field(take("type"), "type")? {
            Content::Str(s) => s,
            _ => return Err(serde::de::Error::custom("TraceEvent `type` must be a string")),
        };
        fn de<'a, T: Deserialize<'a>, E: serde::de::Error>(content: Content) -> Result<T, E> {
            Deserialize::deserialize(content).map_err(serde::de::lift_err)
        }
        match kind.as_str() {
            "ChunkEmitted" => {
                Ok(TraceEvent::ChunkEmitted { bytes: de(field(take("bytes"), "bytes")?)? })
            }
            "HookHit" => Ok(TraceEvent::HookHit),
            "BmeExtend" => Ok(TraceEvent::BmeExtend {
                dir: de(field(take("dir"), "dir")?)?,
                chunks: de(field(take("chunks"), "chunks")?)?,
            }),
            "HhrSplit" => Ok(TraceEvent::HhrSplit { parts: de(field(take("parts"), "parts")?)? }),
            "CacheEvict" => {
                Ok(TraceEvent::CacheEvict { dirty: de(field(take("dirty"), "dirty")?)? })
            }
            "StageBegin" => {
                Ok(TraceEvent::StageBegin { stage: de(field(take("stage"), "stage")?)? })
            }
            "StageEnd" => Ok(TraceEvent::StageEnd { stage: de(field(take("stage"), "stage")?)? }),
            other => Err(serde::de::Error::custom(format!("unknown TraceEvent type {other:?}"))),
        }
    }
}

/// One recorded event: what happened, when (nanoseconds since the trace
/// epoch established by [`trace_start`]) and on which recording thread
/// (small dense ids, first-trace order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Monotonic nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Dense id of the recording thread.
    pub tid: u32,
    /// The event.
    pub event: TraceEvent,
}

#[cfg(feature = "obs")]
mod rt {
    use std::cell::OnceCell;
    use std::collections::VecDeque;
    use std::time::Instant;

    use crate::sync::{Arc, AtomicBool, AtomicU32, AtomicUsize, Mutex, OnceLock, Ordering};

    use super::{TraceEvent, TraceRecord};
    use crate::enabled::lock_ignore_poison;

    /// Default per-thread ring capacity for [`trace_start`] callers that
    /// don't need tuning (≈ a few MB per busy thread, worst case).
    pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

    static TRACING: AtomicBool = AtomicBool::new(false);
    static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_TRACE_CAPACITY);
    static NEXT_TID: AtomicU32 = AtomicU32::new(0);

    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }

    /// One thread's bounded ring. The mutex is uncontended in steady
    /// state (only the owning thread pushes; drains are rare), so
    /// recording is effectively lock-free.
    struct ThreadBuf {
        tid: u32,
        events: Mutex<VecDeque<TraceRecord>>,
    }

    fn bufs() -> &'static Mutex<Vec<Arc<ThreadBuf>>> {
        static BUFS: OnceLock<Mutex<Vec<Arc<ThreadBuf>>>> = OnceLock::new();
        BUFS.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static LOCAL: OnceCell<Arc<ThreadBuf>> = const { OnceCell::new() };
    }

    /// Drops registry entries whose owning thread has exited: the
    /// thread-local holds the second `Arc` reference, so a strong count
    /// of 1 means the thread's TLS was torn down and nothing can record
    /// into the ring again. Without this, churning worker threads (shard
    /// fleets, pipeline producers) leak one ring buffer each for the
    /// process lifetime. Callers hold the registry lock's critical
    /// section briefly; a live thread always counts ≥ 2 and is kept.
    ///
    /// A dead ring is only pruned once it is also *empty*. Recording
    /// takes the ring mutex but not the registry lock, so a thread can
    /// push a final event after [`trace_drain`] drained its ring and
    /// exit before the same drain's prune step — pruning on liveness
    /// alone would silently drop that event (the drained-event-loss
    /// window `mhd-lint mck`'s ring model explores; the pre-fix
    /// behaviour is preserved there as the `ring-prune` mutant). A
    /// dead-but-nonempty ring survives until the next drain empties it.
    fn prune_dead_threads(registry: &mut Vec<Arc<ThreadBuf>>) {
        registry.retain(|buf| {
            Arc::strong_count(buf) > 1 || !lock_ignore_poison(&buf.events).is_empty()
        });
    }

    /// Arms tracing with the given per-thread ring capacity (clamped to
    /// ≥ 1; pass [`DEFAULT_TRACE_CAPACITY`] when in doubt), clearing any
    /// events left from an earlier tracing window and reclaiming ring
    /// buffers of threads that have since exited.
    pub fn trace_start(capacity: usize) {
        let _ = epoch(); // pin the epoch before the first event
        CAPACITY.store(capacity.max(1), Ordering::Relaxed);
        let mut registry = lock_ignore_poison(bufs());
        // Clear before pruning: a fresh window discards leftover events,
        // which makes every dead ring empty and therefore prunable.
        for buf in registry.iter() {
            lock_ignore_poison(&buf.events).clear();
        }
        prune_dead_threads(&mut registry);
        drop(registry);
        TRACING.store(true, Ordering::Release);
    }

    /// Disarms tracing; already-recorded events stay drainable.
    pub fn trace_stop() {
        TRACING.store(false, Ordering::Release);
    }

    /// Whether tracing is armed — guard for callers that must do work
    /// (formatting, counting) before [`trace`].
    #[inline]
    pub fn tracing() -> bool {
        TRACING.load(Ordering::Relaxed)
    }

    /// Records one event on the current thread's ring (a no-op unless
    /// [`trace_start`] armed tracing). When the ring is full the oldest
    /// event is dropped and `trace.dropped` incremented.
    pub fn trace(event: TraceEvent) {
        if !tracing() {
            return;
        }
        let ts_ns = epoch().elapsed().as_nanos() as u64;
        // try_with: never panic during TLS teardown at thread exit.
        let _ = LOCAL.try_with(|cell| {
            let buf = cell.get_or_init(|| {
                let buf = Arc::new(ThreadBuf {
                    tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
                    events: Mutex::new(VecDeque::new()),
                });
                lock_ignore_poison(bufs()).push(Arc::clone(&buf));
                buf
            });
            let mut ring = lock_ignore_poison(&buf.events);
            if ring.len() >= CAPACITY.load(Ordering::Relaxed) {
                ring.pop_front();
                crate::counter!("trace.dropped").inc();
            }
            ring.push_back(TraceRecord { ts_ns, tid: buf.tid, event });
        });
    }

    /// Drains every thread's ring into one list sorted by timestamp
    /// (ties broken by thread id). Draining does not disarm tracing.
    /// Rings of threads that have exited are drained one last time and
    /// then pruned from the registry.
    pub fn trace_drain() -> Vec<TraceRecord> {
        let mut out = Vec::new();
        let mut registry = lock_ignore_poison(bufs());
        for buf in registry.iter() {
            out.extend(lock_ignore_poison(&buf.events).drain(..));
        }
        prune_dead_threads(&mut registry);
        drop(registry);
        out.sort_by_key(|r| (r.ts_ns, r.tid));
        out
    }

    /// Number of per-thread ring buffers currently registered (live
    /// threads that have traced, plus exited threads not yet pruned by
    /// [`trace_start`]/[`trace_drain`]). Observability for the pruning
    /// itself; mostly useful in tests.
    pub fn trace_buffer_count() -> usize {
        lock_ignore_poison(bufs()).len()
    }

    /// RAII guard emitting a [`TraceEvent::StageBegin`] /
    /// [`TraceEvent::StageEnd`] pair around a scope (built by [`stage`]).
    #[must_use = "a TraceStage emits StageEnd on drop; binding it to `_` drops immediately"]
    #[derive(Debug)]
    pub struct TraceStage {
        stage: Option<String>,
    }

    /// Opens a named stage: emits `StageBegin` now and `StageEnd` when
    /// the returned guard drops. When tracing is disarmed the name is
    /// never materialized and nothing is recorded.
    pub fn stage(name: impl Into<String>) -> TraceStage {
        if !tracing() {
            return TraceStage { stage: None };
        }
        let name = name.into();
        trace(TraceEvent::StageBegin { stage: name.clone() });
        TraceStage { stage: Some(name) }
    }

    impl Drop for TraceStage {
        fn drop(&mut self) {
            if let Some(stage) = self.stage.take() {
                trace(TraceEvent::StageEnd { stage });
            }
        }
    }

    #[cfg(test)]
    mod prune_tests {
        use std::collections::VecDeque;

        use super::*;

        #[test]
        fn dead_nonempty_rings_survive_pruning_until_drained() {
            // A ring whose owner exited (strong count 1) but that still
            // holds an event models the record-after-drain /
            // exit-before-prune race: recording takes only the ring
            // mutex, so the final event of a dying thread can land after
            // trace_drain's drain step. Pruning must keep the ring until
            // a drain empties it, or the event is silently lost.
            let buf = Arc::new(ThreadBuf { tid: u32::MAX, events: Mutex::new(VecDeque::new()) });
            lock_ignore_poison(&buf.events).push_back(TraceRecord {
                ts_ns: 0,
                tid: u32::MAX,
                event: TraceEvent::HookHit,
            });
            let mut registry = vec![buf];
            prune_dead_threads(&mut registry);
            assert_eq!(registry.len(), 1, "dead-but-nonempty ring must not be pruned");
            lock_ignore_poison(&registry[0].events).clear();
            prune_dead_threads(&mut registry);
            assert!(registry.is_empty(), "dead-and-empty ring is reclaimed");
        }
    }
}

#[cfg(not(feature = "obs"))]
mod rt {
    use super::{TraceEvent, TraceRecord};

    /// Default per-thread ring capacity (unused with the `obs` feature
    /// off).
    pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

    /// Does nothing with the `obs` feature off.
    #[inline]
    pub fn trace_start(_capacity: usize) {}

    /// Does nothing with the `obs` feature off.
    #[inline]
    pub fn trace_stop() {}

    /// Always `false` with the `obs` feature off.
    #[inline]
    pub fn tracing() -> bool {
        false
    }

    /// Does nothing with the `obs` feature off.
    #[inline]
    pub fn trace(_event: TraceEvent) {}

    /// Always empty with the `obs` feature off.
    #[inline]
    pub fn trace_drain() -> Vec<TraceRecord> {
        Vec::new()
    }

    /// Always 0 with the `obs` feature off.
    #[inline]
    pub fn trace_buffer_count() -> usize {
        0
    }

    /// No-op stand-in for the enabled `TraceStage`: zero-sized.
    #[must_use = "a TraceStage emits StageEnd on drop; binding it to `_` drops immediately"]
    #[derive(Debug)]
    pub struct TraceStage;

    /// Returns the zero-sized guard; `name` is never evaluated into a
    /// `String`.
    #[inline]
    pub fn stage(name: impl Into<String>) -> TraceStage {
        let _ = name;
        TraceStage
    }
}

pub use rt::*;

/// Serializes records as JSON Lines — one compact object per line, the
/// lossless round-trip format ([`trace_from_jsonl`] is the inverse).
pub fn trace_to_jsonl(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    for record in records {
        out.push_str(
            &serde_json::to_string(record).expect("trace record serialization cannot fail"),
        );
        out.push('\n');
    }
    out
}

/// Parses JSON Lines produced by [`trace_to_jsonl`] (blank lines are
/// skipped).
pub fn trace_from_jsonl(input: &str) -> Result<Vec<TraceRecord>, serde_json::Error> {
    input.lines().filter(|line| !line.trim().is_empty()).map(serde_json::from_str).collect()
}

/// Lenient variant of [`trace_from_jsonl`] for files that passed through
/// editors, partial downloads or log interleaving: blank lines are
/// skipped, unparseable lines are counted and dropped instead of failing
/// the whole file. Returns the parsed records plus the number of lines
/// skipped as garbage.
pub fn trace_from_jsonl_lossy(input: &str) -> (Vec<TraceRecord>, u64) {
    let mut records = Vec::new();
    let mut skipped = 0u64;
    for line in input.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match serde_json::from_str(line) {
            Ok(record) => records.push(record),
            Err(_) => skipped += 1,
        }
    }
    (records, skipped)
}

/// Serializes records as Chrome `trace_event` JSON — the
/// `{"traceEvents": [...]}` envelope `about:tracing` and Perfetto load.
/// Stage pairs become `B`/`E` duration events named by the stage string;
/// point events become thread-scoped instants (`ph: "i"`, `s: "t"`)
/// named by [`TraceEvent::kind`] with their fields under `args`.
/// Timestamps are microseconds (fractional — the format allows it).
///
/// Stage events are balanced before export (see
/// [`crate::analysis::balance_stages`]): a `StageBegin` whose end was
/// lost (guard dropped after `trace_stop`) gets a synthesized `E` at the
/// window's last timestamp, and an orphan `StageEnd` whose begin fell off
/// the recording ring is skipped — its reconstructed extent can cross
/// surviving stages on the same thread, which would corrupt Perfetto's
/// per-thread `B`/`E` nesting. Every emitted `B` therefore has exactly
/// one matching `E` in stack order.
pub fn trace_to_chrome(records: &[TraceRecord]) -> String {
    use serde_json::{Number, Value};
    let balanced = crate::analysis::balance_stages(records);
    // Sort rank at equal timestamps: ends close before new begins open,
    // instants land inside the enclosing stage. Secondary keys keep
    // same-thread nesting valid: at a shared timestamp the innermost
    // interval (latest start) ends first and the outermost (latest end)
    // begins first.
    let mut events: Vec<(u64, u8, u64, Value)> = Vec::with_capacity(records.len());
    for interval in &balanced.intervals {
        if interval.synthetic_begin {
            continue; // orphan E: skipped, tallied by the analyzer
        }
        events.push((
            interval.start_ns,
            1,
            u64::MAX - interval.end_ns,
            chrome_stage(&interval.stage, "B", interval.start_ns, interval.tid),
        ));
        // A zero-length interval shares its rank with its own B so the
        // stable sort keeps the pair in push order (B first).
        let end_rank = if interval.end_ns == interval.start_ns { 1 } else { 0 };
        events.push((
            interval.end_ns,
            end_rank,
            u64::MAX - interval.start_ns,
            chrome_stage(&interval.stage, "E", interval.end_ns, interval.tid),
        ));
    }
    for record in records {
        let args: Vec<(String, Value)> = match &record.event {
            TraceEvent::StageBegin { .. } | TraceEvent::StageEnd { .. } => continue,
            TraceEvent::ChunkEmitted { bytes } => {
                vec![("bytes".to_string(), Value::Number(Number::U64(*bytes)))]
            }
            TraceEvent::BmeExtend { dir, chunks } => vec![
                (
                    "dir".to_string(),
                    Value::String(
                        match dir {
                            ExtendDir::Backward => "Backward",
                            ExtendDir::Forward => "Forward",
                        }
                        .to_string(),
                    ),
                ),
                ("chunks".to_string(), Value::Number(Number::U64(*chunks))),
            ],
            TraceEvent::HhrSplit { parts } => {
                vec![("parts".to_string(), Value::Number(Number::U64(*parts)))]
            }
            TraceEvent::CacheEvict { dirty } => {
                vec![("dirty".to_string(), Value::Bool(*dirty))]
            }
            TraceEvent::HookHit => Vec::new(),
        };
        let mut fields = chrome_common(record.event.kind(), "i", record.ts_ns, record.tid);
        fields.push(("s".to_string(), Value::String("t".to_string())));
        fields.push(("args".to_string(), Value::Object(args)));
        events.push((record.ts_ns, 2, 0, Value::Object(fields)));
    }
    events.sort_by_key(|a| (a.0, a.1, a.2));
    let events: Vec<Value> = events.into_iter().map(|(_, _, _, v)| v).collect();
    serde_json::to_string(&serde_json::json!({ "traceEvents": events }))
        .expect("chrome trace serialization cannot fail")
}

fn chrome_common(name: &str, ph: &str, ts_ns: u64, tid: u32) -> Vec<(String, serde_json::Value)> {
    use serde_json::{Number, Value};
    vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("ph".to_string(), Value::String(ph.to_string())),
        ("ts".to_string(), Value::Number(Number::F64(ts_ns as f64 / 1000.0))),
        ("pid".to_string(), Value::Number(Number::U64(1))),
        ("tid".to_string(), Value::Number(Number::U64(tid as u64))),
    ]
}

fn chrome_stage(stage: &str, ph: &str, ts_ns: u64, tid: u32) -> serde_json::Value {
    serde_json::Value::Object(chrome_common(stage, ph, ts_ns, tid))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord {
                ts_ns: 10,
                tid: 0,
                event: TraceEvent::StageBegin { stage: "engine=mhd".to_string() },
            },
            TraceRecord { ts_ns: 20, tid: 0, event: TraceEvent::ChunkEmitted { bytes: 4096 } },
            TraceRecord { ts_ns: 30, tid: 1, event: TraceEvent::HookHit },
            TraceRecord {
                ts_ns: 40,
                tid: 1,
                event: TraceEvent::BmeExtend { dir: ExtendDir::Backward, chunks: 3 },
            },
            TraceRecord { ts_ns: 50, tid: 0, event: TraceEvent::HhrSplit { parts: 2 } },
            TraceRecord { ts_ns: 60, tid: 1, event: TraceEvent::CacheEvict { dirty: true } },
            TraceRecord {
                ts_ns: 70,
                tid: 0,
                event: TraceEvent::StageEnd { stage: "engine=mhd".to_string() },
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        let records = sample_records();
        let jsonl = trace_to_jsonl(&records);
        assert_eq!(jsonl.lines().count(), records.len());
        let back = trace_from_jsonl(&jsonl).unwrap();
        assert_eq!(back, records);
        // Blank lines are tolerated.
        let padded = format!("\n{jsonl}\n\n");
        assert_eq!(trace_from_jsonl(&padded).unwrap(), records);
    }

    #[test]
    fn jsonl_rejects_garbage() {
        assert!(trace_from_jsonl("{\"not\":\"a record\"}").is_err());
        assert!(trace_from_jsonl("nonsense").is_err());
        let unknown = r#"{"ts_ns":1,"tid":0,"event":{"type":"Mystery"}}"#;
        assert!(trace_from_jsonl(unknown).is_err());
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let records = sample_records();
        let chrome = trace_to_chrome(&records);
        let doc: serde_json::Value = serde_json::from_str(&chrome).unwrap();
        let serde_json::Value::Object(fields) = &doc else { panic!("not an object") };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .expect("traceEvents key");
        let serde_json::Value::Array(events) = events else { panic!("not an array") };
        assert_eq!(events.len(), records.len());
        let mut begins = 0;
        let mut ends = 0;
        for event in events {
            let serde_json::Value::Object(e) = event else { panic!("event not an object") };
            let get = |k: &str| e.iter().find(|(key, _)| key == k).map(|(_, v)| v);
            for required in ["name", "ph", "ts", "pid", "tid"] {
                assert!(get(required).is_some(), "missing {required}");
            }
            match get("ph").unwrap() {
                serde_json::Value::String(ph) => match ph.as_str() {
                    "B" => begins += 1,
                    "E" => ends += 1,
                    "i" => assert!(get("args").is_some(), "instants carry args"),
                    other => panic!("unexpected phase {other}"),
                },
                _ => panic!("ph not a string"),
            }
        }
        // Every stage opens and closes.
        assert_eq!(begins, 1);
        assert_eq!(begins, ends);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn runtime_records_drains_and_bounds() {
        // One test fn for all runtime behaviour: the ring state is
        // process-global and tests run concurrently.
        assert!(!tracing());
        trace(TraceEvent::HookHit); // disarmed: ignored
        trace_start(4);
        assert!(tracing());
        {
            let _stage = stage("unit-test");
            for i in 0..3 {
                trace(TraceEvent::ChunkEmitted { bytes: i });
            }
        }
        // 5 events on a capacity-4 ring: the oldest fell off.
        let records = trace_drain();
        assert_eq!(records.len(), 4);
        assert!(records.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns), "sorted by time");
        assert!(matches!(records.last().unwrap().event, TraceEvent::StageEnd { .. }));
        assert!(crate::counter("trace.dropped").value() >= 1);
        // Drained: nothing left.
        assert!(trace_drain().is_empty());
        // Disarmed stage guards record nothing.
        trace_stop();
        {
            let _stage = stage("disarmed");
        }
        assert!(trace_drain().is_empty());
    }
}
