//! No-op stand-ins, compiled when the `obs` feature is off.
//!
//! Every type is zero-sized and every method an empty `#[inline]` body, so
//! instrumented call sites vanish entirely after optimization — the
//! guarantee that lets library crates instrument unconditionally.

use crate::Snapshot;

/// No-op stand-in for the enabled [`Counter`](crate::Counter).
#[derive(Debug)]
pub struct Counter;

static NOOP_COUNTER: Counter = Counter;

impl Counter {
    /// The shared no-op instance (what [`crate::counter!`] expands to).
    #[inline]
    pub fn noop() -> &'static Counter {
        &NOOP_COUNTER
    }

    /// Does nothing.
    #[inline]
    pub fn inc(&self) {}

    /// Does nothing.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    #[inline]
    pub fn value(&self) -> u64 {
        0
    }
}

/// No-op stand-in for the enabled [`Histogram`](crate::Histogram).
#[derive(Debug)]
pub struct Histogram;

static NOOP_HISTOGRAM: Histogram = Histogram;

impl Histogram {
    /// The shared no-op instance (what [`crate::histogram!`] expands to).
    #[inline]
    pub fn noop() -> &'static Histogram {
        &NOOP_HISTOGRAM
    }

    /// Does nothing.
    #[inline]
    pub fn record(&self, _value: u64) {}

    /// Always 0.
    #[inline]
    pub fn count(&self) -> u64 {
        0
    }
}

/// No-op stand-in for the enabled [`Span`](crate::Span): zero-sized, reads
/// no clock.
#[must_use = "a Span records on drop; binding it to `_` drops immediately"]
#[derive(Debug)]
pub struct Span;

impl Span {
    /// Returns the zero-sized span.
    #[inline]
    pub fn enter(_histogram: &'static Histogram) -> Span {
        Span
    }
}

/// Returns the shared no-op counter, ignoring `name`.
#[inline]
pub fn counter(_name: &'static str) -> &'static Counter {
    Counter::noop()
}

/// Returns the shared no-op histogram, ignoring `name`.
#[inline]
pub fn histogram(_name: &'static str) -> &'static Histogram {
    Histogram::noop()
}

/// Always returns an empty [`Snapshot`].
pub fn snapshot() -> Snapshot {
    Snapshot::default()
}

/// Does nothing.
pub fn reset() {}
