//! Labelled attribution scopes: per-run / per-shard metric isolation.
//!
//! The global registry is cumulative per process; a [`Scope`] guard
//! (entered via [`crate::scope!`]) attributes every counter increment and
//! histogram record made on the current thread, while the guard lives, to
//! a named sub-registry *in addition to* the global one. Snapshots then
//! expose one flat sub-snapshot per label
//! ([`crate::Snapshot::scopes`]), so multi-engine exhibits can separate
//! `engine=mhd` from `engine=cdc` and fleet runs can compare `shard=0`
//! against `shard=7` without process restarts or reset-and-rerun.
//!
//! Scopes nest (`engine=mhd` → `shard=3` attributes to both) and are
//! thread-local; [`scope_labels`] / [`enter_scopes`] carry the current
//! attribution onto helper threads. The cost when *no* scope is active
//! anywhere in the process is a single relaxed atomic load per metric
//! event; with the `obs` feature off the whole module compiles to
//! nothing.

/// The registered attribution-label families: every [`crate::scope!`]
/// label is `key=value`, and `key` must appear in this list (`"t"` is
/// reserved for unit tests). `mhd-lint`'s L4 pass parses this constant
/// from source and cross-checks every `scope!` call site in the
/// workspace, so introducing a new label family means registering its
/// key here — which is also where dashboards and the snapshot comparator
/// learn what to expect.
pub const SCOPE_LABEL_KEYS: &[&str] =
    &["chunker", "cmd", "engine", "fleet", "io", "run", "shard", "t", "tenant"];

#[cfg(feature = "obs")]
mod imp {
    use std::cell::RefCell;
    use std::collections::{BTreeMap, HashMap};
    use std::marker::PhantomData;

    use crate::sync::{AtomicUsize, Mutex, OnceLock, Ordering};

    use crate::enabled::{lock_ignore_poison, Counter, Histogram, Registry};
    use crate::Snapshot;

    /// Number of live [`Scope`] guards across all threads. The fast path
    /// for unscoped processes: one relaxed load, no thread-local access.
    static ACTIVE: AtomicUsize = AtomicUsize::new(0);

    /// label → leaked per-scope registry. A label's registry (and its
    /// tallies) persists for the process lifetime; re-entering the label
    /// resumes it.
    fn scopes() -> &'static Mutex<BTreeMap<String, &'static Registry>> {
        static SCOPES: OnceLock<Mutex<BTreeMap<String, &'static Registry>>> = OnceLock::new();
        SCOPES.get_or_init(|| Mutex::new(BTreeMap::new()))
    }

    /// One entry of the thread's scope stack: the scope's registry plus
    /// per-thread caches of its metric handles (so steady-state
    /// propagation is a `HashMap` hit, not a registry lock).
    struct Frame {
        reg: &'static Registry,
        counters: HashMap<&'static str, &'static Counter>,
        histograms: HashMap<&'static str, &'static Histogram>,
    }

    thread_local! {
        static STACK: RefCell<Vec<(String, Frame)>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII guard for one attribution scope on the current thread (see the
    /// module docs). Not `Send`: a scope belongs to the thread that
    /// entered it. Guards must drop in LIFO order — bind to a named
    /// variable, not `_`.
    #[must_use = "a Scope attributes metrics only while it lives; binding it to `_` drops immediately"]
    #[derive(Debug)]
    pub struct Scope {
        _not_send: PhantomData<*const ()>,
    }

    impl Scope {
        /// Enters the scope labelled `label` on the current thread.
        /// Prefer the [`crate::scope!`] macro, which keeps the label
        /// expression unevaluated when the `obs` feature is off.
        pub fn enter(label: impl Into<String>) -> Scope {
            let label = label.into();
            let reg = *lock_ignore_poison(scopes())
                .entry(label.clone())
                .or_insert_with(|| Box::leak(Box::new(Registry::new())));
            STACK.with(|s| {
                s.borrow_mut().push((
                    label,
                    Frame { reg, counters: HashMap::new(), histograms: HashMap::new() },
                ));
            });
            ACTIVE.fetch_add(1, Ordering::Relaxed);
            Scope { _not_send: PhantomData }
        }
    }

    impl Drop for Scope {
        fn drop(&mut self) {
            ACTIVE.fetch_sub(1, Ordering::Relaxed);
            // try_with: never panic during TLS teardown at thread exit.
            let _ = STACK.try_with(|s| {
                s.borrow_mut().pop();
            });
        }
    }

    /// Whether any scope is live anywhere in the process (the guard on
    /// the metric hot paths).
    #[inline]
    pub(crate) fn any_active() -> bool {
        ACTIVE.load(Ordering::Relaxed) != 0
    }

    /// Attributes a counter delta to every distinct scope on this
    /// thread's stack.
    pub(crate) fn propagate_counter(name: &'static str, delta: u64) {
        let _ = STACK.try_with(|s| {
            let mut stack = s.borrow_mut();
            for i in 0..stack.len() {
                let reg = stack[i].1.reg;
                // A re-entered label appears twice on the stack but must
                // count once, or per-scope sums drift from the global.
                if stack[..i].iter().any(|(_, f)| std::ptr::eq(f.reg, reg)) {
                    continue;
                }
                let frame = &mut stack[i].1;
                frame.counters.entry(name).or_insert_with(|| reg.counter(name)).add_unscoped(delta);
            }
        });
    }

    /// Attributes a histogram sample to every distinct scope on this
    /// thread's stack.
    pub(crate) fn propagate_histogram(name: &'static str, value: u64) {
        let _ = STACK.try_with(|s| {
            let mut stack = s.borrow_mut();
            for i in 0..stack.len() {
                let reg = stack[i].1.reg;
                if stack[..i].iter().any(|(_, f)| std::ptr::eq(f.reg, reg)) {
                    continue;
                }
                let frame = &mut stack[i].1;
                frame
                    .histograms
                    .entry(name)
                    .or_insert_with(|| reg.histogram(name))
                    .record_unscoped(value);
            }
        });
    }

    /// One flat sub-snapshot per known scope label, sorted by label.
    pub(crate) fn scope_snapshots() -> Vec<(String, Snapshot)> {
        lock_ignore_poison(scopes())
            .iter()
            .map(|(label, reg)| (label.clone(), reg.snapshot_flat()))
            .collect()
    }

    /// Zeroes every scoped metric (labels and names stay registered).
    pub(crate) fn reset_scopes() {
        for reg in lock_ignore_poison(scopes()).values() {
            reg.reset();
        }
    }

    /// The labels of the scopes live on the current thread, outermost
    /// first — the input [`enter_scopes`] expects on a helper thread.
    pub fn scope_labels() -> Vec<String> {
        STACK
            .try_with(|s| s.borrow().iter().map(|(label, _)| label.clone()).collect())
            .unwrap_or_default()
    }

    /// Re-enters a list of scope labels (outermost first) on the current
    /// thread, so work handed to a spawned thread keeps its parent's
    /// attribution:
    ///
    /// ```
    /// let labels = mhd_obs::scope_labels();
    /// std::thread::spawn(move || {
    ///     let _scopes = mhd_obs::enter_scopes(&labels);
    ///     // metrics recorded here attribute like the parent's
    /// })
    /// .join()
    /// .unwrap();
    /// ```
    pub fn enter_scopes(labels: &[String]) -> Vec<Scope> {
        labels.iter().map(|label| Scope::enter(label.clone())).collect()
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    /// No-op stand-in for the enabled `Scope`: zero-sized, touches no
    /// thread-local state.
    #[must_use = "a Scope attributes metrics only while it lives; binding it to `_` drops immediately"]
    #[derive(Debug)]
    pub struct Scope;

    impl Scope {
        /// The zero-sized no-op guard (what [`crate::scope!`] expands to).
        #[inline]
        pub fn noop() -> Scope {
            Scope
        }

        /// Returns the zero-sized guard; `label` is dropped unused.
        #[inline]
        pub fn enter(label: impl Into<String>) -> Scope {
            let _ = label;
            Scope
        }
    }

    /// Always empty with the `obs` feature off.
    #[inline]
    pub fn scope_labels() -> Vec<String> {
        Vec::new()
    }

    /// Always empty with the `obs` feature off.
    #[inline]
    pub fn enter_scopes(labels: &[String]) -> Vec<Scope> {
        let _ = labels;
        Vec::new()
    }
}

pub use imp::*;

#[cfg(all(test, feature = "obs"))]
mod tests {
    use crate::{counter, histogram, snapshot};

    // The registry and scope table are process-global, so tests use
    // unique metric names and unique scope labels.

    #[test]
    fn scoped_counts_partition_and_sum_to_global() {
        let c = counter("scope_test.events");
        {
            let _a = crate::scope!("t=a");
            c.add(3);
            {
                let _b = crate::scope!("t=b");
                c.add(4); // lands in t=a AND t=b AND global
            }
        }
        c.add(5); // global only
        let snap = snapshot();
        assert_eq!(snap.counter("scope_test.events"), 12);
        assert_eq!(snap.scope("t=a").unwrap().counter("scope_test.events"), 7);
        assert_eq!(snap.scope("t=b").unwrap().counter("scope_test.events"), 4);
        // Sub-snapshots are flat — no nesting under t=a.
        assert!(snap.scope("t=a").unwrap().scopes.is_empty());
    }

    #[test]
    fn reentered_label_counts_once() {
        let c = counter("scope_test.reenter");
        let _outer = crate::scope!("t=reenter");
        let _inner = crate::scope!("t=reenter");
        c.inc();
        let snap = snapshot();
        assert_eq!(snap.scope("t=reenter").unwrap().counter("scope_test.reenter"), 1);
    }

    #[test]
    fn scoped_histograms_and_spans_attribute() {
        let h = histogram("scope_test.bytes");
        {
            let _s = crate::scope!("t=hist");
            h.record(100);
            let _span = crate::span!("scope_test.span_ns");
        }
        h.record(200);
        let snap = snapshot();
        let scoped = snap.scope("t=hist").unwrap();
        assert_eq!(scoped.histogram("scope_test.bytes").unwrap().count, 1);
        assert_eq!(scoped.histogram("scope_test.bytes").unwrap().sum, 100);
        assert_eq!(snap.histogram("scope_test.bytes").unwrap().count, 2);
        assert_eq!(scoped.histogram("scope_test.span_ns").unwrap().count, 1);
    }

    #[test]
    fn labels_propagate_to_spawned_threads() {
        let c = counter("scope_test.threaded");
        let _outer = crate::scope!("t=threaded");
        let labels = crate::scope_labels();
        assert!(labels.contains(&"t=threaded".to_string()));
        std::thread::spawn(move || {
            let _scopes = crate::enter_scopes(&labels);
            c.add(2);
        })
        .join()
        .unwrap();
        c.inc();
        let snap = snapshot();
        assert_eq!(snap.scope("t=threaded").unwrap().counter("scope_test.threaded"), 3);
    }

    #[test]
    fn scope_is_thread_local() {
        let c = counter("scope_test.isolated");
        let _outer = crate::scope!("t=isolated");
        // A thread that does NOT re-enter the labels stays unattributed.
        std::thread::spawn(move || c.add(10)).join().unwrap();
        let snap = snapshot();
        assert_eq!(snap.scope("t=isolated").unwrap().counter("scope_test.isolated"), 0);
        assert!(snap.counter("scope_test.isolated") >= 10);
    }
}
