//! Concurrency-primitive facade for the observability runtime.
//!
//! Every synchronization primitive the obs runtime uses — the trace-ring
//! registry, the scope table, the metric registry — is imported through
//! this module rather than straight from `std::sync`. The indirection
//! pins the exact primitive surface that `mhd-lint`'s deterministic
//! model checker mirrors: the trace-ring pruning model in
//! `crates/lint/src/models.rs` explores bounded interleavings of
//! precisely these operations (`Arc` strong counts, `Mutex`-guarded ring
//! pushes and drains), so a primitive added here without a model update
//! is visible in review, and `mhd-lint`'s L4 pass rejects direct
//! `std::sync` imports in the runtime modules.
//!
//! The re-exports are the real `std` types — there is no behavioral
//! shim; swapping in an instrumented implementation (loom-style) is a
//! one-module change.

pub use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
pub use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
