//! Operational observability for the mhd-dedup workspace.
//!
//! The paper's evaluation reasons from end-of-run aggregates (DER,
//! MetaDataRatio, ThroughputRatio); this crate makes the *inside* of a run
//! visible: where time goes per pipeline stage, how chunk sizes and probe
//! latencies distribute, and how often the MHD-specific events (Hook hits,
//! BME extensions, HHR splits) fire. Three aggregate primitives cover the
//! "how much" side:
//!
//! * [`Counter`] — a monotonically increasing atomic event count;
//! * [`Histogram`] — log₂-bucketed value distribution (sizes, latencies)
//!   with count/sum/min/max;
//! * [`Span`] — an RAII timer recording elapsed nanoseconds into a
//!   histogram, used for per-stage occupancy.
//!
//! All three live in a global, name-interned registry so instrumentation
//! points need no plumbing: `obs::counter!("mhd.hook_hit").inc()` anywhere
//! in the workspace contributes to the same metric, and
//! [`snapshot`] serializes the whole registry as one [`Snapshot`].
//!
//! # Scopes — run attribution without process restarts
//!
//! The registry is cumulative per process, which is useless for multi-run
//! exhibits (table1 runs four engines back to back). [`crate::scope!`]
//! pushes a label (`"engine=mhd"`, `"shard=3"`) onto a thread-aware stack;
//! every counter increment and histogram record made while the scope guard
//! lives is attributed to that scope *as well as* the global registry.
//! [`Snapshot::scopes`] then carries one sub-snapshot per label, and
//! [`Snapshot::diff`] isolates deltas between two snapshots. Scopes are
//! per-thread; [`scope_labels`]/[`enter_scopes`] re-establish the current
//! attribution on helper threads (the pipeline producer, shard workers).
//!
//! # Traces — the "when and where" side
//!
//! [`trace`] records typed [`TraceEvent`]s (chunk emissions, Hook hits,
//! BME extensions, HHR splits, cache evictions, stage begin/end pairs)
//! with monotonic timestamps into bounded per-thread ring buffers.
//! Tracing is off until [`trace_start`] flips it on; [`trace_drain`]
//! collects the merged, time-sorted event list, exportable as JSONL
//! ([`trace_to_jsonl`]) or Chrome `trace_event` JSON ([`trace_to_chrome`],
//! loadable in `about:tracing` / [Perfetto](https://ui.perfetto.dev)).
//! The [`analysis`] module derives per-stage wall time, thread
//! utilization, stage overlap, stall intervals and event-rate timelines
//! from a record stream (tolerating ring-truncated traces), and
//! [`compare`] aligns two persisted [`Snapshot`]s into a cross-run
//! regression report — the quantitative side of `mhd trace analyze` and
//! `mhd compare`.
//!
//! # The `obs` feature — no-op-when-disabled guarantee
//!
//! Everything here is compiled behind the `obs` cargo feature. With the
//! feature **off** (the default), the macros expand to zero-sized no-ops:
//! no atomics, no clock reads, no registry, and the optimizer removes the
//! calls entirely — library crates can therefore instrument
//! unconditionally. With the feature **on** (enabled by the CLI, the bench
//! harness and the integration tests), recording costs one relaxed atomic
//! RMW per event plus one `Instant::now()` pair per span; scope
//! attribution adds one relaxed load when no scope is active anywhere.
//!
//! ```
//! let chunks = mhd_obs::counter!("example.chunks");
//! chunks.inc();
//! let sizes = mhd_obs::histogram!("example.chunk_bytes");
//! sizes.record(4096);
//! {
//!     let _timer = mhd_obs::span!("example.stage_ns");
//!     // ... timed work ...
//! }
//! {
//!     let _scope = mhd_obs::scope!("engine=example");
//!     chunks.inc(); // counted globally AND under "engine=example"
//! }
//! let snap = mhd_obs::snapshot();
//! # #[cfg(feature = "obs")]
//! assert_eq!(snap.counter("example.chunks"), 2);
//! # #[cfg(feature = "obs")]
//! assert_eq!(snap.scope("engine=example").unwrap().counter("example.chunks"), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

pub mod sync;

#[cfg(feature = "obs")]
mod enabled;
#[cfg(feature = "obs")]
pub use enabled::{counter, histogram, reset, snapshot, Counter, Histogram, Span};

#[cfg(not(feature = "obs"))]
mod disabled;
#[cfg(not(feature = "obs"))]
pub use disabled::{counter, histogram, reset, snapshot, Counter, Histogram, Span};

mod scope;
pub use scope::{enter_scopes, scope_labels, Scope, SCOPE_LABEL_KEYS};

mod trace;
pub use trace::{
    stage, trace, trace_buffer_count, trace_drain, trace_from_jsonl, trace_from_jsonl_lossy,
    trace_start, trace_stop, trace_to_chrome, trace_to_jsonl, tracing, ExtendDir, TraceEvent,
    TraceRecord, TraceStage, DEFAULT_TRACE_CAPACITY, STAGE_NAME_PREFIXES,
};

pub mod analysis;
pub mod compare;

/// Returns the [`Counter`] registered under a `&'static str` name, cached
/// per call site (one `OnceLock` lookup ever; afterwards a plain static
/// read). Expands to a no-op handle with the `obs` feature off.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::counter($name))
    }};
}

/// Returns the [`Counter`] registered under a `&'static str` name, cached
/// per call site (one `OnceLock` lookup ever; afterwards a plain static
/// read). Expands to a no-op handle with the `obs` feature off.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
        $crate::Counter::noop()
    }};
}

/// Returns the [`Histogram`] registered under a `&'static str` name,
/// cached per call site. Expands to a no-op handle with the `obs` feature
/// off.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::histogram($name))
    }};
}

/// Returns the [`Histogram`] registered under a `&'static str` name,
/// cached per call site. Expands to a no-op handle with the `obs` feature
/// off.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        let _ = $name;
        $crate::Histogram::noop()
    }};
}

/// Opens an RAII [`Span`] timing the enclosing scope into the named
/// histogram (recorded in nanoseconds on drop). With the `obs` feature off
/// this is a zero-sized value and no clock is read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::histogram!($name))
    };
}

/// Enters a labelled attribution [`Scope`] on the current thread; the
/// label is built `format!`-style (`scope!("shard={idx}")`). Metrics
/// recorded while the returned guard lives are additionally attributed to
/// the label's sub-registry (see [`Snapshot::scopes`]). Guards must drop
/// in LIFO order (bind to a named `_scope`, not `_`). With the `obs`
/// feature off the format arguments are not evaluated and the guard is
/// zero-sized.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! scope {
    ($($arg:tt)*) => {
        $crate::Scope::enter(::std::format!($($arg)*))
    };
}

/// Enters a labelled attribution [`Scope`] on the current thread; the
/// label is built `format!`-style (`scope!("shard={idx}")`). Metrics
/// recorded while the returned guard lives are additionally attributed to
/// the label's sub-registry (see [`Snapshot::scopes`]). Guards must drop
/// in LIFO order (bind to a named `_scope`, not `_`). With the `obs`
/// feature off the format arguments are not evaluated and the guard is
/// zero-sized.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! scope {
    ($($arg:tt)*) => {{
        if false {
            let _ = ::std::format_args!($($arg)*);
        }
        $crate::Scope::noop()
    }};
}

/// Number of histogram buckets: bucket `b` counts values whose bit length
/// is `b` (i.e. `v == 0` → bucket 0, `v ∈ [2^(b-1), 2^b)` → bucket `b`).
pub const BUCKETS: usize = 65;

/// Maps a value to its log₂ bucket index (its bit length).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A point-in-time, serializable copy of every registered metric.
///
/// Metrics are sorted by name — the invariant behind the
/// `binary_search_by` lookups in [`Snapshot::counter`] /
/// [`Snapshot::histogram`] — so two snapshots of identical state compare
/// equal and serialize identically. [`Snapshot::scopes`] carries one
/// sub-snapshot per attribution label, sorted by label.
#[derive(Debug, Clone, PartialEq, Default, Serialize)]
pub struct Snapshot {
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
    /// Per-scope sub-snapshots, sorted by scope label. A scope's metrics
    /// accumulate for the process lifetime (re-entering `engine=mhd`
    /// resumes its tallies); sub-snapshots never nest further.
    pub scopes: Vec<(String, Snapshot)>,
}

/// One counter's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name (dotted, e.g. `"mhd.hook_hit"`).
    pub name: String,
    /// Total count at snapshot time.
    pub value: u64,
}

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name (dotted, e.g. `"pipeline.consumer_ns"`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value (0 when `count == 0`).
    pub max: u64,
    /// Non-empty log₂ buckets as `(bit_length, count)` pairs — see
    /// [`bucket_index`].
    pub buckets: Vec<(u32, u64)>,
}

// Hand-written so that snapshots persisted before the scope layer existed
// (no `scopes` field) still load: the shim's derive has no
// `#[serde(default)]`.
impl<'de> Deserialize<'de> for Snapshot {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut map = match deserializer.deserialize_content()? {
            serde::Content::Map(m) => m,
            _ => return Err(serde::de::Error::custom("expected map for Snapshot")),
        };
        let mut take =
            |key: &str| map.iter().position(|(k, _)| k == key).map(|i| map.swap_remove(i).1);
        let counters = match take("counters") {
            Some(c) => Deserialize::deserialize(c).map_err(serde::de::lift_err::<D::Error>)?,
            None => return Err(serde::de::Error::custom("missing field `counters` in Snapshot")),
        };
        let histograms = match take("histograms") {
            Some(c) => Deserialize::deserialize(c).map_err(serde::de::lift_err::<D::Error>)?,
            None => return Err(serde::de::Error::custom("missing field `histograms` in Snapshot")),
        };
        let scopes = match take("scopes") {
            Some(c) => Deserialize::deserialize(c).map_err(serde::de::lift_err::<D::Error>)?,
            None => Vec::new(),
        };
        Ok(Snapshot { counters, histograms, scopes })
    }
}

impl Snapshot {
    /// Whether the snapshot contains no metrics at all (always true with
    /// the `obs` feature disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty() && self.scopes.is_empty()
    }

    /// Looks up a counter value by name (0 when absent). Binary search on
    /// the sorted-by-name invariant.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .binary_search_by(|c| c.name.as_str().cmp(name))
            .map_or(0, |i| self.counters[i].value)
    }

    /// Looks up a histogram by name. Binary search on the sorted-by-name
    /// invariant.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .binary_search_by(|h| h.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.histograms[i])
    }

    /// Looks up a scope's sub-snapshot by label. Binary search on the
    /// sorted-by-label invariant.
    pub fn scope(&self, label: &str) -> Option<&Snapshot> {
        self.scopes.binary_search_by(|(l, _)| l.as_str().cmp(label)).ok().map(|i| &self.scopes[i].1)
    }

    /// The delta of `self` over an earlier `baseline` snapshot: counters
    /// and histogram counts/sums/buckets are subtracted pairwise
    /// (saturating), letting exhibits isolate one run's contribution
    /// without resetting the registry. `min`/`max` are not recoverable
    /// from two cumulative states and are carried over from `self`;
    /// scopes are diffed per matching label.
    pub fn diff(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| CounterSnapshot {
                name: c.name.clone(),
                value: c.value.saturating_sub(baseline.counter(&c.name)),
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let Some(b) = baseline.histogram(&h.name) else { return h.clone() };
                HistogramSnapshot {
                    name: h.name.clone(),
                    count: h.count.saturating_sub(b.count),
                    sum: h.sum.saturating_sub(b.sum),
                    min: h.min,
                    max: h.max,
                    buckets: h
                        .buckets
                        .iter()
                        .map(|&(bit, n)| {
                            let base =
                                b.buckets.iter().find(|(bb, _)| *bb == bit).map_or(0, |(_, n)| *n);
                            (bit, n.saturating_sub(base))
                        })
                        .filter(|&(_, n)| n > 0)
                        .collect(),
                }
            })
            .collect();
        let scopes = self
            .scopes
            .iter()
            .map(|(label, snap)| {
                let diffed = match baseline.scope(label) {
                    Some(base) => snap.diff(base),
                    None => snap.clone(),
                };
                (label.clone(), diffed)
            })
            .collect();
        Snapshot { counters, histograms, scopes }
    }
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q ∈ [0, 1]`) from the log₂ buckets by
    /// linear interpolation inside the covering bucket, clamped to the
    /// recorded `[min, max]`. Bucket `b` spans `[2^(b-1), 2^b)`, so the
    /// estimate's relative error is bounded by the bucket width (at worst
    /// a factor of 2); exact for `count == 0` (returns 0) and tightened by
    /// the min/max clamp at the distribution edges.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for &(bit, n) in &self.buckets {
            cum += n;
            if cum as f64 >= target {
                if bit == 0 {
                    return 0.0; // bucket 0 holds only the value 0
                }
                let lo = ((bit - 1) as f64).exp2();
                let hi = (bit as f64).exp2();
                let frac = (target - (cum - n) as f64) / n as f64;
                let est = lo + frac.clamp(0.0, 1.0) * (hi - lo);
                return est.clamp(self.min as f64, self.max as f64);
            }
        }
        self.max as f64
    }

    /// Estimated median — `quantile(0.5)`.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Estimated 90th percentile — `quantile(0.9)`.
    pub fn p90(&self) -> f64 {
        self.quantile(0.9)
    }

    /// Estimated 99th percentile — `quantile(0.99)`.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trip() {
        let snap = Snapshot {
            counters: vec![CounterSnapshot { name: "a.events".into(), value: u64::MAX }],
            histograms: vec![HistogramSnapshot {
                name: "a.bytes".into(),
                count: 3,
                sum: 4097,
                min: 0,
                max: 4096,
                buckets: vec![(0, 1), (1, 1), (13, 1)],
            }],
            scopes: vec![(
                "engine=mhd".to_string(),
                Snapshot {
                    counters: vec![CounterSnapshot { name: "a.events".into(), value: 7 }],
                    histograms: vec![],
                    scopes: vec![],
                },
            )],
        };
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(!back.is_empty());
        assert_eq!(back.counter("a.events"), u64::MAX);
        assert_eq!(back.histogram("a.bytes").unwrap().mean(), 4097.0 / 3.0);
        assert_eq!(back.scope("engine=mhd").unwrap().counter("a.events"), 7);
        assert!(back.scope("engine=absent").is_none());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        let back: Snapshot = serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn pre_scope_snapshot_json_still_loads() {
        // A snapshot persisted before the scope layer existed has no
        // `scopes` key; it must deserialize with an empty scope list.
        let old = r#"{"counters":[{"name":"a","value":1}],"histograms":[]}"#;
        let snap: Snapshot = serde_json::from_str(old).unwrap();
        assert_eq!(snap.counter("a"), 1);
        assert!(snap.scopes.is_empty());
    }

    #[test]
    fn lookups_honour_the_sorted_invariant() {
        // Many names, inserted sorted (the registry invariant): every one
        // must be found by the binary-search lookups, and absent names
        // (before, between, after) must miss.
        let names: Vec<String> = (0..50).map(|i| format!("m.{i:03}")).collect();
        let snap = Snapshot {
            counters: names
                .iter()
                .enumerate()
                .map(|(i, n)| CounterSnapshot { name: n.clone(), value: i as u64 + 1 })
                .collect(),
            histograms: names
                .iter()
                .enumerate()
                .map(|(i, n)| HistogramSnapshot {
                    name: n.clone(),
                    count: i as u64 + 1,
                    sum: 0,
                    min: 0,
                    max: 0,
                    buckets: vec![],
                })
                .collect(),
            scopes: names.iter().map(|n| (format!("scope={n}"), Snapshot::default())).collect(),
        };
        assert!(snap.counters.windows(2).all(|w| w[0].name < w[1].name), "fixture sorted");
        for (i, n) in names.iter().enumerate() {
            assert_eq!(snap.counter(n), i as u64 + 1, "{n}");
            assert_eq!(snap.histogram(n).unwrap().count, i as u64 + 1, "{n}");
            assert!(snap.scope(&format!("scope={n}")).is_some(), "{n}");
        }
        assert_eq!(snap.counter("a.before"), 0);
        assert_eq!(snap.counter("m.0005x"), 0);
        assert_eq!(snap.counter("z.after"), 0);
        assert!(snap.histogram("z.after").is_none());
        assert!(snap.scope("z.after").is_none());
    }

    #[test]
    fn diff_isolates_a_run() {
        let baseline = Snapshot {
            counters: vec![CounterSnapshot { name: "c".into(), value: 10 }],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 2,
                sum: 6,
                min: 2,
                max: 4,
                buckets: vec![(2, 1), (3, 1)],
            }],
            scopes: vec![],
        };
        let later = Snapshot {
            counters: vec![
                CounterSnapshot { name: "c".into(), value: 15 },
                CounterSnapshot { name: "new".into(), value: 3 },
            ],
            histograms: vec![HistogramSnapshot {
                name: "h".into(),
                count: 5,
                sum: 30,
                min: 2,
                max: 16,
                buckets: vec![(2, 1), (3, 2), (5, 2)],
            }],
            scopes: vec![("s".to_string(), baseline.clone())],
        };
        let d = later.diff(&baseline);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.counter("new"), 3);
        let h = d.histogram("h").unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 24);
        // Zeroed buckets are dropped; changed ones keep the delta.
        assert_eq!(h.buckets, vec![(3, 1), (5, 2)]);
        // A scope absent from the baseline passes through unchanged.
        assert_eq!(d.scope("s").unwrap().counter("c"), 10);
    }

    #[test]
    fn quantile_estimates_from_buckets() {
        // 100 values of 100 (bucket 7), 10 of 1000 (bucket 10), 1 of
        // 10_000 (bucket 14).
        let h = HistogramSnapshot {
            name: "q".into(),
            count: 111,
            sum: 100 * 100 + 10 * 1000 + 10_000,
            min: 100,
            max: 10_000,
            buckets: vec![(7, 100), (10, 10), (14, 1)],
        };
        // p50 lands inside bucket 7 = [64, 128): within a factor of 2.
        let p50 = h.p50();
        assert!((64.0..128.0).contains(&p50), "p50 {p50}");
        // p99 lands in bucket 10 = [512, 1024), clamped ≤ max.
        let p99 = h.p99();
        assert!((512.0..=1024.0).contains(&p99), "p99 {p99}");
        // The extreme quantile is clamped to max.
        assert_eq!(h.quantile(1.0), 10_000.0);
        assert_eq!(h.quantile(0.0).max(100.0), 100.0, "clamped to min");
        // Empty histogram: 0.
        let empty = HistogramSnapshot {
            name: "e".into(),
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![],
        };
        assert_eq!(empty.quantile(0.5), 0.0);
        // Bucket 0 (value 0) quantiles to exactly 0.
        let zeros = HistogramSnapshot {
            name: "z".into(),
            count: 4,
            sum: 0,
            min: 0,
            max: 0,
            buckets: vec![(0, 4)],
        };
        assert_eq!(zeros.quantile(0.9), 0.0);
    }
}
