//! Operational observability for the mhd-dedup workspace.
//!
//! The paper's evaluation reasons from end-of-run aggregates (DER,
//! MetaDataRatio, ThroughputRatio); this crate makes the *inside* of a run
//! visible: where time goes per pipeline stage, how chunk sizes and probe
//! latencies distribute, and how often the MHD-specific events (Hook hits,
//! BME extensions, HHR splits) fire. Three primitives cover all of it:
//!
//! * [`Counter`] — a monotonically increasing atomic event count;
//! * [`Histogram`] — log₂-bucketed value distribution (sizes, latencies)
//!   with count/sum/min/max;
//! * [`Span`] — an RAII timer recording elapsed nanoseconds into a
//!   histogram, used for per-stage occupancy.
//!
//! All three live in a global, name-interned registry so instrumentation
//! points need no plumbing: `obs::counter!("mhd.hook_hit").inc()` anywhere
//! in the workspace contributes to the same metric, and
//! [`snapshot`] serializes the whole registry as one [`Snapshot`].
//!
//! # The `obs` feature — no-op-when-disabled guarantee
//!
//! Everything here is compiled behind the `obs` cargo feature. With the
//! feature **off** (the default), the macros expand to zero-sized no-ops:
//! no atomics, no clock reads, no registry, and the optimizer removes the
//! calls entirely — library crates can therefore instrument
//! unconditionally. With the feature **on** (enabled by the CLI, the bench
//! harness and the integration tests), recording costs one relaxed atomic
//! RMW per event plus one `Instant::now()` pair per span.
//!
//! ```
//! let chunks = mhd_obs::counter!("example.chunks");
//! chunks.inc();
//! let sizes = mhd_obs::histogram!("example.chunk_bytes");
//! sizes.record(4096);
//! {
//!     let _timer = mhd_obs::span!("example.stage_ns");
//!     // ... timed work ...
//! }
//! let snap = mhd_obs::snapshot();
//! # #[cfg(feature = "obs")]
//! assert_eq!(snap.counter("example.chunks"), 1);
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

#[cfg(feature = "obs")]
mod enabled;
#[cfg(feature = "obs")]
pub use enabled::{counter, histogram, reset, snapshot, Counter, Histogram, Span};

#[cfg(not(feature = "obs"))]
mod disabled;
#[cfg(not(feature = "obs"))]
pub use disabled::{counter, histogram, reset, snapshot, Counter, Histogram, Span};

/// Returns the [`Counter`] registered under a `&'static str` name, cached
/// per call site (one `OnceLock` lookup ever; afterwards a plain static
/// read). Expands to a no-op handle with the `obs` feature off.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::counter($name))
    }};
}

/// Returns the [`Counter`] registered under a `&'static str` name, cached
/// per call site (one `OnceLock` lookup ever; afterwards a plain static
/// read). Expands to a no-op handle with the `obs` feature off.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        let _ = $name;
        $crate::Counter::noop()
    }};
}

/// Returns the [`Histogram`] registered under a `&'static str` name,
/// cached per call site. Expands to a no-op handle with the `obs` feature
/// off.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::histogram($name))
    }};
}

/// Returns the [`Histogram`] registered under a `&'static str` name,
/// cached per call site. Expands to a no-op handle with the `obs` feature
/// off.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        let _ = $name;
        $crate::Histogram::noop()
    }};
}

/// Opens an RAII [`Span`] timing the enclosing scope into the named
/// histogram (recorded in nanoseconds on drop). With the `obs` feature off
/// this is a zero-sized value and no clock is read.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($crate::histogram!($name))
    };
}

/// Number of histogram buckets: bucket `b` counts values whose bit length
/// is `b` (i.e. `v == 0` → bucket 0, `v ∈ [2^(b-1), 2^b)` → bucket `b`).
pub const BUCKETS: usize = 65;

/// Maps a value to its log₂ bucket index (its bit length).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A point-in-time, serializable copy of every registered metric.
///
/// Metrics are sorted by name, so two snapshots of identical state compare
/// equal and serialize identically.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Snapshot {
    /// Every registered counter, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered histogram, sorted by name.
    pub histograms: Vec<HistogramSnapshot>,
}

/// One counter's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Registered metric name (dotted, e.g. `"mhd.hook_hit"`).
    pub name: String,
    /// Total count at snapshot time.
    pub value: u64,
}

/// One histogram's state inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Registered metric name (dotted, e.g. `"pipeline.consumer_ns"`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// Smallest recorded value (0 when `count == 0`).
    pub min: u64,
    /// Largest recorded value (0 when `count == 0`).
    pub max: u64,
    /// Non-empty log₂ buckets as `(bit_length, count)` pairs — see
    /// [`bucket_index`].
    pub buckets: Vec<(u32, u64)>,
}

impl Snapshot {
    /// Whether the snapshot contains no metrics at all (always true with
    /// the `obs` feature disabled).
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Looks up a counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

impl HistogramSnapshot {
    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trip() {
        let snap = Snapshot {
            counters: vec![CounterSnapshot { name: "a.events".into(), value: u64::MAX }],
            histograms: vec![HistogramSnapshot {
                name: "a.bytes".into(),
                count: 3,
                sum: 4097,
                min: 0,
                max: 4096,
                buckets: vec![(0, 1), (1, 1), (13, 1)],
            }],
        };
        let json = serde_json::to_string_pretty(&snap).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
        assert!(!back.is_empty());
        assert_eq!(back.counter("a.events"), u64::MAX);
        assert_eq!(back.histogram("a.bytes").unwrap().mean(), 4097.0 / 3.0);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = Snapshot::default();
        assert!(snap.is_empty());
        let back: Snapshot = serde_json::from_str(&serde_json::to_string(&snap).unwrap()).unwrap();
        assert_eq!(back, snap);
    }
}
