//! Trace analysis: stage/stall/utilization statistics derived from a
//! [`TraceRecord`] stream.
//!
//! Chrome traces answer "what does the run look like"; this module answers
//! the quantitative follow-ups — where wall time went per stage, how busy
//! each thread was, how much stage work overlapped, and where the pipeline
//! stalled (no stage open on any thread) — without eyeballing a timeline.
//! The entry point is [`analyze`]; the result ([`TraceAnalysis`]) is
//! serializable for exhibits and renders as an aligned text report for
//! terminals (`TraceAnalysis::render`).
//!
//! Truncated traces are first-class inputs. The recording rings are
//! bounded, so a busy run drops its oldest events: a `StageEnd` can
//! survive while its `StageBegin` fell off the ring, and a stage guard
//! alive when `trace_stop()` disarmed tracing never records its end.
//! [`balance_stages`] resolves both without panicking — an orphan end is
//! clamped to the observation window's start, an unclosed begin to its
//! end, and each is tallied in [`BalancedStages`] so reports can state how
//! much of the trace was reconstructed.

use serde::Serialize;

use crate::{TraceEvent, TraceRecord};

/// One closed (possibly synthesized) stage interval on one thread.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageInterval {
    /// Stage name.
    pub stage: String,
    /// Recording thread id.
    pub tid: u32,
    /// Interval start, nanoseconds on the trace clock.
    pub start_ns: u64,
    /// Interval end, nanoseconds on the trace clock.
    pub end_ns: u64,
    /// True when the `StageBegin` was lost (ring drop) and the start was
    /// clamped to the observation window's first timestamp.
    pub synthetic_begin: bool,
    /// True when the `StageEnd` was lost (guard outlived `trace_stop`, or
    /// mis-nested teardown) and the end was clamped forward.
    pub synthetic_end: bool,
}

impl StageInterval {
    /// Interval length in nanoseconds.
    pub fn len_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Output of [`balance_stages`]: every stage occurrence as a closed
/// interval, plus tallies of how many endpoints had to be synthesized.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct BalancedStages {
    /// Closed intervals, sorted by `(start_ns, tid)`.
    pub intervals: Vec<StageInterval>,
    /// `StageEnd` events whose begin was lost (oldest-first ring drops).
    pub orphan_ends: u64,
    /// `StageBegin` events whose end was lost (guard dropped after
    /// `trace_stop`, or closed out of nesting order).
    pub unclosed_begins: u64,
}

/// Pairs `StageBegin`/`StageEnd` events into closed intervals, tolerating
/// truncation.
///
/// Per thread, begins push onto a stack and an end closes the nearest
/// open frame with the same name (frames stacked above it are closed at
/// the same timestamp and counted as unclosed — RAII guards cannot
/// mis-nest, so this only triggers on partial traces). An end with no
/// matching open frame means the begin fell off the recording ring: the
/// interval is kept, its start clamped to the window's first timestamp.
/// Frames still open after the last record are closed at the window's
/// last timestamp. The observation window spans every record in the
/// input, point events included.
pub fn balance_stages(records: &[TraceRecord]) -> BalancedStages {
    let mut out = BalancedStages::default();
    if records.is_empty() {
        return out;
    }
    let mut order: Vec<&TraceRecord> = records.iter().collect();
    order.sort_by_key(|r| (r.ts_ns, r.tid));
    let window_min = order.first().expect("non-empty").ts_ns;
    let window_max = order.last().expect("non-empty").ts_ns;

    // Per-tid stacks of open frames: (stage name, begin timestamp).
    let mut open: Vec<(u32, Vec<(String, u64)>)> = Vec::new();
    let stack_of = |open: &mut Vec<(u32, Vec<(String, u64)>)>, tid: u32| -> usize {
        match open.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                open.push((tid, Vec::new()));
                open.len() - 1
            }
        }
    };

    for record in &order {
        match &record.event {
            TraceEvent::StageBegin { stage } => {
                let i = stack_of(&mut open, record.tid);
                open[i].1.push((stage.clone(), record.ts_ns));
            }
            TraceEvent::StageEnd { stage } => {
                let i = stack_of(&mut open, record.tid);
                let stack = &mut open[i].1;
                match stack.iter().rposition(|(name, _)| name == stage) {
                    Some(pos) => {
                        // Frames above the match lost their own ends;
                        // close them here (inner-first) and tally.
                        while stack.len() > pos + 1 {
                            let (name, begin) = stack.pop().expect("len checked");
                            out.unclosed_begins += 1;
                            out.intervals.push(StageInterval {
                                stage: name,
                                tid: record.tid,
                                start_ns: begin,
                                end_ns: record.ts_ns,
                                synthetic_begin: false,
                                synthetic_end: true,
                            });
                        }
                        let (name, begin) = stack.pop().expect("matched frame");
                        out.intervals.push(StageInterval {
                            stage: name,
                            tid: record.tid,
                            start_ns: begin,
                            end_ns: record.ts_ns,
                            synthetic_begin: false,
                            synthetic_end: false,
                        });
                    }
                    None => {
                        // The begin fell off the ring: the stage was open
                        // since at least the window start.
                        out.orphan_ends += 1;
                        out.intervals.push(StageInterval {
                            stage: stage.clone(),
                            tid: record.tid,
                            start_ns: window_min,
                            end_ns: record.ts_ns,
                            synthetic_begin: true,
                            synthetic_end: false,
                        });
                    }
                }
            }
            _ => {}
        }
    }
    for (tid, stack) in open {
        // Close leftovers inner-first so same-timestamp ends nest.
        for (name, begin) in stack.into_iter().rev() {
            out.unclosed_begins += 1;
            out.intervals.push(StageInterval {
                stage: name,
                tid,
                start_ns: begin,
                end_ns: window_max,
                synthetic_begin: false,
                synthetic_end: true,
            });
        }
    }
    out.intervals.sort_by_key(|a| (a.start_ns, a.tid));
    out
}

/// Tuning for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// Number of time buckets in the event-rate timelines.
    pub rate_buckets: usize,
    /// Cap on the number of stall intervals listed verbatim in the
    /// analysis (totals always cover every gap).
    pub max_stall_intervals: usize,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        AnalyzeOptions { rate_buckets: 50, max_stall_intervals: 32 }
    }
}

/// Aggregate statistics for one stage name.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StageStats {
    /// Stage name.
    pub stage: String,
    /// Closed intervals observed.
    pub count: u64,
    /// Summed interval length, nanoseconds.
    pub total_ns: u64,
    /// Shortest interval.
    pub min_ns: u64,
    /// Longest interval.
    pub max_ns: u64,
    /// Intervals with a synthesized endpoint (truncation repairs).
    pub synthetic: u64,
}

/// Busy-time summary for one recording thread.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ThreadUtilization {
    /// Recording thread id.
    pub tid: u32,
    /// Events recorded by this thread (stages and instants).
    pub events: u64,
    /// Stage intervals closed on this thread.
    pub stages: u64,
    /// Length of the union of this thread's stage intervals, nanoseconds.
    pub busy_ns: u64,
    /// `busy_ns` over the observation window (0.0 when the window is
    /// empty).
    pub utilization: f64,
}

/// Pipeline stall statistics: sub-windows with no stage open on any
/// thread.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StallStats {
    /// Number of stall gaps.
    pub count: u64,
    /// Summed gap length, nanoseconds.
    pub total_ns: u64,
    /// Longest single gap.
    pub longest_ns: u64,
    /// The gaps themselves as `(start_ns, end_ns)`, longest first,
    /// truncated to `AnalyzeOptions::max_stall_intervals`.
    pub intervals: Vec<(u64, u64)>,
}

/// Events-per-bucket timeline for one point-event kind.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EventRate {
    /// Event kind (`TraceEvent::kind`).
    pub kind: String,
    /// Total occurrences in the trace.
    pub total: u64,
    /// Occurrences per time bucket (bucket width is
    /// `TraceAnalysis::bucket_ns`).
    pub per_bucket: Vec<u64>,
}

/// The full derived view of one trace. Produced by [`analyze`].
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct TraceAnalysis {
    /// Records analyzed.
    pub events: u64,
    /// Observation window start (first record timestamp).
    pub window_start_ns: u64,
    /// Observation window length (first to last record).
    pub wall_ns: u64,
    /// Distinct recording threads seen.
    pub threads: u64,
    /// Per-stage aggregates, largest `total_ns` first.
    pub stages: Vec<StageStats>,
    /// Per-thread busy time, by tid.
    pub thread_utilization: Vec<ThreadUtilization>,
    /// Time with at least two stages open concurrently (any threads).
    pub overlap_ns: u64,
    /// Time at each concurrency level as `(open stages, ns)`, level
    /// ascending; level 0 equals the stall total.
    pub concurrency: Vec<(u64, u64)>,
    /// Gaps with no stage open anywhere.
    pub stalls: StallStats,
    /// `StageEnd`s whose begin was lost to a ring drop.
    pub orphan_ends: u64,
    /// `StageBegin`s whose end was never recorded.
    pub unclosed_begins: u64,
    /// Width of one event-rate bucket, nanoseconds.
    pub bucket_ns: u64,
    /// Per-kind event timelines, busiest kind first.
    pub rates: Vec<EventRate>,
}

/// Merges intervals (already sorted by start) into their disjoint union;
/// returns the union segments.
fn union_segments(sorted: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &(start, end) in sorted {
        match out.last_mut() {
            Some((_, last_end)) if start <= *last_end => *last_end = (*last_end).max(end),
            _ => out.push((start, end)),
        }
    }
    out
}

/// Derives [`TraceAnalysis`] from a record stream. The input need not be
/// sorted and may be truncated (see [`balance_stages`]); an empty input
/// yields an all-zero analysis.
pub fn analyze(records: &[TraceRecord], opts: &AnalyzeOptions) -> TraceAnalysis {
    let mut analysis = TraceAnalysis { events: records.len() as u64, ..Default::default() };
    if records.is_empty() {
        return analysis;
    }
    let window_min = records.iter().map(|r| r.ts_ns).min().expect("non-empty");
    let window_max = records.iter().map(|r| r.ts_ns).max().expect("non-empty");
    analysis.window_start_ns = window_min;
    analysis.wall_ns = window_max - window_min;

    let balanced = balance_stages(records);
    analysis.orphan_ends = balanced.orphan_ends;
    analysis.unclosed_begins = balanced.unclosed_begins;

    // Per-stage aggregates.
    for interval in &balanced.intervals {
        let len = interval.len_ns();
        let synthetic = u64::from(interval.synthetic_begin || interval.synthetic_end);
        match analysis.stages.iter_mut().find(|s| s.stage == interval.stage) {
            Some(s) => {
                s.count += 1;
                s.total_ns += len;
                s.min_ns = s.min_ns.min(len);
                s.max_ns = s.max_ns.max(len);
                s.synthetic += synthetic;
            }
            None => analysis.stages.push(StageStats {
                stage: interval.stage.clone(),
                count: 1,
                total_ns: len,
                min_ns: len,
                max_ns: len,
                synthetic,
            }),
        }
    }
    analysis.stages.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.stage.cmp(&b.stage)));

    // Per-thread utilization: union of the thread's own intervals.
    let mut tids: Vec<u32> = records.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    analysis.threads = tids.len() as u64;
    let wall = analysis.wall_ns;
    for tid in tids {
        let mut spans: Vec<(u64, u64)> = balanced
            .intervals
            .iter()
            .filter(|i| i.tid == tid)
            .map(|i| (i.start_ns, i.end_ns))
            .collect();
        spans.sort_unstable();
        let stages = spans.len() as u64;
        let busy_ns: u64 = union_segments(&spans).iter().map(|(s, e)| e - s).sum();
        analysis.thread_utilization.push(ThreadUtilization {
            tid,
            events: records.iter().filter(|r| r.tid == tid).count() as u64,
            stages,
            busy_ns,
            utilization: if wall == 0 { 0.0 } else { busy_ns as f64 / wall as f64 },
        });
    }

    // Concurrency sweep: +1 at every interval start, -1 at every end;
    // accumulate time per open-stage depth between change points.
    let mut edges: Vec<(u64, i64)> = Vec::with_capacity(balanced.intervals.len() * 2);
    for interval in &balanced.intervals {
        edges.push((interval.start_ns, 1));
        edges.push((interval.end_ns, -1));
    }
    edges.sort_unstable();
    let mut depth_time: Vec<u64> = Vec::new();
    let mut at = |depth: i64, ns: u64| {
        let depth = depth.max(0) as usize;
        if depth_time.len() <= depth {
            depth_time.resize(depth + 1, 0);
        }
        depth_time[depth] += ns;
    };
    let mut depth = 0i64;
    let mut cursor = window_min;
    let mut stall_gaps: Vec<(u64, u64)> = Vec::new();
    for (ts, delta) in edges {
        if ts > cursor {
            at(depth, ts - cursor);
            if depth == 0 {
                stall_gaps.push((cursor, ts));
            }
            cursor = ts;
        }
        depth += delta;
    }
    if window_max > cursor {
        at(depth, window_max - cursor);
        if depth == 0 {
            stall_gaps.push((cursor, window_max));
        }
    }
    if balanced.intervals.is_empty() {
        // No stage data at all: the whole window counted as depth 0 above,
        // but calling it one giant stall would be noise, not signal.
        stall_gaps.clear();
        depth_time.clear();
    }
    analysis.concurrency = depth_time
        .iter()
        .enumerate()
        .map(|(d, &ns)| (d as u64, ns))
        .filter(|&(_, ns)| ns > 0)
        .collect();
    analysis.overlap_ns =
        analysis.concurrency.iter().filter(|&&(d, _)| d >= 2).map(|&(_, ns)| ns).sum();

    analysis.stalls.count = stall_gaps.len() as u64;
    analysis.stalls.total_ns = stall_gaps.iter().map(|(s, e)| e - s).sum();
    analysis.stalls.longest_ns = stall_gaps.iter().map(|(s, e)| e - s).max().unwrap_or(0);
    stall_gaps.sort_by_key(|(s, e)| (u64::MAX - (e - s), *s));
    stall_gaps.truncate(opts.max_stall_intervals);
    analysis.stalls.intervals = stall_gaps;

    // Event-rate timelines over the point events.
    let buckets = opts.rate_buckets.max(1);
    analysis.bucket_ns = (analysis.wall_ns / buckets as u64).max(1);
    for record in records {
        let kind = match record.event {
            TraceEvent::StageBegin { .. } | TraceEvent::StageEnd { .. } => continue,
            ref e => e.kind(),
        };
        let bucket = (((record.ts_ns - window_min) / analysis.bucket_ns) as usize).min(buckets - 1);
        let rate = match analysis.rates.iter_mut().find(|r| r.kind == kind) {
            Some(r) => r,
            None => {
                analysis.rates.push(EventRate {
                    kind: kind.to_string(),
                    total: 0,
                    per_bucket: vec![0; buckets],
                });
                analysis.rates.last_mut().expect("just pushed")
            }
        };
        rate.total += 1;
        rate.per_bucket[bucket] += 1;
    }
    analysis.rates.sort_by(|a, b| b.total.cmp(&a.total).then(a.kind.cmp(&b.kind)));
    analysis
}

/// Formats nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.2}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2}us", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}

impl TraceAnalysis {
    /// Renders the analysis as an aligned, human-readable text report.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace analysis: {} events on {} thread(s), wall {}",
            self.events,
            self.threads,
            fmt_ns(self.wall_ns)
        );
        if self.orphan_ends + self.unclosed_begins > 0 {
            let _ = writeln!(
                out,
                "truncation: {} orphan StageEnd (begin lost to ring drop), {} unclosed StageBegin (end never recorded)",
                self.orphan_ends, self.unclosed_begins
            );
        }
        if !self.stages.is_empty() {
            let name_w =
                self.stages.iter().map(|s| s.stage.len()).max().unwrap_or(0).max("stage".len());
            let _ = writeln!(
                out,
                "\n{:<name_w$}  {:>6} {:>10} {:>10} {:>10} {:>10} {:>6}",
                "stage", "count", "total", "mean", "min", "max", "%wall"
            );
            for s in &self.stages {
                let _ = writeln!(
                    out,
                    "{:<name_w$}  {:>6} {:>10} {:>10} {:>10} {:>10} {:>5.1}%{}",
                    s.stage,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.total_ns / s.count.max(1)),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                    if self.wall_ns == 0 {
                        0.0
                    } else {
                        s.total_ns as f64 / self.wall_ns as f64 * 100.0
                    },
                    if s.synthetic > 0 { " (truncated)" } else { "" },
                );
            }
        }
        if !self.thread_utilization.is_empty() {
            let _ = writeln!(out, "\nthreads:");
            for t in &self.thread_utilization {
                let _ = writeln!(
                    out,
                    "  tid {:<3} {:>5.1}% busy ({} over {} stage intervals, {} events)",
                    t.tid,
                    t.utilization * 100.0,
                    fmt_ns(t.busy_ns),
                    t.stages,
                    t.events
                );
            }
        }
        if !self.concurrency.is_empty() {
            let parts: Vec<String> = self
                .concurrency
                .iter()
                .map(|&(depth, ns)| {
                    format!(
                        "{depth} open {} ({:.1}%)",
                        fmt_ns(ns),
                        if self.wall_ns == 0 {
                            0.0
                        } else {
                            ns as f64 / self.wall_ns as f64 * 100.0
                        }
                    )
                })
                .collect();
            let _ = writeln!(out, "\nconcurrency: {}", parts.join(" | "));
            let _ = writeln!(out, "stage overlap (>=2 open): {}", fmt_ns(self.overlap_ns));
        }
        if self.stalls.count > 0 {
            let _ = writeln!(
                out,
                "stalls (no stage open): {} gap(s), total {}, longest {}",
                self.stalls.count,
                fmt_ns(self.stalls.total_ns),
                fmt_ns(self.stalls.longest_ns)
            );
            for &(start, end) in &self.stalls.intervals {
                let _ = writeln!(
                    out,
                    "  [{} .. {}] {}",
                    fmt_ns(start.saturating_sub(self.window_start_ns)),
                    fmt_ns(end.saturating_sub(self.window_start_ns)),
                    fmt_ns(end - start)
                );
            }
        } else if !self.stages.is_empty() {
            let _ = writeln!(out, "stalls (no stage open): none");
        }
        if !self.rates.is_empty() {
            let _ = writeln!(out, "\nevent rates (bucket {}):", fmt_ns(self.bucket_ns));
            let name_w = self.rates.iter().map(|r| r.kind.len()).max().unwrap_or(0);
            for r in &self.rates {
                let peak = r.per_bucket.iter().copied().max().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "  {:<name_w$}  total {:>8}, peak {:>6}/bucket  {}",
                    r.kind,
                    r.total,
                    peak,
                    sparkline(&r.per_bucket)
                );
            }
        }
        out
    }
}

/// Renders per-bucket counts as a unicode sparkline (empty buckets as
/// spaces), compressing to at most 50 columns.
fn sparkline(buckets: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let cols = buckets.len().min(50);
    if cols == 0 {
        return String::new();
    }
    // Re-bucket to the column count by summing.
    let mut merged = vec![0u64; cols];
    for (i, &n) in buckets.iter().enumerate() {
        merged[i * cols / buckets.len()] += n;
    }
    let max = merged.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return " ".repeat(cols);
    }
    merged
        .iter()
        .map(
            |&n| {
                if n == 0 {
                    ' '
                } else {
                    BARS[(n * (BARS.len() as u64 - 1)).div_ceil(max) as usize]
                }
            },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(ts_ns: u64, tid: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { ts_ns, tid, event }
    }

    fn begin(ts: u64, tid: u32, name: &str) -> TraceRecord {
        rec(ts, tid, TraceEvent::StageBegin { stage: name.to_string() })
    }

    fn end(ts: u64, tid: u32, name: &str) -> TraceRecord {
        rec(ts, tid, TraceEvent::StageEnd { stage: name.to_string() })
    }

    #[test]
    fn empty_trace_analyzes_to_zeros() {
        let a = analyze(&[], &AnalyzeOptions::default());
        assert_eq!(a.events, 0);
        assert_eq!(a.wall_ns, 0);
        assert!(a.stages.is_empty() && a.rates.is_empty());
        assert_eq!(a.stalls, StallStats::default());
        assert!(!a.render().is_empty(), "renders without panicking");
    }

    #[test]
    fn balances_nested_and_sequential_stages() {
        let records = vec![
            begin(0, 0, "outer"),
            begin(10, 0, "inner"),
            end(40, 0, "inner"),
            end(100, 0, "outer"),
            begin(120, 0, "next"),
            end(150, 0, "next"),
        ];
        let b = balance_stages(&records);
        assert_eq!(b.orphan_ends, 0);
        assert_eq!(b.unclosed_begins, 0);
        assert_eq!(b.intervals.len(), 3);
        let by_name = |n: &str| b.intervals.iter().find(|i| i.stage == n).unwrap();
        assert_eq!((by_name("outer").start_ns, by_name("outer").end_ns), (0, 100));
        assert_eq!((by_name("inner").start_ns, by_name("inner").end_ns), (10, 40));
        assert_eq!((by_name("next").start_ns, by_name("next").end_ns), (120, 150));
    }

    #[test]
    fn orphan_end_clamps_to_window_start() {
        // The begin fell off the ring; the first surviving record is an
        // instant at t=5.
        let records = vec![rec(5, 0, TraceEvent::HookHit), end(50, 0, "lost-begin")];
        let b = balance_stages(&records);
        assert_eq!(b.orphan_ends, 1);
        assert_eq!(b.intervals.len(), 1);
        assert_eq!(b.intervals[0].start_ns, 5, "clamped to window start");
        assert_eq!(b.intervals[0].end_ns, 50);
        assert!(b.intervals[0].synthetic_begin);
        let a = analyze(&records, &AnalyzeOptions::default());
        assert_eq!(a.orphan_ends, 1);
        assert_eq!(a.stages[0].synthetic, 1);
    }

    #[test]
    fn unclosed_begin_clamps_to_window_end() {
        let records =
            vec![begin(10, 0, "never-ends"), rec(80, 0, TraceEvent::ChunkEmitted { bytes: 1 })];
        let b = balance_stages(&records);
        assert_eq!(b.unclosed_begins, 1);
        assert_eq!(b.intervals[0].end_ns, 80, "clamped to window end");
        assert!(b.intervals[0].synthetic_end);
    }

    #[test]
    fn stalls_and_overlap_from_two_threads() {
        // tid 0: [0,100]; tid 1: [50,150]; gap [150,200]; closing instant
        // at 200 extends the window.
        let records = vec![
            begin(0, 0, "a"),
            begin(50, 1, "b"),
            end(100, 0, "a"),
            end(150, 1, "b"),
            rec(200, 0, TraceEvent::HookHit),
        ];
        let a = analyze(&records, &AnalyzeOptions::default());
        assert_eq!(a.wall_ns, 200);
        assert_eq!(a.threads, 2);
        assert_eq!(a.overlap_ns, 50, "[50,100] has both stages open");
        assert_eq!(a.stalls.count, 1);
        assert_eq!(a.stalls.total_ns, 50);
        assert_eq!(a.stalls.intervals, vec![(150, 200)]);
        let t0 = &a.thread_utilization[0];
        assert_eq!((t0.tid, t0.busy_ns), (0, 100));
        assert!((t0.utilization - 0.5).abs() < 1e-9);
        // Depth timeline: 1 open on [0,50] and [100,150], 2 on [50,100],
        // 0 on [150,200].
        assert_eq!(a.concurrency, vec![(0, 50), (1, 100), (2, 50)]);
    }

    #[test]
    fn rates_bucket_point_events() {
        let mut records = vec![begin(0, 0, "s"), end(1000, 0, "s")];
        for ts in [0u64, 10, 20, 990] {
            records.push(rec(ts, 0, TraceEvent::ChunkEmitted { bytes: 8 }));
        }
        records.push(rec(500, 0, TraceEvent::HookHit));
        let a = analyze(&records, &AnalyzeOptions { rate_buckets: 10, ..Default::default() });
        assert_eq!(a.bucket_ns, 100);
        let chunks = a.rates.iter().find(|r| r.kind == "ChunkEmitted").unwrap();
        assert_eq!(chunks.total, 4);
        assert_eq!(chunks.per_bucket[0], 3);
        assert_eq!(chunks.per_bucket[9], 1);
        let hooks = a.rates.iter().find(|r| r.kind == "HookHit").unwrap();
        assert_eq!(hooks.per_bucket[5], 1);
        // Busiest kind first.
        assert_eq!(a.rates[0].kind, "ChunkEmitted");
    }

    #[test]
    fn union_segments_merges_overlaps() {
        assert_eq!(union_segments(&[(0, 10), (5, 20), (30, 40)]), vec![(0, 20), (30, 40)]);
        assert_eq!(union_segments(&[(0, 10), (10, 20)]), vec![(0, 20)]);
        assert!(union_segments(&[]).is_empty());
    }

    #[test]
    fn render_covers_every_section() {
        let records = vec![
            begin(0, 0, "work"),
            rec(10, 0, TraceEvent::ChunkEmitted { bytes: 4096 }),
            end(100, 0, "work"),
            end(150, 1, "orphan"),
            rec(400, 0, TraceEvent::HookHit),
        ];
        let text = analyze(&records, &AnalyzeOptions::default()).render();
        for needle in ["trace analysis", "truncation", "stage", "threads:", "stalls", "event rates"]
        {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
