//! SWAR wide-lane gear cut-point scanning on stable rust.
//!
//! "Vectorized Sequence-Based Chunking for Data Deduplication" (PAPERS.md)
//! observes that the per-byte *branch* of a rolling-hash chunker — not the
//! hash arithmetic — dominates cut-point detection, and that evaluating the
//! cut condition across many positions at once before branching recovers
//! multiples of throughput. This module applies that idea with SWAR
//! (SIMD-within-a-register, no `unsafe`, no target features): the gear
//! recurrence
//!
//! ```text
//! h' = (h << 1) ^ GEAR[byte]
//! ```
//!
//! is GF(2)-linear and inherently windowed (a byte's influence is shifted
//! out of the 64-bit state after 64 steps), so the eight successive hash
//! states of one u64-wide step are cheap to produce. [`scan_swar`] computes
//! them, reduces the eight masked-zero cut tests to a single branch per
//! block, and locates the first cut exactly where the byte-at-a-time loop
//! would have stopped. [`scan_scalar`] is the reference implementation;
//! the two are byte-identical by construction and pinned so by the
//! chunker matrix property suite.
//!
//! Whether the wide form actually wins is a *codegen* question, not an
//! algorithmic one: the scalar loop is latency-bound on a two-operation
//! dependency chain with a well-predicted branch, while the SWAR form
//! trades more total operations for independence that only pays off when
//! the compiler maps the lane arrays onto vector registers (it does under
//! `-C target-cpu=native` on AVX-capable hosts; at the portable x86-64
//! baseline it stays scalar and loses). [`best_scan`] settles the question
//! empirically: the first call races both kernels over a small
//! deterministic buffer and caches the winner for the process. Both
//! produce identical cut points, so the selection affects throughput only.

use std::sync::OnceLock;

/// Number of positions evaluated per SWAR step (one cut-condition bit per
/// lane of the packed `u64` lane word).
pub const LANES: usize = 8;

/// Seed for the deterministic gear table derivation.
const GEAR_SEED: u64 = 0x6d68_645f_6368_756e; // "mhd_chun"

/// `splitmix64` output mixing, the standard 64-bit finalizer.
fn splitmix64(index: u64) -> u64 {
    let mut z = index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(GEAR_SEED);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The 256-entry gear table: one fixed 64-bit pattern per byte value,
/// derived deterministically from `splitmix64` so every build and every
/// platform chunk identically.
pub fn gear_table() -> &'static [u64; 256] {
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u64; 256];
        for (i, slot) in t.iter_mut().enumerate() {
            *slot = splitmix64(i as u64 + 1);
        }
        t
    })
}

/// Rolls the gear hash over one byte.
#[inline(always)]
pub fn gear_roll(gear: &[u64; 256], h: u64, byte: u8) -> u64 {
    (h << 1) ^ gear[byte as usize]
}

/// Reference byte-at-a-time scan.
///
/// Starting from hash state `h` (valid at position `from`), consumes bytes
/// `data[from..to]`; after consuming the byte at index `j`, position `j + 1`
/// is a cut when `h & mask == 0`. Returns the final hash state and the
/// first cut position, if any.
#[inline]
pub fn scan_scalar(
    gear: &[u64; 256],
    data: &[u8],
    mut h: u64,
    from: usize,
    to: usize,
    mask: u64,
) -> (u64, Option<usize>) {
    for (i, &b) in data[from..to].iter().enumerate() {
        h = gear_roll(gear, h, b);
        if h & mask == 0 {
            return (h, Some(from + i + 1));
        }
    }
    (h, None)
}

/// SWAR scan: identical contract and results as [`scan_scalar`], but each
/// 8-byte block is evaluated as one wide step.
///
/// The byte-at-a-time loop is *latency*-bound: every step is
/// `(h << 1) ^ GEAR[b]`, a two-operation dependency chain, so no amount
/// of instruction-level parallelism helps it. Because the recurrence is
/// GF(2)-linear, eight steps re-associate: with `p[k] = ⊕_{t≤k}
/// GEAR[b_t] << (k−t)`, the state after consuming byte `k` is simply
/// `(h << (k+1)) ^ p[k]`. The eight prefix values are computed by a
/// Hillis–Steele shift-prefix in three stride-doubling rounds whose
/// operations are independent within each round (lanes of a fixed-size
/// `u64` array — the compiler's autovectorizer maps them onto vector
/// registers), so the critical path per block is three shift+xor levels
/// instead of eight. The eight masked-zero cut tests pack into one lane
/// word, branch once per block, and `trailing_zeros` recovers exactly the
/// position where the byte-at-a-time loop would have stopped.
#[inline]
pub fn scan_swar(
    gear: &[u64; 256],
    data: &[u8],
    mut h: u64,
    from: usize,
    to: usize,
    mask: u64,
) -> (u64, Option<usize>) {
    let window = &data[from..to];
    let mut blocks = window.chunks_exact(LANES);
    for (bi, block) in blocks.by_ref().enumerate() {
        // Independent gear loads — no serial dependency between them.
        // Folding `h << 1` into lane 0 makes the prefix carry the incoming
        // state to every lane with the right weight (lane 0's contribution
        // to lane k is shifted left k more times), so after the rounds
        // p[k] is the *complete* hash state after consuming byte k — no
        // per-lane variable shifts anywhere, every round is a uniform
        // shift+xor over contiguous lanes.
        let mut a = [0u64; LANES];
        for k in 0..LANES {
            a[k] = gear[block[k] as usize];
        }
        a[0] ^= h << 1;
        // Shift-prefix, each round reading only the previous round's
        // array so every update within a round is independent. After the
        // three rounds, p[k] = (h << (k+1)) ⊕ (⊕_{t≤k} GEAR[b_t] << (k−t)).
        let mut b = [0u64; LANES];
        b[0] = a[0];
        for k in 1..LANES {
            b[k] = a[k] ^ (a[k - 1] << 1);
        }
        let mut c = [0u64; LANES];
        c[0] = b[0];
        c[1] = b[1];
        for k in 2..LANES {
            c[k] = b[k] ^ (b[k - 2] << 2);
        }
        let mut p = [0u64; LANES];
        p[0] = c[0];
        p[1] = c[1];
        p[2] = c[2];
        p[3] = c[3];
        for k in 4..LANES {
            p[k] = c[k] ^ (c[k - 4] << 4);
        }
        // Eight masked states, reduced to a single "any lane zero?"
        // branch through a min tree (a masked state cuts iff it is zero,
        // so the minimum is zero iff any lane cuts).
        let m = [
            p[0] & mask,
            p[1] & mask,
            p[2] & mask,
            p[3] & mask,
            p[4] & mask,
            p[5] & mask,
            p[6] & mask,
            p[7] & mask,
        ];
        let min = m[0].min(m[1]).min(m[2]).min(m[3]).min(m[4]).min(m[5]).min(m[6]).min(m[7]);
        if min == 0 {
            let k = m.iter().position(|&v| v == 0).unwrap_or(0);
            return (p[k], Some(from + bi * LANES + k + 1));
        }
        h = p[LANES - 1];
    }
    // Tail shorter than one block: plain scalar steps.
    let done = window.len() - blocks.remainder().len();
    scan_scalar(gear, data, h, from + done, to, mask)
}

/// Signature shared by [`scan_scalar`] and [`scan_swar`]: scan
/// `data[from..to]` starting from hash state `h`, returning the final
/// state and the first position whose state satisfies `state & mask == 0`.
pub type ScanFn = fn(&[u64; 256], &[u8], u64, usize, usize, u64) -> (u64, Option<usize>);

/// Calibration input size: large enough to amortize loop startup and make
/// timer quantization irrelevant, small enough that the one-time race
/// costs about a millisecond.
const CALIBRATE_BYTES: usize = 1 << 18;

/// Named winner of the one-time kernel race, cached per process.
static BEST: OnceLock<(&'static str, ScanFn)> = OnceLock::new();

/// Races [`scan_swar`] against [`scan_scalar`] over a deterministic
/// pseudo-random buffer and returns the faster, best-of-three each.
fn calibrate() -> (&'static str, ScanFn) {
    let gear = gear_table();
    let mut data = vec![0u8; CALIBRATE_BYTES];
    for (i, chunk) in data.chunks_mut(8).enumerate() {
        for (b, s) in chunk.iter_mut().zip(splitmix64(i as u64).to_le_bytes()) {
            *b = s;
        }
    }
    // 13 bits ≈ the strict-phase mask at the paper's default 4 KiB ECS,
    // so the race sees a realistic cut frequency (and thus restart rate).
    let mask = !0u64 << (64 - 13);
    let time = |scan: ScanFn| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let t0 = std::time::Instant::now();
            let mut from = 0usize;
            let mut acc = 0u64;
            while from < data.len() {
                let (h, cut) = scan(gear, &data, 0, from, data.len(), mask);
                acc ^= h;
                match cut {
                    Some(c) => from = c,
                    None => break,
                }
            }
            std::hint::black_box(acc);
            best = best.min(t0.elapsed());
        }
        best
    };
    if time(scan_swar) <= time(scan_scalar) {
        ("swar", scan_swar as ScanFn)
    } else {
        ("scalar", scan_scalar as ScanFn)
    }
}

/// The cut-point scanner FastCDC should use on this machine, decided once
/// per process by `calibrate`'s kernel race. Byte-identical results
/// either way — chunk boundaries never depend on which kernel won.
pub fn best_scan() -> ScanFn {
    BEST.get_or_init(calibrate).1
}

/// Which kernel [`best_scan`] selected (`"swar"` or `"scalar"`); for
/// benchmark and log reporting.
pub fn best_scan_name() -> &'static str {
    BEST.get_or_init(calibrate).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn gear_table_is_deterministic_and_nondegenerate() {
        let t = gear_table();
        assert_eq!(t, gear_table());
        // No zero entries (a zero gear value would make runs of that byte
        // hash-transparent) and no duplicates.
        assert!(t.iter().all(|&v| v != 0));
        let mut sorted = *t;
        sorted.sort_unstable();
        assert!(sorted.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn swar_matches_scalar_on_random_windows() {
        let gear = gear_table();
        let mut rng = StdRng::seed_from_u64(0xA11CE);
        let mut data = vec![0u8; 100_000];
        rng.fill_bytes(&mut data);
        // Small masks so cuts are frequent and every block path is hit.
        for mask_bits in [4u32, 8, 12] {
            let mask = !0u64 << (64 - mask_bits);
            for &(from, to) in
                &[(0usize, data.len()), (3, 77), (10, 10), (1, 9), (0, 8), (5, 100_000)]
            {
                let scalar = scan_scalar(gear, &data, 0, from, to, mask);
                let swar = scan_swar(gear, &data, 0, from, to, mask);
                assert_eq!(scalar.1, swar.1, "cut mismatch bits={mask_bits} {from}..{to}");
                // Hash states agree whenever neither side cut early.
                if scalar.1.is_none() {
                    assert_eq!(scalar.0, swar.0);
                }
            }
        }
    }

    #[test]
    #[ignore = "timing harness for kernel iteration, not a correctness test"]
    fn bench_scan() {
        let gear = gear_table();
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = vec![0u8; 64 << 20];
        rng.fill_bytes(&mut data);
        let mask = !0u64 << (64 - 13);
        for (name, scan) in [("scalar", scan_scalar as ScanFn), ("swar", scan_swar as ScanFn)] {
            let mut best = f64::INFINITY;
            for _ in 0..5 {
                let start = std::time::Instant::now();
                let mut from = 0usize;
                let mut cuts = 0u64;
                while from < data.len() {
                    let (_, cut) = scan(gear, &data, 0, from, data.len(), mask);
                    match cut {
                        Some(c) => {
                            from = c;
                            cuts += 1;
                        }
                        None => break,
                    }
                }
                best = best.min(start.elapsed().as_secs_f64());
                eprintln!("{name}: {cuts} cuts");
            }
            eprintln!("{name}: {:.0} MiB/s", data.len() as f64 / (1 << 20) as f64 / best);
        }
    }

    #[test]
    fn calibration_picks_a_kernel_and_is_stable() {
        let name = best_scan_name();
        assert!(name == "swar" || name == "scalar", "unexpected kernel {name:?}");
        // Cached: repeated queries agree, and the selected kernel matches
        // the scalar reference on a random window.
        assert_eq!(name, best_scan_name());
        let gear = gear_table();
        let mut rng = StdRng::seed_from_u64(7);
        let mut data = vec![0u8; 50_000];
        rng.fill_bytes(&mut data);
        let mask = !0u64 << (64 - 10);
        assert_eq!(
            best_scan()(gear, &data, 0, 0, data.len(), mask),
            scan_scalar(gear, &data, 0, 0, data.len(), mask),
        );
    }

    #[test]
    fn first_cut_wins_within_a_block() {
        // Force multiple cuts inside one 8-byte block (mask 0 cuts at every
        // position) and check the earliest one is reported.
        let gear = gear_table();
        let data = [7u8; 32];
        let (_, cut) = scan_swar(gear, &data, 0, 0, 32, 0);
        assert_eq!(cut, Some(1));
        let (_, cut) = scan_swar(gear, &data, 0, 5, 32, 0);
        assert_eq!(cut, Some(6));
    }
}
