//! Shared chunker parameterisation.

use std::fmt;

/// Default sliding-window size (bytes) for Rabin fingerprinting, as in LBFS.
pub const DEFAULT_WINDOW: usize = 48;

/// Parameters for a content-defined chunker.
///
/// `avg` is the paper's *expected chunk size* (`ECS`). The cut-point test
/// fires with probability `1/avg` per position, giving (memoryless)
/// geometric chunk lengths truncated to `[min, max]`. The conventional
/// LBFS-style derivation `min = avg/4`, `max = avg*4` is provided by
/// [`ChunkerParams::with_avg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkerParams {
    /// Minimum chunk size in bytes. Cut points are not tested below this.
    pub min: usize,
    /// Expected chunk size (`ECS`); must be a power of two for mask-based
    /// matching.
    pub avg: usize,
    /// Maximum chunk size; an unconditional cut is made at this length.
    pub max: usize,
    /// Sliding-window size in bytes.
    pub window: usize,
}

impl ChunkerParams {
    /// LBFS-style parameters: `min = avg/4`, `max = avg*4`, default window.
    ///
    /// The window is shrunk to `min` when `avg` is very small so that the
    /// fingerprint is always warmed up before the first testable position.
    pub fn with_avg(avg: usize) -> Result<Self, ParamError> {
        let min = (avg / 4).max(1);
        let params =
            ChunkerParams { min, avg, max: avg.saturating_mul(4), window: DEFAULT_WINDOW.min(min) };
        params.validate()?;
        Ok(params)
    }

    /// Validates the invariants required by the chunkers.
    pub fn validate(&self) -> Result<(), ParamError> {
        if !self.avg.is_power_of_two() {
            return Err(ParamError::AvgNotPowerOfTwo(self.avg));
        }
        if self.min == 0 {
            return Err(ParamError::ZeroMin);
        }
        if !(self.min <= self.avg && self.avg <= self.max) {
            return Err(ParamError::Unordered { min: self.min, avg: self.avg, max: self.max });
        }
        if self.window == 0 || self.window > self.min {
            return Err(ParamError::WindowTooLarge { window: self.window, min: self.min });
        }
        Ok(())
    }

    /// Fingerprint mask: cut-point test is `(fp & mask) == magic`.
    pub fn mask(&self) -> u64 {
        (self.avg as u64) - 1
    }

    /// The matched fingerprint pattern. A fixed non-zero-biased constant is
    /// used so that long runs of identical bytes (fingerprint 0) do not cut
    /// at every position.
    pub fn magic(&self) -> u64 {
        // Golden-ratio constant; any fixed pattern works for uniform
        // fingerprints, this one is nonzero under every power-of-two mask.
        0x9E37_79B9_7F4A_7C15 & self.mask()
    }
}

/// Invalid [`ChunkerParams`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParamError {
    /// `avg` must be a power of two.
    AvgNotPowerOfTwo(usize),
    /// `min` must be positive.
    ZeroMin,
    /// `min <= avg <= max` violated.
    Unordered {
        /// provided minimum
        min: usize,
        /// provided average
        avg: usize,
        /// provided maximum
        max: usize,
    },
    /// The window must fit inside the minimum chunk so the fingerprint is
    /// warm before the first testable cut position.
    WindowTooLarge {
        /// provided window
        window: usize,
        /// provided minimum
        min: usize,
    },
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::AvgNotPowerOfTwo(avg) => {
                write!(f, "avg chunk size {avg} is not a power of two")
            }
            ParamError::ZeroMin => write!(f, "min chunk size must be positive"),
            ParamError::Unordered { min, avg, max } => {
                write!(f, "need min <= avg <= max, got {min}/{avg}/{max}")
            }
            ParamError::WindowTooLarge { window, min } => {
                write!(f, "window {window} must be in 1..=min ({min})")
            }
        }
    }
}

impl std::error::Error for ParamError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_avg_derives_classic_bounds() {
        let p = ChunkerParams::with_avg(4096).unwrap();
        assert_eq!((p.min, p.avg, p.max, p.window), (1024, 4096, 16384, 48));
    }

    #[test]
    fn tiny_avg_shrinks_window() {
        let p = ChunkerParams::with_avg(64).unwrap();
        assert_eq!(p.min, 16);
        assert_eq!(p.window, 16);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn magic_is_under_mask_and_nonzero() {
        for avg in [2usize, 64, 512, 4096, 65536] {
            let p = ChunkerParams::with_avg(avg).unwrap();
            assert_eq!(p.magic() & !p.mask(), 0);
            assert_ne!(p.magic(), 0, "avg {avg}");
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(ChunkerParams::with_avg(3000), Err(ParamError::AvgNotPowerOfTwo(3000))));
    }

    #[test]
    fn rejects_unordered() {
        let p = ChunkerParams { min: 100, avg: 64, max: 4096, window: 8 };
        assert!(matches!(p.validate(), Err(ParamError::Unordered { .. })));
    }

    #[test]
    fn rejects_oversized_window() {
        let p = ChunkerParams { min: 16, avg: 64, max: 256, window: 48 };
        assert!(matches!(p.validate(), Err(ParamError::WindowTooLarge { .. })));
    }
}
