//! The Two-Threshold Two-Divisor chunker (Eshghi & Tang \[3\]).
//!
//! TTTD improves on the hard max-size cut of the basic algorithm: while
//! scanning, positions matching a *backup* (more permissive) divisor are
//! remembered, and if the main divisor never fires before the upper bound,
//! the most recent backup candidate is used instead of an arbitrary cut at
//! `max`. This keeps more cut points content-defined, which matters for
//! data with long low-entropy runs.

use std::sync::Arc;

use crate::params::ChunkerParams;
use crate::rabin::{RabinFingerprint, RabinTables};
use crate::Chunker;

/// TTTD content-defined chunker.
#[derive(Clone)]
pub struct TttdChunker {
    params: ChunkerParams,
    tables: Arc<RabinTables>,
    backup_mask: u64,
    backup_magic: u64,
}

impl TttdChunker {
    /// Creates a TTTD chunker. The backup divisor is half the main divisor
    /// (i.e. fires with twice the probability), the conventional choice.
    pub fn new(params: ChunkerParams) -> Result<Self, crate::ParamError> {
        params.validate()?;
        let backup_mask = params.mask() >> 1;
        Ok(TttdChunker {
            params,
            tables: RabinTables::default_with_window(params.window),
            backup_mask,
            backup_magic: params.magic() & backup_mask,
        })
    }

    /// Convenience constructor from an expected chunk size.
    pub fn with_avg(avg: usize) -> Result<Self, crate::ParamError> {
        Self::new(ChunkerParams::with_avg(avg)?)
    }

    /// The configured parameters.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }

    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        let p = &self.params;
        let remaining = data.len() - start;
        if remaining <= p.min {
            return data.len();
        }
        let limit = remaining.min(p.max);
        let mask = p.mask();
        let magic = p.magic();

        let mut fp = RabinFingerprint::new(self.tables.clone());
        let first_test = start + p.min;
        for &b in &data[first_test - p.window..first_test] {
            fp.roll(b);
        }
        let mut backup: Option<usize> = None;
        let check = |value: u64, pos: usize, backup: &mut Option<usize>| -> bool {
            if value & mask == magic {
                return true;
            }
            if value & self.backup_mask == self.backup_magic {
                *backup = Some(pos);
            }
            false
        };
        if check(fp.value(), first_test, &mut backup) {
            return first_test;
        }
        for (i, &b) in data[first_test..start + limit].iter().enumerate() {
            fp.roll(b);
            if check(fp.value(), first_test + i + 1, &mut backup) {
                return first_test + i + 1;
            }
        }
        // Reached the upper bound without a main-divisor match: prefer the
        // most recent backup candidate. (Only when the bound was actually
        // the max — a short tail is simply the final chunk.)
        if limit == p.max {
            if let Some(pos) = backup {
                return pos;
            }
        }
        start + limit
    }
}

impl Chunker for TttdChunker {
    fn cut_points(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::with_capacity(data.len() / self.params.avg + 1);
        let mut start = 0usize;
        while start < data.len() {
            let end = self.next_cut(data, start);
            debug_assert!(end > start);
            cuts.push(end);
            start = end;
        }
        cuts
    }

    fn expected_chunk_size(&self) -> usize {
        self.params.avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RabinChunker;
    use proptest::prelude::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn tiles_and_respects_bounds() {
        let chunker = TttdChunker::with_avg(1024).unwrap();
        let data = random_data(300_000, 7);
        let p = chunker.params();
        let spans = chunker.spans(&data);
        let mut covered = 0usize;
        for (i, s) in spans.iter().enumerate() {
            assert_eq!(s.offset, covered);
            covered += s.len;
            assert!(s.len <= p.max);
            if i + 1 != spans.len() {
                assert!(s.len >= p.min);
            }
        }
        assert_eq!(covered, data.len());
    }

    #[test]
    fn fewer_max_size_chunks_than_plain_cdc_on_low_entropy_data() {
        // Data with long compressible runs interrupted by random islands:
        // plain CDC cuts runs at hard max; TTTD finds backup cut points in
        // the random islands more often.
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.extend(std::iter::repeat_n(0xAAu8, rng.random_range(500..3000)));
            data.extend((0..rng.random_range(100..400)).map(|_| rng.random::<u8>()));
        }
        let cdc = RabinChunker::with_avg(512).unwrap();
        let tttd = TttdChunker::with_avg(512).unwrap();
        let max = cdc.params().max;
        let cdc_hard = cdc.spans(&data).iter().filter(|s| s.len == max).count();
        let tttd_hard = tttd.spans(&data).iter().filter(|s| s.len == max).count();
        assert!(
            tttd_hard <= cdc_hard,
            "TTTD produced more hard cuts ({tttd_hard}) than CDC ({cdc_hard})"
        );
    }

    #[test]
    fn main_divisor_cuts_match_cdc() {
        // Where the main divisor fires first, TTTD and plain CDC agree.
        let data = random_data(100_000, 17);
        let cdc = RabinChunker::with_avg(512).unwrap();
        let tttd = TttdChunker::with_avg(512).unwrap();
        // On fully random data hard cuts are rare, so most boundaries agree.
        let a: std::collections::HashSet<_> = cdc.cut_points(&data).into_iter().collect();
        let b = tttd.cut_points(&data);
        let common = b.iter().filter(|c| a.contains(c)).count();
        assert!(common * 10 >= b.len() * 9, "{common}/{} agree", b.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_tiles_any_input(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
            let chunker = TttdChunker::with_avg(256).unwrap();
            let spans = chunker.spans(&data);
            prop_assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
            let p = chunker.params();
            for (i, s) in spans.iter().enumerate() {
                prop_assert!(s.len <= p.max);
                if i + 1 != spans.len() {
                    prop_assert!(s.len >= p.min);
                }
            }
        }
    }
}
