//! The Two-Threshold Two-Divisor chunker (Eshghi & Tang \[3\]).
//!
//! TTTD improves on the hard max-size cut of the basic algorithm: while
//! scanning, positions matching a *backup* (more permissive) divisor are
//! remembered, and if the main divisor never fires before the upper bound,
//! the most recent backup candidate is used instead of an arbitrary cut at
//! `max`. This keeps more cut points content-defined, which matters for
//! data with long low-entropy runs.

use std::sync::Arc;

use crate::params::ChunkerParams;
use crate::rabin::{RabinFingerprint, RabinTables};
use crate::Chunker;

/// TTTD content-defined chunker.
#[derive(Clone)]
pub struct TttdChunker {
    params: ChunkerParams,
    tables: Arc<RabinTables>,
    /// `(mask, magic)` of the backup divisor. `None` when `avg <= 2`: the
    /// halved mask would be 0 there, and a `value & 0 == 0` test matches at
    /// *every* position, turning the backup cut into an unconditional cut
    /// near `max` — degenerating TTTD below plain CDC. With no meaningful
    /// backup divisor the chunker falls back to plain hard-max behaviour.
    backup: Option<(u64, u64)>,
}

impl TttdChunker {
    /// Creates a TTTD chunker. The backup divisor is half the main divisor
    /// (i.e. fires with twice the probability), the conventional choice.
    pub fn new(params: ChunkerParams) -> Result<Self, crate::ParamError> {
        params.validate()?;
        let backup_mask = params.mask() >> 1;
        let backup = (backup_mask != 0).then_some((backup_mask, params.magic() & backup_mask));
        Ok(TttdChunker { params, tables: RabinTables::default_with_window(params.window), backup })
    }

    /// Convenience constructor from an expected chunk size.
    pub fn with_avg(avg: usize) -> Result<Self, crate::ParamError> {
        Self::new(ChunkerParams::with_avg(avg)?)
    }

    /// The configured parameters.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }
}

impl Chunker for TttdChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        let p = &self.params;
        let remaining = data.len() - start;
        if remaining <= p.min {
            return data.len();
        }
        let limit = remaining.min(p.max);
        let mask = p.mask();
        let magic = p.magic();

        let mut fp = RabinFingerprint::new(self.tables.clone());
        let first_test = start + p.min;
        for &b in &data[first_test - p.window..first_test] {
            fp.roll(b);
        }
        let mut backup: Option<usize> = None;
        let check = |value: u64, pos: usize, backup: &mut Option<usize>| -> bool {
            if value & mask == magic {
                return true;
            }
            if let Some((bmask, bmagic)) = self.backup {
                if value & bmask == bmagic {
                    *backup = Some(pos);
                }
            }
            false
        };
        if check(fp.value(), first_test, &mut backup) {
            return first_test;
        }
        for (i, &b) in data[first_test..start + limit].iter().enumerate() {
            fp.roll(b);
            if check(fp.value(), first_test + i + 1, &mut backup) {
                return first_test + i + 1;
            }
        }
        // Reached the upper bound without a main-divisor match: prefer the
        // most recent backup candidate. (Only when the bound was actually
        // the max — a short tail is simply the final chunk.)
        if limit == p.max {
            if let Some(pos) = backup {
                return pos;
            }
        }
        start + limit
    }

    fn expected_chunk_size(&self) -> usize {
        self.params.avg
    }

    fn max_chunk_size(&self) -> usize {
        self.params.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RabinChunker;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn fewer_max_size_chunks_than_plain_cdc_on_low_entropy_data() {
        // Data with long compressible runs interrupted by random islands:
        // plain CDC cuts runs at hard max; TTTD finds backup cut points in
        // the random islands more often.
        let mut rng = StdRng::seed_from_u64(11);
        let mut data = Vec::new();
        for _ in 0..200 {
            data.extend(std::iter::repeat_n(0xAAu8, rng.random_range(500..3000)));
            data.extend((0..rng.random_range(100..400)).map(|_| rng.random::<u8>()));
        }
        let cdc = RabinChunker::with_avg(512).unwrap();
        let tttd = TttdChunker::with_avg(512).unwrap();
        let max = cdc.params().max;
        let cdc_hard = cdc.spans(&data).iter().filter(|s| s.len == max).count();
        let tttd_hard = tttd.spans(&data).iter().filter(|s| s.len == max).count();
        assert!(
            tttd_hard <= cdc_hard,
            "TTTD produced more hard cuts ({tttd_hard}) than CDC ({cdc_hard})"
        );
    }

    #[test]
    fn main_divisor_cuts_match_cdc() {
        // Where the main divisor fires first, TTTD and plain CDC agree.
        let data = random_data(100_000, 17);
        let cdc = RabinChunker::with_avg(512).unwrap();
        let tttd = TttdChunker::with_avg(512).unwrap();
        // On fully random data hard cuts are rare, so most boundaries agree.
        let a: std::collections::HashSet<_> = cdc.cut_points(&data).into_iter().collect();
        let b = tttd.cut_points(&data);
        let common = b.iter().filter(|c| a.contains(c)).count();
        assert!(common * 10 >= b.len() * 9, "{common}/{} agree", b.len());
    }

    #[test]
    fn degenerate_avg_two_falls_back_to_plain_cdc() {
        // Regression: with `avg = 2` the halved backup mask is 0, and the
        // old `value & 0 == 0` test fired at every position, so the backup
        // cut always replaced the hard `max` cut with whatever position was
        // scanned last. The safe derivation disables the backup divisor
        // instead, making TTTD cut exactly like plain CDC.
        let tttd = TttdChunker::with_avg(2).unwrap();
        assert!(tttd.backup.is_none(), "avg=2 must disable the backup divisor");
        let cdc = RabinChunker::with_avg(2).unwrap();
        // Low-entropy data maximises hard-max cuts, where the backup path
        // (and therefore the old bug) kicks in.
        let mut data = vec![0xAAu8; 10_000];
        data.extend_from_slice(&random_data(10_000, 19));
        assert_eq!(tttd.cut_points(&data), cdc.cut_points(&data));

        // The first avg with a usable backup divisor keeps it enabled.
        assert!(TttdChunker::with_avg(4).unwrap().backup.is_some());
    }

    // Tiling/bounds/determinism/streaming for TTTD are covered by the
    // parameterized matrix suite in `crate::matrix`.
}
