//! Asymmetric Extremum (AE) chunking (Zhang et al., INFOCOM'15).
//!
//! AE needs no rolling hash at all: a position is a cut point when the
//! byte `w` positions earlier is a strict local maximum of everything seen
//! since — i.e. an extreme value followed by a full window of
//! not-greater bytes. Detection is one compare per byte with no multiply
//! and no table lookup, which made AE the throughput benchmark CDC paper
//! baselines are measured against ("A Thorough Investigation of
//! Content-Defined Chunking Algorithms", PAPERS.md).
//!
//! The textbook algorithm has no `min`/`max` bounds (its expected chunk
//! size is `(e/(e-1)) · w ≈ 1.58 w`). To satisfy the workspace-wide
//! [`Chunker`] contract — bounded chunks so [`crate::StreamChunker`] has a
//! finality horizon and engines can size buffers — this implementation
//! skips the first `min − w` bytes (so no cut lands before `min`) and
//! forces a cut at `max`, mirroring the clamps every other chunker here
//! applies. The window is `w = max(avg/2, 1)`, putting the expected chunk
//! size near `ECS` once the min-skip is added.

use crate::params::ChunkerParams;
use crate::Chunker;

/// Asymmetric Extremum content-defined chunker.
///
/// ```
/// use mhd_chunking::{AeChunker, Chunker};
///
/// let chunker = AeChunker::with_avg(1024).unwrap();
/// let data = vec![42u8; 10_000];
/// let spans = chunker.spans(&data);
/// assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
/// ```
#[derive(Clone)]
pub struct AeChunker {
    params: ChunkerParams,
    /// Extremum window length.
    window: usize,
}

impl AeChunker {
    /// Creates a chunker from validated parameters.
    pub fn new(params: ChunkerParams) -> Result<Self, crate::ParamError> {
        params.validate()?;
        Ok(AeChunker { params, window: (params.avg / 2).max(1) })
    }

    /// Convenience constructor from an expected chunk size.
    pub fn with_avg(avg: usize) -> Result<Self, crate::ParamError> {
        Self::new(ChunkerParams::with_avg(avg)?)
    }

    /// The configured parameters.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }
}

impl Chunker for AeChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        let p = &self.params;
        let remaining = data.len() - start;
        if remaining <= p.min {
            return data.len();
        }
        let limit = start + remaining.min(p.max);

        // Skip ahead so the earliest possible cut (extremum at the scan
        // origin, then a full window) lands past `min`.
        let scan_from = start + p.min.saturating_sub(self.window);
        if scan_from >= limit {
            return limit;
        }
        let mut ext_val = data[scan_from];
        let mut ext_pos = scan_from;
        for (i, &b) in data[scan_from + 1..limit].iter().enumerate() {
            let pos = scan_from + 1 + i;
            if b > ext_val {
                ext_val = b;
                ext_pos = pos;
            } else if pos - ext_pos == self.window {
                return pos + 1;
            }
        }
        limit
    }

    fn expected_chunk_size(&self) -> usize {
        self.params.avg
    }

    fn max_chunk_size(&self) -> usize {
        self.params.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn average_size_is_plausible() {
        let avg = 1024usize;
        let chunker = AeChunker::with_avg(avg).unwrap();
        let data = random_data(2_000_000, 31);
        let n = chunker.cut_points(&data).len();
        let measured = data.len() / n;
        assert!(
            measured > avg / 2 && measured < avg * 2,
            "measured avg {measured} vs expected {avg}"
        );
    }

    #[test]
    fn constant_runs_cut_at_window_not_every_byte() {
        // On a constant run nothing exceeds the first byte, so the first
        // byte of each scan is the extremum and every chunk has the same
        // deterministic length: min-skip + window + 1.
        let chunker = AeChunker::with_avg(1024).unwrap();
        let p = chunker.params();
        let data = vec![0xAAu8; 100_000];
        let spans = chunker.spans(&data);
        let expect = p.min.saturating_sub(chunker.window) + chunker.window + 1;
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len, expect);
            assert!(s.len > p.min && s.len <= p.max);
        }
    }

    #[test]
    fn strictly_increasing_data_forces_max_cuts() {
        // A strictly rising ramp renews the extremum at every byte, so no
        // window ever completes and every cut is the forced one at `max`.
        let chunker = AeChunker::with_avg(16).unwrap();
        let p = chunker.params();
        let data: Vec<u8> = (0..256u32).map(|i| i as u8).collect();
        assert!(data.len() % p.max == 0, "ramp must tile into max-size chunks");
        let spans = chunker.spans(&data);
        assert_eq!(spans.len(), data.len() / p.max);
        for s in &spans {
            assert_eq!(s.len, p.max);
        }
    }

    #[test]
    fn identical_suffix_realigns_after_prefix_insert() {
        let chunker = AeChunker::with_avg(512).unwrap();
        let data = random_data(100_000, 32);
        let mut shifted = random_data(100, 33);
        shifted.extend_from_slice(&data);

        let cuts_a: Vec<usize> = chunker.cut_points(&data);
        let cuts_b: Vec<usize> = chunker.cut_points(&shifted).iter().map(|c| c - 100).collect();

        let set_a: std::collections::HashSet<_> = cuts_a.iter().copied().collect();
        let tail_b: Vec<_> = cuts_b.iter().filter(|&&c| c >= 10_000).collect();
        let realigned = tail_b.iter().filter(|&&&c| set_a.contains(&c)).count();
        assert!(
            realigned * 10 >= tail_b.len() * 9,
            "only {realigned}/{} boundaries realigned",
            tail_b.len()
        );
    }
}
