//! Adaptive chunker selection (Lee & Park \[21\] in the paper's §II):
//! "a chunking method adaptively selecting the CDC and FSP algorithms
//! based on the file type and the computational capabilities of the
//! devices".
//!
//! CDC's rolling fingerprint costs CPU per byte; on low-power devices that
//! budget is only worth paying where content-defined boundaries can
//! actually help. High-entropy inputs (compressed archives, encrypted
//! blobs, media) deduplicate either whole-file or not at all — boundary
//! alignment buys nothing — so [`AdaptiveChunker`] routes them to cheap
//! fixed-size partitioning and keeps CDC for structured data, with the
//! entropy threshold tightening as the device profile weakens.

use crate::{Chunker, FixedChunker, RabinChunker};

/// Computational budget of the device doing the chunking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceProfile {
    /// Servers/desktops: CDC for everything except near-incompressible
    /// data.
    Workstation,
    /// Phones/embedded: CDC only for clearly structured data.
    Mobile,
}

impl DeviceProfile {
    /// Entropy threshold (bits/byte) above which FSP is selected.
    fn threshold(&self) -> f64 {
        match self {
            DeviceProfile::Workstation => 7.9,
            DeviceProfile::Mobile => 7.2,
        }
    }
}

/// Which underlying algorithm [`AdaptiveChunker`] picked for an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selected {
    /// Content-defined chunking.
    Cdc,
    /// Fixed-size partitioning.
    Fsp,
}

/// Shannon entropy estimate (bits/byte) over a sample of `data`.
///
/// Samples at most 64 KiB (prefix + suffix) — enough to classify media
/// versus structured content without reading the whole input.
pub fn estimate_entropy(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    const SAMPLE: usize = 32 << 10;
    let mut counts = [0u64; 256];
    let mut total = 0u64;
    let head = &data[..data.len().min(SAMPLE)];
    for &b in head {
        counts[b as usize] += 1;
        total += 1;
    }
    // Sample the tail whenever any byte escaped the prefix sample. The
    // ranges never overlap: the tail starts at `len - SAMPLE`, clamped
    // forward to where the prefix sample ended. (Sampling the tail only
    // for `len > 2 * SAMPLE` left a blind spot at `SAMPLE < len <=
    // 2 * SAMPLE`, where e.g. a compressed payload behind a structured
    // 32 KiB header was misclassified as CDC-worthy.)
    if data.len() > SAMPLE {
        let tail_start = (data.len() - SAMPLE).max(SAMPLE);
        for &b in &data[tail_start..] {
            counts[b as usize] += 1;
            total += 1;
        }
    }
    let mut h = 0.0f64;
    for &c in &counts {
        if c > 0 {
            let p = c as f64 / total as f64;
            h -= p * p.log2();
        }
    }
    h
}

/// A chunker that picks CDC or FSP per input.
#[derive(Clone)]
pub struct AdaptiveChunker {
    cdc: RabinChunker,
    fsp: FixedChunker,
    profile: DeviceProfile,
}

impl AdaptiveChunker {
    /// Builds the adaptive chunker at the given expected chunk size.
    pub fn with_avg(avg: usize, profile: DeviceProfile) -> Result<Self, crate::ParamError> {
        Ok(AdaptiveChunker {
            cdc: RabinChunker::with_avg(avg)?,
            fsp: FixedChunker::new(avg),
            profile,
        })
    }

    /// Which algorithm would be used for `data`.
    pub fn select(&self, data: &[u8]) -> Selected {
        if estimate_entropy(data) > self.profile.threshold() {
            Selected::Fsp
        } else {
            Selected::Cdc
        }
    }
}

impl Chunker for AdaptiveChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        // Selection is re-sampled on every call over the slice the caller
        // is currently chunking, so in-memory chaining and the streaming
        // path make identical decisions (the entropy sample covers the
        // slice's head and tail, see [`estimate_entropy`]).
        match self.select(data) {
            Selected::Cdc => self.cdc.next_cut(data, start),
            Selected::Fsp => self.fsp.next_cut(data, start),
        }
    }

    fn expected_chunk_size(&self) -> usize {
        self.cdc.expected_chunk_size()
    }

    fn max_chunk_size(&self) -> usize {
        self.cdc.max_chunk_size().max(self.fsp.max_chunk_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    /// ASCII-ish structured content (low entropy).
    fn texty(len: usize) -> Vec<u8> {
        (0..len).map(|i| b"the quick brown fox {}\n"[i % 23]).collect()
    }

    #[test]
    fn entropy_estimates_are_sane() {
        assert_eq!(estimate_entropy(&[]), 0.0);
        assert_eq!(estimate_entropy(&[7u8; 10_000]), 0.0);
        assert!(estimate_entropy(&texty(10_000)) < 5.0);
        assert!(estimate_entropy(&random(100_000, 1)) > 7.9);
    }

    #[test]
    fn tail_is_sampled_between_one_and_two_sample_sizes() {
        // A structured 32 KiB header followed by 16 KiB of high-entropy
        // payload: total length sits in (SAMPLE, 2*SAMPLE], the range the
        // old code sampled only the prefix of. The mixed sample must score
        // well above the header-only entropy.
        let mut data = texty(32 << 10);
        data.extend_from_slice(&random(16 << 10, 7));
        let header_only = estimate_entropy(&texty(32 << 10));
        let mixed = estimate_entropy(&data);
        assert!(
            mixed > header_only + 1.0,
            "tail not sampled: mixed {mixed:.2} vs header {header_only:.2}"
        );

        // Non-overlap: a head/tail split that shares no bytes counts each
        // region exactly once, so a uniform input still scores 0.
        assert_eq!(estimate_entropy(&vec![9u8; (32 << 10) + 1]), 0.0);
    }

    #[test]
    fn routes_by_content() {
        let c = AdaptiveChunker::with_avg(1024, DeviceProfile::Workstation).unwrap();
        assert_eq!(c.select(&random(100_000, 2)), Selected::Fsp);
        assert_eq!(c.select(&texty(100_000)), Selected::Cdc);
    }

    #[test]
    fn mobile_profile_prefers_fsp_more() {
        // Mid-entropy data: base64-ish alphabet (64 symbols → 6 bits/byte
        // uniform, push toward 7.3 with 160 symbols).
        let mid: Vec<u8> =
            (0..100_000u32).map(|i| (i.wrapping_mul(2654435761) % 160) as u8).collect();
        let e = estimate_entropy(&mid);
        assert!(e > 7.2 && e < 7.9, "mid entropy {e}");
        let mobile = AdaptiveChunker::with_avg(1024, DeviceProfile::Mobile).unwrap();
        let workstation = AdaptiveChunker::with_avg(1024, DeviceProfile::Workstation).unwrap();
        assert_eq!(mobile.select(&mid), Selected::Fsp);
        assert_eq!(workstation.select(&mid), Selected::Cdc);
    }

    #[test]
    fn fsp_path_produces_fixed_cuts() {
        let c = AdaptiveChunker::with_avg(1024, DeviceProfile::Workstation).unwrap();
        let data = random(10_240, 3);
        let spans = c.spans(&data);
        assert!(spans.iter().all(|s| s.len == 1024));
    }

    #[test]
    fn cdc_path_matches_rabin() {
        let c = AdaptiveChunker::with_avg(1024, DeviceProfile::Workstation).unwrap();
        let data = texty(100_000);
        let rabin = RabinChunker::with_avg(1024).unwrap();
        assert_eq!(c.cut_points(&data), rabin.cut_points(&data));
    }

    #[test]
    fn tiles_either_way() {
        let c = AdaptiveChunker::with_avg(512, DeviceProfile::Mobile).unwrap();
        for data in [random(33_333, 4), texty(33_333)] {
            assert_eq!(c.spans(&data).iter().map(|s| s.len).sum::<usize>(), data.len());
        }
    }
}
