//! Streaming chunking over any [`std::io::Read`].
//!
//! The paper's system chunks "the byte stream created by concatenating the
//! content of the files in the unprocessed file system". For inputs that do
//! not fit in memory, [`StreamChunker`] applies any [`Chunker`]
//! incrementally: it keeps a bounded window buffered, emits every chunk
//! whose end is provably stable (i.e. at least one `max`-size horizon from
//! the buffer end), and advances a consumed offset instead of memmoving
//! the buffer per chunk.

use std::io::Read;

use crate::{Chunker, RabinChunker};

/// Incrementally chunks a byte stream with bounded memory.
///
/// Works with any [`Chunker`]; the default type parameter keeps existing
/// `StreamChunker<R>` signatures meaning "Rabin", the paper's base chunker.
pub struct StreamChunker<R, C: Chunker = RabinChunker> {
    reader: R,
    chunker: C,
    buf: Vec<u8>,
    /// Bytes of `buf` below this offset are already emitted. Advancing an
    /// offset is O(1) per chunk; the old `buf.drain(..cut)` memmoved the
    /// whole remaining window per chunk — O(stream × max) traffic.
    pos: usize,
    /// Absolute stream offset of `buf[pos]`.
    base: u64,
    /// Read granularity.
    refill: usize,
    /// Reusable read buffer; the old code allocated a fresh one per
    /// `fill()` call on the hot path.
    scratch: Vec<u8>,
    eof: bool,
}

/// A chunk produced by [`StreamChunker`]: absolute offset plus owned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedChunk {
    /// Absolute byte offset of this chunk in the stream.
    pub offset: u64,
    /// The chunk payload.
    pub data: Vec<u8>,
}

impl<R: Read, C: Chunker> StreamChunker<R, C> {
    /// Wraps `reader`, cutting with `chunker`.
    pub fn new(reader: R, chunker: C) -> Self {
        let refill = chunker.max_chunk_size().max(64 * 1024);
        StreamChunker {
            reader,
            chunker,
            buf: Vec::new(),
            pos: 0,
            base: 0,
            refill,
            scratch: vec![0u8; refill],
            eof: false,
        }
    }

    /// Unconsumed window size beyond which consumed bytes are compacted
    /// away. Amortised: one memmove of at most a window per at least three
    /// windows consumed, bounding the buffer at ~4 windows while keeping
    /// copy traffic O(1) per byte streamed.
    fn compact_threshold(&self) -> usize {
        3 * (2 * self.chunker.max_chunk_size() + self.refill)
    }

    fn fill(&mut self) -> std::io::Result<()> {
        if self.pos >= self.compact_threshold() {
            self.buf.copy_within(self.pos.., 0);
            self.buf.truncate(self.buf.len() - self.pos);
            self.pos = 0;
        }
        let target = 2 * self.chunker.max_chunk_size() + self.refill;
        while !self.eof && self.buf.len() - self.pos < target {
            let n = self.reader.read(&mut self.scratch)?;
            if n == 0 {
                self.eof = true;
            } else {
                self.buf.extend_from_slice(&self.scratch[..n]);
            }
        }
        Ok(())
    }

    /// Produces the next chunk, or `Ok(None)` at end of stream.
    pub fn next_chunk(&mut self) -> std::io::Result<Option<StreamedChunk>> {
        self.fill()?;
        let window = &self.buf[self.pos..];
        if window.is_empty() {
            return Ok(None);
        }
        let cut = self.chunker.next_cut(window, 0);
        // A cut is only final if it cannot move when more data arrives:
        // either we are at EOF, or the cut is at least one full `max`
        // horizon before the buffer end (next_cut(_, 0) never looks past
        // `max_chunk_size` bytes).
        debug_assert!(self.eof || cut <= self.chunker.max_chunk_size());
        let data = window[..cut].to_vec();
        self.pos += cut;
        let offset = self.base;
        self.base += data.len() as u64;
        Ok(Some(StreamedChunk { offset, data }))
    }

    /// Drains the whole stream into a chunk list (convenience for tests and
    /// small inputs).
    pub fn collect_all(mut self) -> std::io::Result<Vec<StreamedChunk>> {
        let mut out = Vec::new();
        while let Some(c) = self.next_chunk()? {
            out.push(c);
        }
        Ok(out)
    }

    /// Current buffered bytes including the consumed prefix (test hook for
    /// the compaction bound).
    #[cfg(test)]
    fn buffered_len(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AeChunker, Chunker, FastCdcChunker};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn matches_in_memory_chunking() {
        let data = random_data(500_000, 21);
        let chunker = RabinChunker::with_avg(1024).unwrap();
        let expect = chunker.spans(&data);

        let streamed =
            StreamChunker::new(&data[..], chunker.clone()).collect_all().expect("in-memory read");
        assert_eq!(streamed.len(), expect.len());
        for (s, e) in streamed.iter().zip(&expect) {
            assert_eq!(s.offset as usize, e.offset);
            assert_eq!(&s.data[..], &data[e.offset..e.end()]);
        }
    }

    #[test]
    fn matches_in_memory_chunking_for_fastcdc_and_ae() {
        let data = random_data(500_000, 24);
        let fast = FastCdcChunker::with_avg(1024).unwrap();
        let ae = AeChunker::with_avg(1024).unwrap();

        let expect = fast.spans(&data);
        let streamed = StreamChunker::new(&data[..], fast.clone()).collect_all().unwrap();
        assert_eq!(streamed.len(), expect.len());
        for (s, e) in streamed.iter().zip(&expect) {
            assert_eq!((s.offset as usize, s.data.len()), (e.offset, e.len));
        }

        let expect = ae.spans(&data);
        let streamed = StreamChunker::new(&data[..], ae.clone()).collect_all().unwrap();
        assert_eq!(streamed.len(), expect.len());
        for (s, e) in streamed.iter().zip(&expect) {
            assert_eq!((s.offset as usize, s.data.len()), (e.offset, e.len));
        }
    }

    #[test]
    fn reassembles_exactly() {
        let data = random_data(123_457, 22);
        let chunker = RabinChunker::with_avg(512).unwrap();
        let streamed = StreamChunker::new(&data[..], chunker).collect_all().unwrap();
        let rejoined: Vec<u8> = streamed.into_iter().flat_map(|c| c.data).collect();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_stream() {
        let chunker = RabinChunker::with_avg(512).unwrap();
        let mut s = StreamChunker::new(&[][..], chunker);
        assert!(s.next_chunk().unwrap().is_none());
    }

    /// A reader that trickles one byte at a time, exercising refill logic.
    struct Trickle<'a>(&'a [u8]);
    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn trickling_reader_equivalent() {
        let data = random_data(30_000, 23);
        let chunker = RabinChunker::with_avg(512).unwrap();
        let whole = StreamChunker::new(&data[..], chunker.clone()).collect_all().unwrap();
        let trickled = StreamChunker::new(Trickle(&data), chunker).collect_all().unwrap();
        assert_eq!(whole, trickled);
    }

    #[test]
    fn compaction_bounds_the_buffer() {
        // Stream far more data than the compaction threshold; the buffer
        // must stay bounded near threshold + one window, not grow with the
        // stream, while producing the exact in-memory boundaries.
        let chunker = RabinChunker::with_avg(256).unwrap();
        let data = random_data(2_000_000, 25);
        let expect = chunker.cut_points(&data);

        let mut s = StreamChunker::new(&data[..], chunker.clone());
        // Post-fill invariant: consumed prefix < threshold, unconsumed
        // window < target + one refill of read overshoot.
        let bound = s.compact_threshold() + 2 * chunker.max_chunk_size() + 2 * s.refill;
        let mut cuts = Vec::new();
        let mut consumed = 0usize;
        while let Some(c) = s.next_chunk().unwrap() {
            consumed += c.data.len();
            cuts.push(consumed);
            assert!(s.buffered_len() <= bound, "buffer grew to {}", s.buffered_len());
        }
        assert_eq!(cuts, expect);
    }
}
