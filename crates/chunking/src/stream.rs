//! Streaming chunking over any [`std::io::Read`].
//!
//! The paper's system chunks "the byte stream created by concatenating the
//! content of the files in the unprocessed file system". For inputs that do
//! not fit in memory, [`StreamChunker`] applies a [`Chunker`] incrementally:
//! it keeps at most `max + refill` bytes buffered, emits every chunk whose
//! end is provably stable (i.e. at least one `max`-size horizon from the
//! buffer end), and shifts the buffer.

use std::io::Read;

use crate::RabinChunker;

/// Incrementally chunks a byte stream with bounded memory.
pub struct StreamChunker<R> {
    reader: R,
    chunker: RabinChunker,
    buf: Vec<u8>,
    /// Absolute stream offset of `buf[0]`.
    base: u64,
    /// Read granularity.
    refill: usize,
    eof: bool,
}

/// A chunk produced by [`StreamChunker`]: absolute offset plus owned bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamedChunk {
    /// Absolute byte offset of this chunk in the stream.
    pub offset: u64,
    /// The chunk payload.
    pub data: Vec<u8>,
}

impl<R: Read> StreamChunker<R> {
    /// Wraps `reader`, cutting with `chunker`.
    pub fn new(reader: R, chunker: RabinChunker) -> Self {
        let refill = chunker.params().max.max(64 * 1024);
        StreamChunker { reader, chunker, buf: Vec::new(), base: 0, refill, eof: false }
    }

    fn fill(&mut self) -> std::io::Result<()> {
        let mut scratch = vec![0u8; self.refill];
        while !self.eof && self.buf.len() < 2 * self.chunker.params().max + self.refill {
            let n = self.reader.read(&mut scratch)?;
            if n == 0 {
                self.eof = true;
            } else {
                self.buf.extend_from_slice(&scratch[..n]);
            }
        }
        Ok(())
    }

    /// Produces the next chunk, or `Ok(None)` at end of stream.
    pub fn next_chunk(&mut self) -> std::io::Result<Option<StreamedChunk>> {
        self.fill()?;
        if self.buf.is_empty() {
            return Ok(None);
        }
        let cut = self.chunker.next_cut(&self.buf, 0);
        // A cut is only final if it cannot move when more data arrives:
        // either we are at EOF, or the cut is at least one full `max`
        // horizon before the buffer end (next_cut(_, 0) never looks past
        // `max` bytes).
        debug_assert!(self.eof || cut <= self.chunker.params().max);
        let data: Vec<u8> = self.buf.drain(..cut).collect();
        let offset = self.base;
        self.base += data.len() as u64;
        Ok(Some(StreamedChunk { offset, data }))
    }

    /// Drains the whole stream into a chunk list (convenience for tests and
    /// small inputs).
    pub fn collect_all(mut self) -> std::io::Result<Vec<StreamedChunk>> {
        let mut out = Vec::new();
        while let Some(c) = self.next_chunk()? {
            out.push(c);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Chunker;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn matches_in_memory_chunking() {
        let data = random_data(500_000, 21);
        let chunker = RabinChunker::with_avg(1024).unwrap();
        let expect = chunker.spans(&data);

        let streamed =
            StreamChunker::new(&data[..], chunker.clone()).collect_all().expect("in-memory read");
        assert_eq!(streamed.len(), expect.len());
        for (s, e) in streamed.iter().zip(&expect) {
            assert_eq!(s.offset as usize, e.offset);
            assert_eq!(&s.data[..], &data[e.offset..e.end()]);
        }
    }

    #[test]
    fn reassembles_exactly() {
        let data = random_data(123_457, 22);
        let chunker = RabinChunker::with_avg(512).unwrap();
        let streamed = StreamChunker::new(&data[..], chunker).collect_all().unwrap();
        let rejoined: Vec<u8> = streamed.into_iter().flat_map(|c| c.data).collect();
        assert_eq!(rejoined, data);
    }

    #[test]
    fn empty_stream() {
        let chunker = RabinChunker::with_avg(512).unwrap();
        let mut s = StreamChunker::new(&[][..], chunker);
        assert!(s.next_chunk().unwrap().is_none());
    }

    /// A reader that trickles one byte at a time, exercising refill logic.
    struct Trickle<'a>(&'a [u8]);
    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn trickling_reader_equivalent() {
        let data = random_data(30_000, 23);
        let chunker = RabinChunker::with_avg(512).unwrap();
        let whole = StreamChunker::new(&data[..], chunker.clone()).collect_all().unwrap();
        let trickled = StreamChunker::new(Trickle(&data), chunker).collect_all().unwrap();
        assert_eq!(whole, trickled);
    }
}
