//! Table-driven rolling Rabin fingerprint over a sliding byte window.

use std::sync::Arc;

use crate::poly::{self, is_irreducible};

/// The default fingerprint modulus: the degree-53 irreducible polynomial
/// used by LBFS. Irreducibility is re-verified at table build time.
pub const DEFAULT_POLY: u64 = 0x003D_A335_8B4D_C173;

/// Precomputed lookup tables for a (polynomial, window) pair.
///
/// * `push[h]` folds the 8 bits that overflow the modulus degree back into
///   the fingerprint when a byte is appended.
/// * `pop[b]` is the contribution `b · x^(8·(window−1)) mod P` of the byte
///   leaving the window, xored out when the window slides.
///
/// Tables are built once per parameter set and shared via [`Arc`]; all
/// chunkers for one experiment configuration reuse them.
#[derive(Debug)]
pub struct RabinTables {
    poly: u64,
    window: usize,
    shift: u32,
    lo_mask: u64,
    push: [u64; 256],
    pop: [u64; 256],
}

impl RabinTables {
    /// Builds tables for `poly` (must be irreducible, degree 9..=63) and a
    /// sliding window of `window` bytes (must be ≥ 1).
    ///
    /// # Panics
    /// Panics if `poly` is reducible or has unusable degree, or if
    /// `window == 0`. These are programmer errors in fixed configuration.
    pub fn new(poly: u64, window: usize) -> Arc<Self> {
        let deg = poly::degree(poly as u128).expect("polynomial must be nonzero");
        assert!((9..=63).contains(&deg), "polynomial degree {deg} outside 9..=63");
        assert!(is_irreducible(poly), "fingerprint polynomial must be irreducible");
        assert!(window >= 1, "window must be at least one byte");

        let shift = deg - 8;
        let lo_mask = (1u64 << shift) - 1;

        // push[h] = h * x^deg mod P for each 8-bit h.
        let mut push = [0u64; 256];
        let x_deg = poly::pmod(1u128 << deg, poly);
        for (h, entry) in push.iter_mut().enumerate() {
            *entry = poly::mulmod(h as u64, x_deg, poly);
        }

        // pop[b] = b * x^(8*(window-1)) mod P.
        // Compute x^(8*(window-1)) by repeated multiplication by x^8.
        let x8 = poly::pmod(1u128 << 8, poly);
        let mut x_out = 1u64; // x^0
        for _ in 0..window.saturating_sub(1) {
            x_out = poly::mulmod(x_out, x8, poly);
        }
        let mut pop = [0u64; 256];
        for (b, entry) in pop.iter_mut().enumerate() {
            *entry = poly::mulmod(b as u64, x_out, poly);
        }

        Arc::new(RabinTables { poly, window, shift, lo_mask, push, pop })
    }

    /// Tables for [`DEFAULT_POLY`] and the given window.
    pub fn default_with_window(window: usize) -> Arc<Self> {
        Self::new(DEFAULT_POLY, window)
    }

    /// The fingerprint modulus.
    pub fn poly(&self) -> u64 {
        self.poly
    }

    /// The sliding-window size in bytes.
    pub fn window(&self) -> usize {
        self.window
    }
}

/// A rolling fingerprint over the trailing `window` bytes of a stream.
///
/// ```
/// use mhd_chunking::{RabinFingerprint, RabinTables};
/// let tables = RabinTables::default_with_window(16);
/// let mut fp = RabinFingerprint::new(tables);
/// for b in b"hello world, hello world" {
///     fp.roll(*b);
/// }
/// let _ = fp.value();
/// ```
#[derive(Clone)]
pub struct RabinFingerprint {
    tables: Arc<RabinTables>,
    fp: u64,
    /// Ring buffer of the last `window` bytes.
    ring: Vec<u8>,
    pos: usize,
    filled: bool,
}

impl RabinFingerprint {
    /// Creates an empty fingerprint state.
    pub fn new(tables: Arc<RabinTables>) -> Self {
        let window = tables.window();
        RabinFingerprint { tables, fp: 0, ring: vec![0u8; window], pos: 0, filled: false }
    }

    /// Current fingerprint value (of the trailing window).
    #[inline]
    pub fn value(&self) -> u64 {
        self.fp
    }

    /// Slides the window forward by one byte.
    #[inline]
    pub fn roll(&mut self, byte: u8) {
        let t = &self.tables;
        if self.filled {
            // Remove the byte that falls out of the window.
            let out = self.ring[self.pos];
            self.fp ^= t.pop[out as usize];
        }
        self.ring[self.pos] = byte;
        self.pos += 1;
        if self.pos == self.ring.len() {
            self.pos = 0;
            self.filled = true;
        }
        // Append the new byte: fp = (fp * x^8 + byte) mod P.
        let hi = (self.fp >> t.shift) as usize;
        self.fp = (((self.fp & t.lo_mask) << 8) | byte as u64) ^ t.push[hi];
    }

    /// Resets to the empty-window state (reusing the allocation).
    pub fn reset(&mut self) {
        self.fp = 0;
        self.pos = 0;
        self.filled = false;
        self.ring.fill(0);
    }

    /// True once at least `window` bytes have been rolled in.
    pub fn warmed_up(&self) -> bool {
        self.filled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::direct_fingerprint;
    use proptest::prelude::*;

    fn tables(window: usize) -> Arc<RabinTables> {
        RabinTables::default_with_window(window)
    }

    #[test]
    fn rolling_matches_direct_after_warmup() {
        let w = 8;
        let t = tables(w);
        let data: Vec<u8> = (0u32..200).map(|i| (i.wrapping_mul(2654435761) >> 13) as u8).collect();
        let mut fp = RabinFingerprint::new(t.clone());
        for (i, &b) in data.iter().enumerate() {
            fp.roll(b);
            if i + 1 >= w {
                let window = &data[i + 1 - w..=i];
                assert_eq!(fp.value(), direct_fingerprint(window, t.poly()), "at pos {i}");
            }
        }
    }

    #[test]
    fn fingerprint_depends_only_on_window() {
        let w = 16;
        let t = tables(w);
        let tail = b"the same sixteen!"; // 17 bytes; last 16 form the window
        let mut a = RabinFingerprint::new(t.clone());
        for b in [vec![1u8; 100], tail.to_vec()].concat() {
            a.roll(b);
        }
        let mut b_fp = RabinFingerprint::new(t);
        for b in [vec![250u8; 37], tail.to_vec()].concat() {
            b_fp.roll(b);
        }
        assert_eq!(a.value(), b_fp.value());
    }

    #[test]
    fn reset_restores_initial_state() {
        let t = tables(4);
        let mut fp = RabinFingerprint::new(t.clone());
        for b in b"some data to roll" {
            fp.roll(*b);
        }
        fp.reset();
        assert_eq!(fp.value(), 0);
        assert!(!fp.warmed_up());
        let mut fresh = RabinFingerprint::new(t);
        for b in b"xyz" {
            fp.roll(*b);
            fresh.roll(*b);
        }
        assert_eq!(fp.value(), fresh.value());
    }

    #[test]
    fn warmed_up_transitions_at_window() {
        let mut fp = RabinFingerprint::new(tables(5));
        for i in 0..5 {
            assert!(!fp.warmed_up(), "before byte {i}");
            fp.roll(i);
        }
        assert!(fp.warmed_up());
    }

    #[test]
    #[should_panic(expected = "irreducible")]
    fn reducible_poly_rejected() {
        // x^53 alone is x^53, reducible.
        let _ = RabinTables::new(1u64 << 53, 8);
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_rejected() {
        let _ = RabinTables::new(DEFAULT_POLY, 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Rolling fingerprint equals the direct polynomial reduction of the
        /// trailing window, for random data and window sizes.
        #[test]
        fn prop_rolling_equals_direct(
            data in proptest::collection::vec(any::<u8>(), 1..300),
            window in 1usize..32,
        ) {
            let t = RabinTables::default_with_window(window);
            let mut fp = RabinFingerprint::new(t.clone());
            for (i, &b) in data.iter().enumerate() {
                fp.roll(b);
                if i + 1 >= window {
                    let win = &data[i + 1 - window..=i];
                    prop_assert_eq!(fp.value(), direct_fingerprint(win, t.poly()));
                }
            }
        }

        /// The same window contents yield the same fingerprint regardless of
        /// what preceded them (the content-defined property).
        #[test]
        fn prop_history_independence(
            prefix_a in proptest::collection::vec(any::<u8>(), 0..64),
            prefix_b in proptest::collection::vec(any::<u8>(), 0..64),
            window_bytes in proptest::collection::vec(any::<u8>(), 8..40),
        ) {
            let w = 8usize;
            let t = RabinTables::default_with_window(w);
            let mut a = RabinFingerprint::new(t.clone());
            for &b in prefix_a.iter().chain(&window_bytes) { a.roll(b); }
            let mut b_fp = RabinFingerprint::new(t);
            for &b in prefix_b.iter().chain(&window_bytes) { b_fp.roll(b); }
            prop_assert_eq!(a.value(), b_fp.value());
        }
    }
}
