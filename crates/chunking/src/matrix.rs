//! The chunker matrix: one parameterized property suite run against every
//! [`Chunker`] implementation, replacing the per-module copies of the
//! tiling/bounds/determinism tests.
//!
//! Properties pinned for each algorithm:
//! * **tiling** — `concat(chunks) == input` for arbitrary inputs,
//! * **bounds** — every chunk is at most `max_chunk_size`, and every
//!   non-final chunk is at least the algorithm's minimum,
//! * **determinism** — identical inputs produce identical boundaries,
//! * **stream equivalence** — [`StreamChunker`] reproduces the in-memory
//!   boundaries byte-for-byte, including through a one-byte-at-a-time
//!   reader,
//! * **SWAR identity** — the vectorized FastCDC scanner produces exactly
//!   the scalar reference's cut points.

use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{
    AdaptiveChunker, AnyChunker, Chunker, ChunkerKind, ChunkerParams, DeviceProfile,
    FastCdcChunker, StreamChunker,
};

fn random_data(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

/// Structured corpora covering the regimes that break chunkers: random,
/// constant runs, short inputs, rising ramps, and low-entropy data with
/// random islands.
fn corpora(seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut islands = Vec::new();
    for _ in 0..40 {
        islands.extend(std::iter::repeat_n(0x55u8, rng.random_range(200..2000)));
        islands.extend((0..rng.random_range(50..300)).map(|_| rng.random::<u8>()));
    }
    vec![
        Vec::new(),
        vec![7u8],
        random_data(3, seed),
        random_data(200_000, seed.wrapping_add(1)),
        vec![0u8; 50_000],
        (0..50_000u32).map(|i| (i % 256) as u8).collect(),
        islands,
    ]
}

/// Every engine-selectable chunker at this `avg`, by kind.
fn matrix(avg: usize) -> Vec<AnyChunker> {
    ChunkerKind::ALL.iter().map(|k| k.build(avg).expect("buildable avg")).collect()
}

/// The minimum length every non-final chunk must satisfy.
fn min_for(kind: ChunkerKind, avg: usize) -> usize {
    match kind {
        // FSP cuts every `avg` bytes exactly.
        ChunkerKind::Fixed => avg,
        _ => ChunkerParams::with_avg(avg).expect("valid avg").min,
    }
}

fn assert_tiles_and_bounds(chunker: &AnyChunker, avg: usize, data: &[u8]) {
    let kind = chunker.kind();
    let spans = chunker.spans(data);
    let min = min_for(kind, avg);
    let mut covered = 0usize;
    for (i, s) in spans.iter().enumerate() {
        assert_eq!(s.offset, covered, "{kind} avg={avg}: gap before chunk {i}");
        covered += s.len;
        assert!(
            s.len <= chunker.max_chunk_size(),
            "{kind} avg={avg}: chunk {i} of {} exceeds max {}",
            s.len,
            chunker.max_chunk_size()
        );
        if i + 1 != spans.len() {
            assert!(
                s.len >= min,
                "{kind} avg={avg}: non-final chunk {i} of {} under min {min}",
                s.len
            );
        }
    }
    assert_eq!(covered, data.len(), "{kind} avg={avg}: chunks do not tile");
}

#[test]
fn every_chunker_tiles_and_respects_bounds() {
    for avg in [2usize, 64, 1024] {
        for chunker in matrix(avg) {
            for data in corpora(100 + avg as u64) {
                assert_tiles_and_bounds(&chunker, avg, &data);
            }
        }
    }
}

#[test]
fn every_chunker_is_deterministic() {
    for avg in [64usize, 1024] {
        for chunker in matrix(avg) {
            let data = random_data(150_000, 200 + avg as u64);
            assert_eq!(
                chunker.cut_points(&data),
                chunker.cut_points(&data),
                "{} avg={avg} not deterministic",
                chunker.kind()
            );
        }
    }
}

/// A reader that trickles a few bytes at a time, exercising refill logic.
struct Trickle<'a>(&'a [u8]);
impl std::io::Read for Trickle<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.0.len().min(buf.len()).min(3);
        buf[..n].copy_from_slice(&self.0[..n]);
        self.0 = &self.0[n..];
        Ok(n)
    }
}

#[test]
fn every_chunker_streams_identically_to_memory() {
    // AdaptiveChunker is intentionally absent: its per-window entropy
    // re-selection is allowed to differ between whole-input and windowed
    // views. Every engine-selectable kind must match exactly.
    for avg in [64usize, 512] {
        for chunker in matrix(avg) {
            let kind = chunker.kind();
            let data = random_data(120_000, 300 + avg as u64);
            let expect = chunker.cut_points(&data);

            let streamed =
                StreamChunker::new(&data[..], chunker.clone()).collect_all().expect("memory read");
            let mut cuts = Vec::new();
            let mut consumed = 0usize;
            let mut rejoined = Vec::new();
            for c in &streamed {
                assert_eq!(c.offset as usize, consumed, "{kind} avg={avg}: offset drift");
                consumed += c.data.len();
                cuts.push(consumed);
                rejoined.extend_from_slice(&c.data);
            }
            assert_eq!(cuts, expect, "{kind} avg={avg}: stream cuts diverge");
            assert_eq!(rejoined, data, "{kind} avg={avg}: stream bytes diverge");

            let trickled =
                StreamChunker::new(Trickle(&data), chunker.clone()).collect_all().unwrap();
            assert_eq!(trickled, streamed, "{kind} avg={avg}: trickled reader diverges");
        }
    }
}

#[test]
fn swar_scanner_is_byte_identical_to_scalar() {
    // Forced SWAR, forced scalar, and the calibrated default must all
    // agree, so kernel auto-selection can never move a chunk boundary.
    for avg in [2usize, 64, 512, 4096] {
        let chunker = FastCdcChunker::with_avg(avg).unwrap();
        for (i, data) in corpora(400 + avg as u64).iter().enumerate() {
            let scalar = chunker.cut_points_scalar(data);
            assert_eq!(
                chunker.cut_points_swar(data),
                scalar,
                "avg={avg} corpus {i}: SWAR and scalar cut points differ"
            );
            assert_eq!(
                chunker.cut_points(data),
                scalar,
                "avg={avg} corpus {i}: calibrated default diverges from scalar"
            );
        }
    }
}

#[test]
fn adaptive_chunker_tiles_both_profiles() {
    for profile in [DeviceProfile::Workstation, DeviceProfile::Mobile] {
        let chunker = AdaptiveChunker::with_avg(512, profile).unwrap();
        for data in corpora(77) {
            let spans = chunker.spans(&data);
            assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
            assert!(spans.iter().all(|s| s.len <= chunker.max_chunk_size()));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_matrix_tiles_any_input(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        for chunker in matrix(256) {
            assert_tiles_and_bounds(&chunker, 256, &data);
        }
    }

    #[test]
    fn prop_swar_identity_any_input(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let chunker = FastCdcChunker::with_avg(256).unwrap();
        prop_assert_eq!(chunker.cut_points_swar(&data), chunker.cut_points_scalar(&data));
    }
}
