//! Carry-less polynomial arithmetic over GF(2).
//!
//! Rabin fingerprinting \[19\] treats a byte string as a polynomial over
//! GF(2) and reduces it modulo a fixed irreducible polynomial `P`. The
//! fingerprint tables in [`crate::RabinTables`] are derived from `P` using
//! the primitives in this module, and `P` itself is validated with Rabin's
//! irreducibility criterion at table-construction time, so a bad modulus is
//! caught immediately rather than silently degrading cut-point quality.
//!
//! Polynomials of degree ≤ 63 are represented as `u64` with bit *i* holding
//! the coefficient of *x^i*. Intermediate products use `u128`.

/// Degree of a polynomial (`None` for the zero polynomial).
pub fn degree(p: u128) -> Option<u32> {
    if p == 0 {
        None
    } else {
        Some(127 - p.leading_zeros())
    }
}

/// Carry-less multiplication of two GF(2) polynomials of degree ≤ 63.
pub fn clmul(a: u64, b: u64) -> u128 {
    let mut acc: u128 = 0;
    let mut a = a as u128;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    acc
}

/// Remainder of `a` modulo `m` (GF(2) polynomial division).
///
/// `m` must be nonzero.
pub fn pmod(mut a: u128, m: u64) -> u64 {
    let md = degree(m as u128).expect("modulus must be nonzero");
    while let Some(ad) = degree(a) {
        if ad < md {
            break;
        }
        a ^= (m as u128) << (ad - md);
    }
    a as u64
}

/// `(a * b) mod m` over GF(2), for `a`, `b` already reduced mod `m`.
pub fn mulmod(a: u64, b: u64, m: u64) -> u64 {
    pmod(clmul(a, b), m)
}

/// `x^(2^k) mod m`, by repeated squaring.
fn x_pow_pow2_mod(k: u32, m: u64) -> u64 {
    let mut r = pmod(0b10, m); // x mod m
    for _ in 0..k {
        r = mulmod(r, r, m);
    }
    r
}

/// GCD of two GF(2) polynomials.
pub fn pgcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = pmod(a as u128, b);
        a = b;
        b = r;
    }
    a
}

/// Rabin's irreducibility test for a GF(2) polynomial of degree `d`.
///
/// `P` is irreducible iff `x^(2^d) ≡ x (mod P)` and, for every prime
/// divisor `q` of `d`, `gcd(x^(2^(d/q)) − x, P) = 1`.
pub fn is_irreducible(p: u64) -> bool {
    let Some(d) = degree(p as u128) else { return false };
    if d == 0 {
        return false;
    }
    // x^(2^d) ≡ x (mod p)?
    let x = pmod(0b10, p);
    if x_pow_pow2_mod(d, p) != x {
        return false;
    }
    for q in prime_divisors(d) {
        let t = x_pow_pow2_mod(d / q, p) ^ x; // x^(2^(d/q)) − x (== xor over GF(2))
        if pgcd(t, p) != 1 {
            return false;
        }
    }
    true
}

/// The distinct prime divisors of `n`.
fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        if n % d == 0 {
            out.push(d);
            while n % d == 0 {
                n /= d;
            }
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// Direct (non-rolling) Rabin fingerprint of `bytes` modulo `p`:
/// the byte string interpreted MSB-first as a GF(2) polynomial, reduced.
///
/// Used as the reference implementation in tests of the rolling variant.
pub fn direct_fingerprint(bytes: &[u8], p: u64) -> u64 {
    let mut fp: u64 = 0;
    for &b in bytes {
        // fp = (fp * x^8 + b) mod p, the slow schoolbook way.
        let widened = ((fp as u128) << 8) | b as u128;
        fp = pmod(widened, p);
    }
    fp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_basics() {
        assert_eq!(degree(0), None);
        assert_eq!(degree(1), Some(0));
        assert_eq!(degree(0b10), Some(1));
        assert_eq!(degree(1 << 53), Some(53));
    }

    #[test]
    fn clmul_small_cases() {
        // (x + 1)(x + 1) = x^2 + 1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), 0b101);
        // x * (x^2 + x) = x^3 + x^2
        assert_eq!(clmul(0b10, 0b110), 0b1100);
        assert_eq!(clmul(0, 0b1111), 0);
    }

    #[test]
    fn pmod_reduces_below_modulus_degree() {
        let m = 0b1011; // x^3 + x + 1 (irreducible)
        for a in 0u64..64 {
            let r = pmod(a as u128, m);
            assert!(degree(r as u128).is_none_or(|d| d < 3));
        }
    }

    #[test]
    fn mulmod_field_identities() {
        let m = 0b1011; // GF(8)
        for a in 1u64..8 {
            assert_eq!(mulmod(a, 1, m), a);
            // Every nonzero element has order dividing 7 in GF(8)*.
            let mut acc = 1u64;
            for _ in 0..7 {
                acc = mulmod(acc, a, m);
            }
            assert_eq!(acc, 1, "a={a}");
        }
    }

    #[test]
    fn known_irreducibles() {
        // Classic small irreducible polynomials over GF(2).
        for &p in &[0b10u64, 0b11, 0b111, 0b1011, 0b1101, 0b10011, 0x11B /* AES poly, deg 8 */] {
            assert!(is_irreducible(p), "{p:#b} should be irreducible");
        }
    }

    #[test]
    fn known_reducibles() {
        // x^2 (= x*x), x^2+x (= x(x+1)), x^4+1 (= (x+1)^4), constants.
        for &p in &[0b100u64, 0b110, 0b10001, 0b1, 0b0] {
            assert!(!is_irreducible(p), "{p:#b} should be reducible");
        }
    }

    #[test]
    fn default_poly_is_irreducible() {
        assert!(is_irreducible(crate::DEFAULT_POLY));
        assert_eq!(degree(crate::DEFAULT_POLY as u128), Some(53));
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        // x and x+1 are coprime.
        assert_eq!(pgcd(0b10, 0b11), 1);
        // x^2+x shares factor x with x.
        assert_eq!(pgcd(0b110, 0b10), 0b10);
    }

    mod prop {
        use super::*;
        use proptest::prelude::*;

        const M: u64 = crate::DEFAULT_POLY;

        proptest! {
            /// GF(2^53) multiplication is commutative and associative, and
            /// distributes over xor (field axioms the tables rely on).
            #[test]
            fn field_axioms(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                let (a, b, c) = (pmod(a as u128, M), pmod(b as u128, M), pmod(c as u128, M));
                prop_assert_eq!(mulmod(a, b, M), mulmod(b, a, M));
                prop_assert_eq!(mulmod(mulmod(a, b, M), c, M), mulmod(a, mulmod(b, c, M), M));
                prop_assert_eq!(
                    mulmod(a, b ^ c, M),
                    mulmod(a, b, M) ^ mulmod(a, c, M)
                );
            }

            /// pmod is idempotent and bounded by the modulus degree.
            #[test]
            fn pmod_properties(a in any::<u128>()) {
                let r = pmod(a, M);
                prop_assert_eq!(pmod(r as u128, M), r);
                prop_assert!(degree(r as u128).is_none_or(|d| d < 53));
            }

            /// gcd divides both arguments (checked by re-reduction).
            #[test]
            fn gcd_divides(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
                let g = pgcd(a, b);
                prop_assert!(g != 0);
                // g | a and g | b  ⇔  a mod g == 0 and b mod g == 0.
                prop_assert_eq!(pmod(a as u128, g), 0);
                prop_assert_eq!(pmod(b as u128, g), 0);
            }
        }
    }

    #[test]
    fn direct_fingerprint_matches_manual() {
        let p = 0b1011u64; // degree 3
                           // One byte: fp = byte mod p.
        assert_eq!(direct_fingerprint(&[0b101], p), pmod(0b101, p));
        // Two bytes: fp = (b0 * x^8 + b1) mod p.
        let manual = pmod(((0b1u128) << 8) | 0b1, p);
        assert_eq!(direct_fingerprint(&[1, 1], p), manual);
    }
}
