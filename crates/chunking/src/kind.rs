//! First-class chunker selection: [`ChunkerKind`] names an algorithm,
//! [`AnyChunker`] is the runtime-dispatched instance engines embed.
//!
//! The kind is what flows through configuration: `--chunker
//! rabin|tttd|fixed|fastcdc|ae` on the CLI and daemon, a field in
//! `EngineConfig`, and a persisted entry in store metadata so re-backups
//! and restores keep cutting the same boundaries the store was built with.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::{
    AeChunker, Chunker, FastCdcChunker, FixedChunker, ParamError, RabinChunker, TttdChunker,
};

/// The selectable chunking algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChunkerKind {
    /// LBFS-style Rabin-fingerprint CDC (the paper's base chunker).
    Rabin,
    /// Two-Threshold Two-Divisor CDC with backup cuts.
    Tttd,
    /// Fixed-size partitioning (FSP).
    Fixed,
    /// Gear-hash FastCDC with normalized chunking and the SWAR scanner.
    FastCdc,
    /// Asymmetric Extremum (hash-free local-maximum) CDC.
    Ae,
}

impl ChunkerKind {
    /// Every kind, in CLI presentation order.
    pub const ALL: [ChunkerKind; 5] = [
        ChunkerKind::Rabin,
        ChunkerKind::Tttd,
        ChunkerKind::Fixed,
        ChunkerKind::FastCdc,
        ChunkerKind::Ae,
    ];

    /// The CLI/store-metadata spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            ChunkerKind::Rabin => "rabin",
            ChunkerKind::Tttd => "tttd",
            ChunkerKind::Fixed => "fixed",
            ChunkerKind::FastCdc => "fastcdc",
            ChunkerKind::Ae => "ae",
        }
    }

    /// Builds the chunker at the given expected chunk size (`ECS`).
    pub fn build(&self, avg: usize) -> Result<AnyChunker, ParamError> {
        Ok(match self {
            ChunkerKind::Rabin => AnyChunker::Rabin(RabinChunker::with_avg(avg)?),
            ChunkerKind::Tttd => AnyChunker::Tttd(TttdChunker::with_avg(avg)?),
            ChunkerKind::Fixed => {
                if avg == 0 {
                    return Err(ParamError::ZeroMin);
                }
                AnyChunker::Fixed(FixedChunker::new(avg))
            }
            ChunkerKind::FastCdc => AnyChunker::FastCdc(FastCdcChunker::with_avg(avg)?),
            ChunkerKind::Ae => AnyChunker::Ae(AeChunker::with_avg(avg)?),
        })
    }
}

impl Default for ChunkerKind {
    /// Rabin is the paper's base chunker and the pre-existing behaviour of
    /// every engine, so it stays the default.
    fn default() -> Self {
        ChunkerKind::Rabin
    }
}

impl fmt::Display for ChunkerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error for an unrecognised `--chunker` value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownChunker(pub String);

impl fmt::Display for UnknownChunker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown chunker `{}` (expected rabin|tttd|fixed|fastcdc|ae)", self.0)
    }
}

impl std::error::Error for UnknownChunker {}

impl FromStr for ChunkerKind {
    type Err = UnknownChunker;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChunkerKind::ALL
            .into_iter()
            .find(|k| k.as_str() == s)
            .ok_or_else(|| UnknownChunker(s.to_string()))
    }
}

/// A concrete chunker instance behind a [`ChunkerKind`]-shaped enum.
///
/// Enum dispatch keeps the type `Clone + Send + Sync` without an
/// allocation or a `dyn` indirection on the per-chunk hot path.
#[derive(Clone)]
pub enum AnyChunker {
    /// See [`RabinChunker`].
    Rabin(RabinChunker),
    /// See [`TttdChunker`].
    Tttd(TttdChunker),
    /// See [`FixedChunker`].
    Fixed(FixedChunker),
    /// See [`FastCdcChunker`].
    FastCdc(FastCdcChunker),
    /// See [`AeChunker`].
    Ae(AeChunker),
}

impl AnyChunker {
    /// Which algorithm this instance runs.
    pub fn kind(&self) -> ChunkerKind {
        match self {
            AnyChunker::Rabin(_) => ChunkerKind::Rabin,
            AnyChunker::Tttd(_) => ChunkerKind::Tttd,
            AnyChunker::Fixed(_) => ChunkerKind::Fixed,
            AnyChunker::FastCdc(_) => ChunkerKind::FastCdc,
            AnyChunker::Ae(_) => ChunkerKind::Ae,
        }
    }

    fn inner(&self) -> &dyn Chunker {
        match self {
            AnyChunker::Rabin(c) => c,
            AnyChunker::Tttd(c) => c,
            AnyChunker::Fixed(c) => c,
            AnyChunker::FastCdc(c) => c,
            AnyChunker::Ae(c) => c,
        }
    }
}

impl Chunker for AnyChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        self.inner().next_cut(data, start)
    }

    fn expected_chunk_size(&self) -> usize {
        self.inner().expected_chunk_size()
    }

    fn max_chunk_size(&self) -> usize {
        self.inner().max_chunk_size()
    }

    fn cut_points(&self, data: &[u8]) -> Vec<usize> {
        self.inner().cut_points(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_kind() {
        for kind in ChunkerKind::ALL {
            assert_eq!(kind.as_str().parse::<ChunkerKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!("gzip".parse::<ChunkerKind>().is_err());
    }

    #[test]
    fn serde_round_trips_every_kind() {
        for kind in ChunkerKind::ALL {
            let json = serde_json::to_string(&kind).unwrap();
            let back: ChunkerKind = serde_json::from_str(&json).unwrap();
            assert_eq!(back, kind);
        }
    }

    #[test]
    fn build_produces_matching_kind() {
        for kind in ChunkerKind::ALL {
            let chunker = kind.build(1024).unwrap();
            assert_eq!(chunker.kind(), kind);
            assert_eq!(chunker.expected_chunk_size(), 1024);
            assert!(chunker.max_chunk_size() >= 1024);
        }
    }

    #[test]
    fn build_rejects_bad_avg() {
        for kind in ChunkerKind::ALL {
            assert!(kind.build(0).is_err(), "{kind} accepted avg 0");
        }
        // Power-of-two applies to the CDC family only; Fixed takes any size.
        assert!(ChunkerKind::Rabin.build(3000).is_err());
        assert!(ChunkerKind::Fixed.build(3000).is_ok());
    }
}
