//! The LBFS-style min/avg/max content-defined chunker (the paper's base
//! chunker, described in §II as "the Rabin Fingerprint chunking algorithm").

use std::sync::Arc;

use crate::params::ChunkerParams;
use crate::rabin::{RabinFingerprint, RabinTables};
use crate::Chunker;

/// Content-defined chunker using a rolling Rabin fingerprint.
///
/// ```
/// use mhd_chunking::{Chunker, RabinChunker};
///
/// let chunker = RabinChunker::with_avg(1024).unwrap();
/// let data = vec![42u8; 10_000];
/// let spans = chunker.spans(&data);
/// assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
/// ```
///
/// A position is a cut point when the fingerprint of the trailing window
/// matches the configured pattern and the current chunk is at least `min`
/// bytes long; a cut is forced at `max` bytes. Positions below `min` are
/// skipped entirely (the fingerprint is warmed over the `window` bytes
/// preceding the first testable position), which is the standard
/// optimisation and changes nothing semantically because the fingerprint
/// depends only on the trailing window.
#[derive(Clone)]
pub struct RabinChunker {
    params: ChunkerParams,
    tables: Arc<RabinTables>,
}

impl RabinChunker {
    /// Creates a chunker; panics only via [`ChunkerParams::validate`] being
    /// violated, which the constructor checks and returns as an error.
    pub fn new(params: ChunkerParams) -> Result<Self, crate::ParamError> {
        params.validate()?;
        Ok(RabinChunker { params, tables: RabinTables::default_with_window(params.window) })
    }

    /// Convenience constructor from an expected chunk size.
    pub fn with_avg(avg: usize) -> Result<Self, crate::ParamError> {
        Self::new(ChunkerParams::with_avg(avg)?)
    }

    /// The configured parameters.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }
}

impl Chunker for RabinChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        let p = &self.params;
        let remaining = data.len() - start;
        if remaining <= p.min {
            return data.len();
        }
        let limit = remaining.min(p.max); // max chunk length from here
        let mask = p.mask();
        let magic = p.magic();

        // Warm the fingerprint over the `window` bytes preceding the first
        // testable position (position start+min is the first allowed cut;
        // its window covers [start+min-window, start+min)).
        let mut fp = RabinFingerprint::new(self.tables.clone());
        let first_test = start + p.min;
        for &b in &data[first_test - p.window..first_test] {
            fp.roll(b);
        }
        if fp.value() & mask == magic {
            return first_test;
        }
        for (i, &b) in data[first_test..start + limit].iter().enumerate() {
            fp.roll(b);
            if fp.value() & mask == magic {
                return first_test + i + 1;
            }
        }
        start + limit
    }

    fn expected_chunk_size(&self) -> usize {
        self.params.avg
    }

    fn max_chunk_size(&self) -> usize {
        self.params.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.random()).collect()
    }

    #[test]
    fn average_size_is_plausible() {
        let avg = 1024usize;
        let chunker = RabinChunker::with_avg(avg).unwrap();
        let data = random_data(2_000_000, 2);
        let n = chunker.cut_points(&data).len();
        let measured = data.len() / n;
        // Truncated-geometric mean lands well within 2x of ECS.
        assert!(
            measured > avg / 2 && measured < avg * 2,
            "measured avg {measured} vs expected {avg}"
        );
    }

    #[test]
    fn identical_suffix_realigns_after_prefix_insert() {
        // The content-defined property that defeats boundary shifting:
        // inserting bytes at the front only disturbs boundaries near the
        // insertion; later cut points realign (same absolute content).
        let chunker = RabinChunker::with_avg(512).unwrap();
        let data = random_data(100_000, 4);
        let mut shifted = random_data(100, 5);
        shifted.extend_from_slice(&data);

        let cuts_a: Vec<usize> = chunker.cut_points(&data);
        let cuts_b: Vec<usize> = chunker.cut_points(&shifted).iter().map(|c| c - 100).collect();

        // Compare boundary sets over the common tail; most should coincide.
        let set_a: std::collections::HashSet<_> = cuts_a.iter().copied().collect();
        let tail_b: Vec<_> = cuts_b.iter().filter(|&&c| c >= 10_000).collect();
        let realigned = tail_b.iter().filter(|&&&c| set_a.contains(&c)).count();
        assert!(
            realigned * 10 >= tail_b.len() * 9,
            "only {realigned}/{} boundaries realigned",
            tail_b.len()
        );
    }

    #[test]
    fn uniform_data_does_not_degenerate() {
        // All-zero data yields fingerprint 0 everywhere after warmup; the
        // nonzero magic means we always cut at max, never at min.
        let chunker = RabinChunker::with_avg(512).unwrap();
        let data = vec![0u8; 100_000];
        let spans = chunker.spans(&data);
        let p = chunker.params();
        for s in &spans[..spans.len() - 1] {
            assert_eq!(s.len, p.max);
        }
    }

    #[test]
    fn short_inputs() {
        let chunker = RabinChunker::with_avg(512).unwrap();
        assert!(chunker.cut_points(&[]).is_empty());
        for len in [1usize, 10, 127, 128, 129] {
            let data = random_data(len, len as u64);
            let spans = chunker.spans(&data);
            assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), len);
        }
    }

    // Tiling, bound, determinism, and streaming properties are covered for
    // every chunker (this one included) by the parameterized matrix suite
    // in `crate::matrix`.
}
