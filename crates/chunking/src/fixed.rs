//! Fixed-size partitioning (FSP), as used by Venti \[1\] and OceanStore \[2\].
//!
//! Included as the boundary-shifting strawman: a one-byte insertion at the
//! start of a stream changes *every* subsequent fixed-size block, which is
//! exactly the failure mode content-defined chunking exists to avoid. The
//! workload crate's tests use it to demonstrate that effect, and Lee &
//! Park-style adaptive schemes can select it for low-power devices.

use crate::Chunker;

/// Chunker that cuts every `size` bytes unconditionally.
#[derive(Debug, Clone, Copy)]
pub struct FixedChunker {
    size: usize,
}

impl FixedChunker {
    /// Creates a fixed-size chunker.
    ///
    /// # Panics
    /// Panics if `size == 0` (a programmer error in fixed configuration).
    pub fn new(size: usize) -> Self {
        assert!(size > 0, "chunk size must be positive");
        FixedChunker { size }
    }

    /// The fixed block size.
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Chunker for FixedChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        // Boundaries stay aligned to absolute multiples of `size` so that
        // chaining from 0 reproduces `cut_points` exactly.
        ((start / self.size + 1) * self.size).min(data.len())
    }

    fn cut_points(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts: Vec<usize> = (self.size..=data.len()).step_by(self.size).collect();
        if data.len() % self.size != 0 {
            cuts.push(data.len());
        }
        cuts
    }

    fn expected_chunk_size(&self) -> usize {
        self.size
    }

    fn max_chunk_size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_multiple() {
        let spans = FixedChunker::new(4).spans(&[0u8; 12]);
        assert_eq!(spans.len(), 3);
        assert!(spans.iter().all(|s| s.len == 4));
    }

    #[test]
    fn trailing_partial_block() {
        let spans = FixedChunker::new(5).spans(&[0u8; 12]);
        assert_eq!(spans.iter().map(|s| s.len).collect::<Vec<_>>(), vec![5, 5, 2]);
    }

    #[test]
    fn input_shorter_than_block() {
        let spans = FixedChunker::new(100).spans(&[0u8; 3]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].len, 3);
    }

    #[test]
    fn empty_input() {
        assert!(FixedChunker::new(8).cut_points(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = FixedChunker::new(0);
    }

    proptest! {
        #[test]
        fn prop_tiles(len in 0usize..10_000, size in 1usize..512) {
            let data = vec![0u8; len];
            let spans = FixedChunker::new(size).spans(&data);
            prop_assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), len);
            for s in &spans {
                prop_assert!(s.len <= size);
            }
        }
    }
}
