//! FastCDC-style gear-hash chunker with normalized chunking.
//!
//! FastCDC (Xia et al., ATC'16) replaces the Rabin fingerprint with the
//! much cheaper *gear* hash — one shift and one table XOR per byte — and
//! reshapes the chunk-size distribution with *normalized chunking*: before
//! the expected-size point the cut test uses a stricter mask (fewer cuts,
//! pushing sizes up toward `avg`), after it a looser mask (more cuts,
//! pulling sizes back down before the hard `max` bound). The result is a
//! tighter size distribution around `ECS` with far fewer forced cuts than
//! the plain geometric chunker, at a fraction of the per-byte cost.
//!
//! This implementation uses the XOR-gear recurrence `h' = (h << 1) ^
//! GEAR[b]` (GF(2)-linear, window limited to the trailing 64 bytes by the
//! shift) and scans with whichever kernel [`crate::simd::best_scan`]
//! selects — the SWAR wide-lane scanner when the build's codegen
//! vectorizes it, the byte-at-a-time loop otherwise. The two are
//! byte-identical, so the selection never changes chunk boundaries;
//! [`FastCdcChunker::next_cut_scalar`] and
//! [`FastCdcChunker::cut_points_swar`] keep both kernels individually
//! reachable so benchmarks and the matrix property suite can pin the
//! identity.

use crate::params::ChunkerParams;
use crate::simd::{self, gear_table};
use crate::Chunker;

/// How many mask bits normalization adds (before `avg`) or removes (after).
const NORM_BITS: u32 = 2;

/// Gear warmup length: the hash state only retains the trailing 64 bytes,
/// so warming over `min(64, min)` bytes preceding the first testable
/// position makes every cut decision purely content-defined while staying
/// inside the current chunk (streamed inputs never see earlier bytes).
const WARMUP: usize = 64;

/// Top-`bits` mask (gear hashes concentrate their best mixing in the high
/// bits because every older byte has been shifted upward).
fn top_mask(bits: u32) -> u64 {
    !0u64 << (64 - bits.clamp(1, 63))
}

/// Content-defined chunker using the gear hash with FastCDC-style
/// normalized chunking and a SWAR vectorized scanner.
///
/// ```
/// use mhd_chunking::{Chunker, FastCdcChunker};
///
/// let chunker = FastCdcChunker::with_avg(1024).unwrap();
/// let data = vec![42u8; 10_000];
/// let spans = chunker.spans(&data);
/// assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
/// ```
#[derive(Clone)]
pub struct FastCdcChunker {
    params: ChunkerParams,
    /// Stricter mask used for cut positions up to `start + avg`.
    mask_strict: u64,
    /// Looser mask used past the normalization point.
    mask_loose: u64,
}

impl FastCdcChunker {
    /// Creates a chunker from validated parameters.
    pub fn new(params: ChunkerParams) -> Result<Self, crate::ParamError> {
        params.validate()?;
        let bits = (params.avg as u64).trailing_zeros();
        Ok(FastCdcChunker {
            params,
            mask_strict: top_mask(bits + NORM_BITS),
            mask_loose: top_mask(bits.saturating_sub(NORM_BITS)),
        })
    }

    /// Convenience constructor from an expected chunk size.
    pub fn with_avg(avg: usize) -> Result<Self, crate::ParamError> {
        Self::new(ChunkerParams::with_avg(avg)?)
    }

    /// The configured parameters.
    pub fn params(&self) -> ChunkerParams {
        self.params
    }

    /// The two-phase normalized scan, parameterized over the scan kernel so
    /// the SWAR and scalar paths share every masking decision.
    fn next_cut_with(&self, data: &[u8], start: usize, scan: simd::ScanFn) -> usize {
        let p = &self.params;
        let remaining = data.len() - start;
        if remaining <= p.min {
            return data.len();
        }
        let limit = start + remaining.min(p.max);
        let gear = gear_table();

        // Warm the hash over the bytes preceding the first testable cut.
        let first_test = start + p.min;
        let mut h = 0u64;
        for &b in &data[first_test - WARMUP.min(p.min)..first_test] {
            h = simd::gear_roll(gear, h, b);
        }
        if h & self.mask_strict == 0 {
            return first_test;
        }

        // Phase 1: strict mask up to the normalization point at `avg`.
        let normal = limit.min(start + p.avg);
        let (h, cut) = scan(gear, data, h, first_test, normal, self.mask_strict);
        if let Some(cut) = cut {
            return cut;
        }
        // Phase 2: loose mask from there to the hard bound.
        let (_, cut) = scan(gear, data, h, normal, limit, self.mask_loose);
        cut.unwrap_or(limit)
    }

    /// Byte-at-a-time reference path; byte-identical to the SWAR kernel.
    pub fn next_cut_scalar(&self, data: &[u8], start: usize) -> usize {
        self.next_cut_with(data, start, simd::scan_scalar)
    }

    /// All cut points via a specific scan kernel.
    fn cut_points_with(&self, data: &[u8], scan: simd::ScanFn) -> Vec<usize> {
        let mut cuts = Vec::with_capacity(data.len() / self.params.avg + 1);
        let mut start = 0usize;
        while start < data.len() {
            let end = self.next_cut_with(data, start, scan);
            debug_assert!(end > start);
            cuts.push(end);
            start = end;
        }
        cuts
    }

    /// All cut points via the scalar reference path (for benchmarks and
    /// identity tests).
    pub fn cut_points_scalar(&self, data: &[u8]) -> Vec<usize> {
        self.cut_points_with(data, simd::scan_scalar)
    }

    /// All cut points via the SWAR kernel regardless of what calibration
    /// selected (for benchmarks and identity tests).
    pub fn cut_points_swar(&self, data: &[u8]) -> Vec<usize> {
        self.cut_points_with(data, simd::scan_swar)
    }
}

impl Chunker for FastCdcChunker {
    fn next_cut(&self, data: &[u8], start: usize) -> usize {
        self.next_cut_with(data, start, simd::best_scan())
    }

    fn expected_chunk_size(&self) -> usize {
        self.params.avg
    }

    fn max_chunk_size(&self) -> usize {
        self.params.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_data(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn average_size_is_plausible() {
        let avg = 1024usize;
        let chunker = FastCdcChunker::with_avg(avg).unwrap();
        let data = random_data(2_000_000, 2);
        let n = chunker.cut_points(&data).len();
        let measured = data.len() / n;
        assert!(
            measured > avg / 2 && measured < avg * 2,
            "measured avg {measured} vs expected {avg}"
        );
    }

    #[test]
    fn normalization_tightens_the_distribution() {
        // Relative to the plain geometric chunker, normalized chunking
        // should produce fewer hard `max` cuts and fewer near-`min` chunks
        // on random data.
        let chunker = FastCdcChunker::with_avg(1024).unwrap();
        let rabin = crate::RabinChunker::with_avg(1024).unwrap();
        let data = random_data(4_000_000, 9);
        let p = chunker.params();
        let hard = |spans: &[crate::Span]| spans.iter().filter(|s| s.len == p.max).count();
        assert!(hard(&chunker.spans(&data)) <= hard(&rabin.spans(&data)));
    }

    #[test]
    fn identical_suffix_realigns_after_prefix_insert() {
        let chunker = FastCdcChunker::with_avg(512).unwrap();
        let data = random_data(100_000, 4);
        let mut shifted = random_data(100, 5);
        shifted.extend_from_slice(&data);

        let cuts_a: Vec<usize> = chunker.cut_points(&data);
        let cuts_b: Vec<usize> = chunker.cut_points(&shifted).iter().map(|c| c - 100).collect();

        let set_a: std::collections::HashSet<_> = cuts_a.iter().copied().collect();
        let tail_b: Vec<_> = cuts_b.iter().filter(|&&c| c >= 10_000).collect();
        let realigned = tail_b.iter().filter(|&&&c| set_a.contains(&c)).count();
        assert!(
            realigned * 10 >= tail_b.len() * 9,
            "only {realigned}/{} boundaries realigned",
            tail_b.len()
        );
    }

    #[test]
    fn tiny_params_are_accepted() {
        for avg in [2usize, 4, 8] {
            let chunker = FastCdcChunker::with_avg(avg).unwrap();
            let data = random_data(4_096, avg as u64);
            let spans = chunker.spans(&data);
            assert_eq!(spans.iter().map(|s| s.len).sum::<usize>(), data.len());
        }
    }
}
