//! Chunk-size distribution statistics.
//!
//! The cut-point test fires with probability `1/avg`, so CDC chunk sizes
//! follow a geometric distribution truncated to `[min, max]` — the shape
//! behind the paper's granularity arguments (`ECS` is a *mean*, not a
//! size) and behind TTTD's motivation (hard cuts at `max` pile mass onto
//! one bucket). [`SizeStats`] summarises any chunker's output for tests
//! and the `dataset` experiment binary.

use crate::{Chunker, Span};

/// Summary statistics over observed chunk sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct SizeStats {
    /// Chunks observed.
    pub count: u64,
    /// Total bytes covered.
    pub total_bytes: u64,
    /// Smallest chunk.
    pub min: usize,
    /// Largest chunk.
    pub max: usize,
    /// Mean chunk size.
    pub mean: f64,
    /// Median (p50).
    pub p50: usize,
    /// 90th percentile.
    pub p90: usize,
    /// 99th percentile.
    pub p99: usize,
    /// Fraction of chunks at exactly the configured maximum (hard cuts).
    pub at_max_fraction: f64,
}

impl SizeStats {
    /// Computes statistics from spans; `configured_max` identifies hard
    /// cuts (pass 0 when there is no maximum).
    pub fn from_spans(spans: &[Span], configured_max: usize) -> Option<SizeStats> {
        if spans.is_empty() {
            return None;
        }
        let mut sizes: Vec<usize> = spans.iter().map(|s| s.len).collect();
        sizes.sort_unstable();
        let count = sizes.len() as u64;
        let total_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        let pct = |p: f64| sizes[((count as f64 - 1.0) * p) as usize];
        let at_max = sizes.iter().filter(|&&s| s == configured_max).count();
        Some(SizeStats {
            count,
            total_bytes,
            min: sizes[0],
            max: *sizes.last().expect("non-empty"),
            mean: total_bytes as f64 / count as f64,
            p50: pct(0.5),
            p90: pct(0.9),
            p99: pct(0.99),
            at_max_fraction: at_max as f64 / count as f64,
        })
    }

    /// Convenience: chunk `data` with `chunker` and summarise.
    pub fn measure<C: Chunker>(
        chunker: &C,
        data: &[u8],
        configured_max: usize,
    ) -> Option<SizeStats> {
        Self::from_spans(&chunker.spans(data), configured_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedChunker, RabinChunker};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut v = vec![0u8; len];
        rng.fill_bytes(&mut v);
        v
    }

    #[test]
    fn empty_input_yields_none() {
        let c = FixedChunker::new(8);
        assert!(SizeStats::measure(&c, &[], 8).is_none());
    }

    #[test]
    fn fixed_chunker_is_degenerate() {
        let c = FixedChunker::new(1000);
        let data = random(10_000, 1);
        let s = SizeStats::measure(&c, &data, 1000).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!((s.min, s.max, s.p50), (1000, 1000, 1000));
        assert_eq!(s.at_max_fraction, 1.0);
        assert_eq!(s.total_bytes, 10_000);
    }

    #[test]
    fn cdc_sizes_look_truncated_geometric() {
        let chunker = RabinChunker::with_avg(1024).unwrap();
        let p = chunker.params();
        let data = random(4 << 20, 2);
        let s = SizeStats::measure(&chunker, &data, p.max).unwrap();
        // Mean near ECS (within 2x), median below mean (right-skewed),
        // and few chunks at the hard maximum on random data.
        assert!(s.mean > 512.0 && s.mean < 2048.0, "mean {}", s.mean);
        assert!((s.p50 as f64) < s.mean * 1.1, "p50 {} vs mean {}", s.p50, s.mean);
        assert!(s.at_max_fraction < 0.1, "at_max {}", s.at_max_fraction);
        assert!(s.p90 <= p.max && s.p99 <= p.max);
        assert_eq!(s.total_bytes, 4 << 20);
    }

    #[test]
    fn low_entropy_data_piles_on_max() {
        let chunker = RabinChunker::with_avg(1024).unwrap();
        let p = chunker.params();
        let data = vec![0u8; 1 << 20];
        let s = SizeStats::measure(&chunker, &data, p.max).unwrap();
        assert!(s.at_max_fraction > 0.9, "zeros must hard-cut: {}", s.at_max_fraction);
    }

    #[test]
    fn percentiles_are_ordered() {
        let chunker = RabinChunker::with_avg(512).unwrap();
        let data = random(1 << 20, 3);
        let s = SizeStats::measure(&chunker, &data, chunker.params().max).unwrap();
        assert!(s.min <= s.p50 && s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }
}
