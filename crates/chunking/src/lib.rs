//! Content-defined chunking for the `mhd-dedup` workspace.
//!
//! The paper's chunker is the classic Rabin-fingerprint sliding-window
//! scheme from LBFS \[4\]: a fingerprint is computed at every byte position
//! over a small trailing window, and a position is a *cut point* when the
//! fingerprint matches a predefined pattern and the chunk is longer than a
//! lower bound, or unconditionally when the chunk reaches an upper bound.
//! This crate implements:
//!
//! * [`poly`] — carry-less GF(2) polynomial arithmetic with an
//!   irreducibility test (Rabin's criterion), used to derive the fingerprint
//!   tables from a provably irreducible modulus,
//! * [`RabinFingerprint`] — the table-driven rolling fingerprint itself,
//! * [`RabinChunker`] — the LBFS-style min/avg/max content-defined chunker
//!   (the paper's base chunker, §II),
//! * [`TttdChunker`] — the Two-Threshold Two-Divisor variant \[3\] that
//!   falls back to a secondary divisor instead of a hard cut at the upper
//!   bound, and
//! * [`FixedChunker`] — fixed-size partitioning (FSP), the Venti/OceanStore
//!   strawman that suffers from boundary shifting, and
//! * [`AdaptiveChunker`] — the Lee & Park \[21\] per-input CDC/FSP
//!   selection for constrained devices.
//!
//! All chunkers implement the [`Chunker`] trait and produce boundaries that
//! exactly tile the input; `concat(chunks) == input` always holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod poly;

mod adaptive;
mod cdc;
mod fixed;
mod params;
mod rabin;
mod stats;
mod stream;
mod tttd;

pub use adaptive::{estimate_entropy, AdaptiveChunker, DeviceProfile, Selected};
pub use cdc::RabinChunker;
pub use fixed::FixedChunker;
pub use params::{ChunkerParams, ParamError, DEFAULT_WINDOW};
pub use rabin::{RabinFingerprint, RabinTables, DEFAULT_POLY};
pub use stats::SizeStats;
pub use stream::StreamChunker;
pub use tttd::TttdChunker;

/// A chunk boundary description: a half-open byte range within one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the chunk within the input.
    pub offset: usize,
    /// Chunk length in bytes (always > 0).
    pub len: usize,
}

impl Span {
    /// Exclusive end offset.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// A content-defined (or fixed) chunking strategy.
///
/// Implementations return the *exclusive end offsets* of every chunk, in
/// increasing order, with the final entry equal to `data.len()`. An empty
/// input produces no cuts.
pub trait Chunker {
    /// Returns the sorted, exclusive end offsets of all chunks of `data`.
    fn cut_points(&self, data: &[u8]) -> Vec<usize>;

    /// Expected (average) chunk size in bytes, used by engines for
    /// parameter scaling (`ECS` in the paper).
    fn expected_chunk_size(&self) -> usize;

    /// Convenience: full [`Span`] list tiling `data`.
    fn spans(&self, data: &[u8]) -> Vec<Span> {
        let cuts = {
            let _timer = mhd_obs::span!("chunking.find_cuts_ns");
            self.cut_points(data)
        };
        let mut spans = Vec::with_capacity(cuts.len());
        let mut start = 0usize;
        let sizes = mhd_obs::histogram!("chunking.chunk_bytes");
        for end in cuts {
            debug_assert!(end > start, "cut points must strictly increase");
            sizes.record((end - start) as u64);
            spans.push(Span { offset: start, len: end - start });
            start = end;
        }
        debug_assert_eq!(start, data.len(), "chunks must tile the input");
        mhd_obs::counter!("chunking.chunks").add(spans.len() as u64);
        spans
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    struct Halver;
    impl Chunker for Halver {
        fn cut_points(&self, data: &[u8]) -> Vec<usize> {
            if data.is_empty() {
                vec![]
            } else if data.len() == 1 {
                vec![1]
            } else {
                vec![data.len() / 2, data.len()]
            }
        }
        fn expected_chunk_size(&self) -> usize {
            0
        }
    }

    #[test]
    fn spans_tile_input() {
        let data = [0u8; 10];
        let spans = Halver.spans(&data);
        assert_eq!(spans, vec![Span { offset: 0, len: 5 }, Span { offset: 5, len: 5 }]);
        assert_eq!(spans.last().unwrap().end(), data.len());
    }

    #[test]
    fn empty_input_no_spans() {
        assert!(Halver.spans(&[]).is_empty());
    }
}
