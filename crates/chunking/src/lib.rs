//! Content-defined chunking for the `mhd-dedup` workspace.
//!
//! The paper's chunker is the classic Rabin-fingerprint sliding-window
//! scheme from LBFS \[4\]: a fingerprint is computed at every byte position
//! over a small trailing window, and a position is a *cut point* when the
//! fingerprint matches a predefined pattern and the chunk is longer than a
//! lower bound, or unconditionally when the chunk reaches an upper bound.
//! This crate implements:
//!
//! * [`poly`] — carry-less GF(2) polynomial arithmetic with an
//!   irreducibility test (Rabin's criterion), used to derive the fingerprint
//!   tables from a provably irreducible modulus,
//! * [`RabinFingerprint`] — the table-driven rolling fingerprint itself,
//! * [`RabinChunker`] — the LBFS-style min/avg/max content-defined chunker
//!   (the paper's base chunker, §II),
//! * [`TttdChunker`] — the Two-Threshold Two-Divisor variant \[3\] that
//!   falls back to a secondary divisor instead of a hard cut at the upper
//!   bound,
//! * [`FixedChunker`] — fixed-size partitioning (FSP), the Venti/OceanStore
//!   strawman that suffers from boundary shifting,
//! * [`AdaptiveChunker`] — the Lee & Park \[21\] per-input CDC/FSP
//!   selection for constrained devices,
//! * [`FastCdcChunker`] — the gear-hash chunker with FastCDC-style
//!   normalized chunking, backed by a SWAR wide-lane cut-point scanner on
//!   stable rust (see [`simd`]), and
//! * [`AeChunker`] — the Asymmetric Extremum chunker, which finds cut
//!   points by local-maximum tracking with no rolling hash at all.
//!
//! Chunker choice is a first-class parameter: [`ChunkerKind`] names each
//! algorithm (`rabin|tttd|fixed|fastcdc|ae`), and [`AnyChunker`] is the
//! concrete dispatch enum engines embed.
//!
//! All chunkers implement the [`Chunker`] trait and produce boundaries that
//! exactly tile the input; `concat(chunks) == input` always holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod poly;
pub mod simd;

mod adaptive;
mod ae;
mod cdc;
mod fastcdc;
mod fixed;
mod kind;
mod params;
mod rabin;
mod stats;
mod stream;
mod tttd;

#[cfg(test)]
mod matrix;

pub use adaptive::{estimate_entropy, AdaptiveChunker, DeviceProfile, Selected};
pub use ae::AeChunker;
pub use cdc::RabinChunker;
pub use fastcdc::FastCdcChunker;
pub use fixed::FixedChunker;
pub use kind::{AnyChunker, ChunkerKind};
pub use params::{ChunkerParams, ParamError, DEFAULT_WINDOW};
pub use rabin::{RabinFingerprint, RabinTables, DEFAULT_POLY};
pub use stats::SizeStats;
pub use stream::StreamChunker;
pub use tttd::TttdChunker;

/// A chunk boundary description: a half-open byte range within one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the chunk within the input.
    pub offset: usize,
    /// Chunk length in bytes (always > 0).
    pub len: usize,
}

impl Span {
    /// Exclusive end offset.
    pub fn end(&self) -> usize {
        self.offset + self.len
    }
}

/// A content-defined (or fixed) chunking strategy.
///
/// Implementations return the *exclusive end offsets* of every chunk, in
/// increasing order, with the final entry equal to `data.len()`. An empty
/// input produces no cuts.
///
/// The trait is object-safe: engines hold `&dyn Chunker` (or the concrete
/// [`AnyChunker`] enum) so the algorithm is a runtime parameter.
pub trait Chunker {
    /// Finds the end of the next chunk starting at `start` within `data`.
    ///
    /// Returns an offset in `(start, data.len()]`, never more than
    /// [`Chunker::max_chunk_size`] past `start`. This is the primitive the
    /// default [`Chunker::cut_points`] loop and [`StreamChunker`] build on;
    /// it is exposed so engines can re-chunk sub-ranges (Bimodal/SubChunk
    /// re-chunking, HHR byte-range splitting) without materialising a
    /// boundary vector.
    fn next_cut(&self, data: &[u8], start: usize) -> usize;

    /// Expected (average) chunk size in bytes, used by engines for
    /// parameter scaling (`ECS` in the paper).
    fn expected_chunk_size(&self) -> usize;

    /// Upper bound on the length of any produced chunk.
    ///
    /// [`StreamChunker`] uses this as its look-ahead horizon: a cut is
    /// final once at least this many bytes are buffered past it.
    fn max_chunk_size(&self) -> usize;

    /// Returns the sorted, exclusive end offsets of all chunks of `data`.
    fn cut_points(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::with_capacity(data.len() / self.expected_chunk_size().max(1) + 1);
        let mut start = 0usize;
        while start < data.len() {
            let end = self.next_cut(data, start);
            debug_assert!(end > start, "next_cut must make progress");
            cuts.push(end);
            start = end;
        }
        cuts
    }

    /// Convenience: full [`Span`] list tiling `data`.
    fn spans(&self, data: &[u8]) -> Vec<Span> {
        let cuts = {
            let _timer = mhd_obs::span!("chunking.find_cuts_ns");
            self.cut_points(data)
        };
        let mut spans = Vec::with_capacity(cuts.len());
        let mut start = 0usize;
        let sizes = mhd_obs::histogram!("chunking.chunk_bytes");
        for end in cuts {
            debug_assert!(end > start, "cut points must strictly increase");
            sizes.record((end - start) as u64);
            spans.push(Span { offset: start, len: end - start });
            start = end;
        }
        debug_assert_eq!(start, data.len(), "chunks must tile the input");
        mhd_obs::counter!("chunking.chunks").add(spans.len() as u64);
        spans
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    struct Halver;
    impl Chunker for Halver {
        fn next_cut(&self, data: &[u8], start: usize) -> usize {
            if start == 0 && data.len() >= 2 {
                data.len() / 2
            } else {
                data.len()
            }
        }
        fn expected_chunk_size(&self) -> usize {
            0
        }
        fn max_chunk_size(&self) -> usize {
            usize::MAX
        }
    }

    #[test]
    fn spans_tile_input() {
        let data = [0u8; 10];
        let spans = Halver.spans(&data);
        assert_eq!(spans, vec![Span { offset: 0, len: 5 }, Span { offset: 5, len: 5 }]);
        assert_eq!(spans.last().unwrap().end(), data.len());
    }

    #[test]
    fn empty_input_no_spans() {
        assert!(Halver.spans(&[]).is_empty());
    }
}
