//! A count-min sketch over chunk hashes.
//!
//! The FBC algorithm (Lu, Jin & Du, MASCOTS'10 — discussed alongside
//! Bimodal and SubChunk throughout the paper's §I–II) re-chunks big chunks
//! selectively "based on the frequency information of chunks estimated
//! from data that have been previously processed". The practical estimator
//! for that is a count-min sketch: fixed memory, one-sided error
//! (estimates never undercount), updates and queries in O(depth).

use mhd_hash::ChunkHash;

/// Fixed-size frequency estimator with one-sided error.
#[derive(Clone)]
pub struct CountMinSketch {
    /// `depth` rows of `width` saturating counters.
    rows: Vec<Vec<u32>>,
    width: usize,
    /// Total updates (for the ε·N error bound).
    updates: u64,
}

impl CountMinSketch {
    /// Creates a sketch with `width` counters per row and `depth` rows.
    ///
    /// Estimation error is at most `2N/width` with probability
    /// `1 − 2^−depth` (N = total updates).
    ///
    /// # Panics
    /// Panics when `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize) -> Self {
        assert!(width > 0, "sketch needs width");
        assert!((1..=8).contains(&depth), "depth must be in 1..=8");
        CountMinSketch { rows: vec![vec![0u32; width]; depth], width, updates: 0 }
    }

    /// Sizes the sketch for an error of about `epsilon·N` using the
    /// standard `width = ⌈e/ε⌉` rule, depth 4.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon must be in (0, 1)");
        Self::new((std::f64::consts::E / epsilon).ceil() as usize, 4)
    }

    #[inline]
    fn index(&self, key: &ChunkHash, row: usize) -> usize {
        // Row-independent positions from the digest's two words
        // (double hashing, like the Bloom filter).
        let h = key.prefix_u64().wrapping_add((row as u64 + 1).wrapping_mul(key.second_u64() | 1));
        (h % self.width as u64) as usize
    }

    /// Adds one occurrence of `key`.
    pub fn add(&mut self, key: &ChunkHash) {
        for row in 0..self.rows.len() {
            let i = self.index(key, row);
            let slot = &mut self.rows[row][i];
            *slot = slot.saturating_add(1);
        }
        self.updates += 1;
    }

    /// Estimated occurrence count of `key` (never less than the truth).
    pub fn estimate(&self, key: &ChunkHash) -> u32 {
        (0..self.rows.len()).map(|row| self.rows[row][self.index(key, row)]).min().unwrap_or(0)
    }

    /// Total updates so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// RAM held by the counter arrays.
    pub fn ram_bytes(&self) -> usize {
        self.rows.len() * self.width * std::mem::size_of::<u32>()
    }
}

impl std::fmt::Debug for CountMinSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CountMinSketch")
            .field("width", &self.width)
            .field("depth", &self.rows.len())
            .field("updates", &self.updates)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;
    use proptest::prelude::*;

    fn key(i: u64) -> ChunkHash {
        sha1(&i.to_le_bytes())
    }

    #[test]
    fn never_undercounts() {
        let mut s = CountMinSketch::new(512, 4);
        for i in 0..200u64 {
            for _ in 0..=(i % 5) {
                s.add(&key(i));
            }
        }
        for i in 0..200u64 {
            assert!(s.estimate(&key(i)) >= (i % 5 + 1) as u32, "key {i}");
        }
    }

    #[test]
    fn heavy_hitter_stands_out() {
        let mut s = CountMinSketch::with_epsilon(0.01);
        for i in 0..5_000u64 {
            s.add(&key(i));
        }
        for _ in 0..500 {
            s.add(&key(999_999));
        }
        let hot = s.estimate(&key(999_999));
        assert!((500..600).contains(&hot), "hot estimate {hot}");
        // A cold key's overcount stays within ~e/width · N.
        let cold = s.estimate(&key(123_456_789));
        assert!(cold < 60, "cold estimate {cold}");
    }

    #[test]
    fn unseen_keys_estimate_near_zero_when_sparse() {
        let mut s = CountMinSketch::new(4096, 4);
        for i in 0..100u64 {
            s.add(&key(i));
        }
        assert_eq!(s.estimate(&key(1_000_000)), 0);
        assert_eq!(s.updates(), 100);
        assert!(s.ram_bytes() >= 4096 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "width")]
    fn zero_width_rejected() {
        let _ = CountMinSketch::new(0, 4);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// One-sided error: estimate(k) >= true_count(k), always.
        #[test]
        fn prop_one_sided(adds in proptest::collection::vec(0u64..64, 1..500)) {
            let mut s = CountMinSketch::new(256, 4);
            let mut truth = std::collections::HashMap::new();
            for a in &adds {
                s.add(&key(*a));
                *truth.entry(*a).or_insert(0u32) += 1;
            }
            for (k, count) in truth {
                prop_assert!(s.estimate(&key(k)) >= count);
            }
        }
    }
}
