//! A Bloom filter keyed by [`ChunkHash`] values.
//!
//! The paper's BF-MHD, Bimodal, and SubChunk implementations all put a
//! 100 MB in-memory Bloom filter (the Data Domain "summary vector" \[12\],
//! \[23\]) in front of on-disk hash lookups: a negative answer proves a hash
//! has never been stored, eliminating the disk query entirely; a positive
//! answer is confirmed on disk. Experiments scale the filter with the input
//! so the false-positive rate matches the paper's regime.
//!
//! The `k` probe positions are derived from the digest by double hashing
//! (`g_i = h1 + i·h2`), using the two independent 64-bit words a SHA-1
//! digest already contains — re-hashing a hash would be wasted work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sketch;

pub use sketch::CountMinSketch;

use mhd_hash::ChunkHash;

/// A fixed-size Bloom filter over [`ChunkHash`] keys.
///
/// ```
/// use mhd_bloom::BloomFilter;
/// use mhd_hash::sha1;
///
/// let mut bf = BloomFilter::with_bytes(4096, 100);
/// bf.insert(&sha1(b"stored chunk"));
/// assert!(bf.contains(&sha1(b"stored chunk"))); // never a false negative
/// assert!(!bf.contains(&sha1(b"never seen")));  // (almost always) negative
/// ```
#[derive(Clone)]
pub struct BloomFilter {
    bits: Vec<u64>,
    /// Number of bits (always a multiple of 64).
    m: u64,
    /// Number of probe positions per key.
    k: u32,
    /// Number of keys inserted.
    inserted: u64,
}

impl BloomFilter {
    /// Creates a filter occupying `bytes` of RAM with `k` probes per key.
    ///
    /// # Panics
    /// Panics when `bytes == 0` or `k == 0` (fixed-configuration errors).
    pub fn with_bytes_and_k(bytes: usize, k: u32) -> Self {
        assert!(bytes > 0, "bloom filter needs at least one byte");
        assert!(k > 0, "bloom filter needs at least one probe");
        let words = bytes.div_ceil(8);
        BloomFilter { bits: vec![0u64; words], m: (words as u64) * 64, k, inserted: 0 }
    }

    /// Creates a filter occupying `bytes`, choosing `k` optimally for an
    /// expected population of `expected_keys` (`k = (m/n)·ln 2`, clamped to
    /// `1..=16`).
    pub fn with_bytes(bytes: usize, expected_keys: u64) -> Self {
        let m = (bytes as f64) * 8.0;
        let n = expected_keys.max(1) as f64;
        let k = ((m / n) * std::f64::consts::LN_2).round().clamp(1.0, 16.0) as u32;
        Self::with_bytes_and_k(bytes, k)
    }

    /// Sizes the filter for a target false-positive probability at the
    /// expected population: `m = −n·ln p / (ln 2)²`.
    pub fn for_fpr(expected_keys: u64, fpr: f64) -> Self {
        assert!(fpr > 0.0 && fpr < 1.0, "fpr must be in (0, 1)");
        let n = expected_keys.max(1) as f64;
        let m_bits = -n * fpr.ln() / (std::f64::consts::LN_2 * std::f64::consts::LN_2);
        let bytes = ((m_bits / 8.0).ceil() as usize).max(8);
        Self::with_bytes(bytes, expected_keys)
    }

    #[inline]
    fn probes(&self, key: &ChunkHash) -> impl Iterator<Item = u64> + '_ {
        let h1 = key.prefix_u64();
        let h2 = key.second_u64() | 1; // odd stride so all positions are hit
        let m = self.m;
        (0..self.k as u64).map(move |i| h1.wrapping_add(i.wrapping_mul(h2)) % m)
    }

    /// Inserts `key`.
    pub fn insert(&mut self, key: &ChunkHash) {
        let m = self.m;
        let k = self.k as u64;
        let h1 = key.prefix_u64();
        let h2 = key.second_u64() | 1;
        for i in 0..k {
            let bit = h1.wrapping_add(i.wrapping_mul(h2)) % m;
            self.bits[(bit / 64) as usize] |= 1u64 << (bit % 64);
        }
        self.inserted += 1;
        mhd_obs::counter!("bloom.inserts").inc();
    }

    /// Membership test: `false` is definitive, `true` may be a false
    /// positive.
    pub fn contains(&self, key: &ChunkHash) -> bool {
        let _timer = mhd_obs::span!("bloom.probe_ns");
        mhd_obs::counter!("bloom.probes").inc();
        let hit = self.probes(key).all(|bit| self.bits[(bit / 64) as usize] >> (bit % 64) & 1 == 1);
        if hit {
            mhd_obs::counter!("bloom.maybe_hits").inc();
        } else {
            mhd_obs::counter!("bloom.negatives").inc();
        }
        hit
    }

    /// RAM occupied by the bit array, in bytes (the paper's Table III-style
    /// accounting).
    pub fn ram_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Number of probe positions per key.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Number of `insert` calls so far.
    pub fn inserted(&self) -> u64 {
        self.inserted
    }

    /// Fraction of bits set, in `[0, 1]`.
    pub fn fill_ratio(&self) -> f64 {
        let set: u64 = self.bits.iter().map(|w| w.count_ones() as u64).sum();
        set as f64 / self.m as f64
    }

    /// Estimated false-positive probability at the current fill:
    /// `fill_ratio ^ k`.
    pub fn estimated_fpr(&self) -> f64 {
        self.fill_ratio().powi(self.k as i32)
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.bits.fill(0);
        self.inserted = 0;
    }

    /// Serialises the filter (header + bit array) for persistence.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        out.extend_from_slice(&self.k.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // reserved
        out.extend_from_slice(&self.inserted.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }

    /// Restores a filter serialised by [`BloomFilter::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Option<Self> {
        if data.len() < 16 || (data.len() - 16) % 8 != 0 || data.len() == 16 {
            return None;
        }
        let k = u32::from_le_bytes(data[0..4].try_into().ok()?);
        if k == 0 {
            return None;
        }
        let inserted = u64::from_le_bytes(data[8..16].try_into().ok()?);
        let bits: Vec<u64> = data[16..]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect();
        let m = (bits.len() as u64) * 64;
        Some(BloomFilter { bits, m, k, inserted })
    }
}

impl std::fmt::Debug for BloomFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BloomFilter")
            .field("bytes", &self.ram_bytes())
            .field("k", &self.k)
            .field("inserted", &self.inserted)
            .field("fill_ratio", &self.fill_ratio())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;
    use proptest::prelude::*;

    fn key(i: u64) -> ChunkHash {
        sha1(&i.to_le_bytes())
    }

    #[test]
    fn no_false_negatives() {
        let mut bf = BloomFilter::with_bytes(1 << 14, 1000);
        for i in 0..1000 {
            bf.insert(&key(i));
        }
        for i in 0..1000 {
            assert!(bf.contains(&key(i)), "false negative for key {i}");
        }
        assert_eq!(bf.inserted(), 1000);
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let bf = BloomFilter::with_bytes(1024, 100);
        assert!(!bf.contains(&key(42)));
        assert_eq!(bf.fill_ratio(), 0.0);
    }

    #[test]
    fn fpr_near_design_point() {
        let n = 10_000u64;
        let mut bf = BloomFilter::for_fpr(n, 0.01);
        for i in 0..n {
            bf.insert(&key(i));
        }
        // Query n fresh keys; expect ≈1% false positives, allow 3x slack.
        let fp = (n..2 * n).filter(|&i| bf.contains(&key(i))).count();
        assert!(fp < (n as usize) * 3 / 100, "false positive count {fp} too high");
        assert!(bf.estimated_fpr() < 0.03);
    }

    #[test]
    fn fill_ratio_grows_monotonically() {
        let mut bf = BloomFilter::with_bytes(4096, 500);
        let mut last = 0.0;
        for i in 0..500 {
            bf.insert(&key(i));
            let f = bf.fill_ratio();
            assert!(f >= last);
            last = f;
        }
        assert!(last > 0.0 && last < 1.0);
    }

    #[test]
    fn clear_resets() {
        let mut bf = BloomFilter::with_bytes(1024, 10);
        bf.insert(&key(1));
        assert!(bf.contains(&key(1)));
        bf.clear();
        assert!(!bf.contains(&key(1)));
        assert_eq!(bf.inserted(), 0);
    }

    #[test]
    fn k_is_clamped_sane() {
        assert_eq!(BloomFilter::with_bytes(8, u64::MAX).k(), 1);
        assert!(BloomFilter::with_bytes(1 << 20, 10).k() <= 16);
    }

    #[test]
    #[should_panic(expected = "at least one byte")]
    fn zero_bytes_rejected() {
        let _ = BloomFilter::with_bytes_and_k(0, 4);
    }

    #[test]
    fn serialisation_round_trip() {
        let mut bf = BloomFilter::with_bytes(4096, 100);
        for i in 0..100 {
            bf.insert(&key(i));
        }
        let bytes = bf.to_bytes();
        let back = BloomFilter::from_bytes(&bytes).expect("valid");
        assert_eq!(back.ram_bytes(), bf.ram_bytes());
        assert_eq!(back.k(), bf.k());
        assert_eq!(back.inserted(), bf.inserted());
        for i in 0..100 {
            assert!(back.contains(&key(i)));
        }
        assert!(BloomFilter::from_bytes(&bytes[..8]).is_none());
        assert!(BloomFilter::from_bytes(&[]).is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Anything inserted is always found (no false negatives), for any
        /// filter geometry.
        #[test]
        fn prop_no_false_negatives(
            keys in proptest::collection::vec(any::<u64>(), 1..200),
            bytes in 64usize..4096,
            k in 1u32..8,
        ) {
            let mut bf = BloomFilter::with_bytes_and_k(bytes, k);
            for &i in &keys { bf.insert(&key(i)); }
            for &i in &keys { prop_assert!(bf.contains(&key(i))); }
        }
    }
}
