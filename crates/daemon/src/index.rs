//! The sharded, shared Hook/hash index and the backend wrapper that
//! keeps it coherent.
//!
//! The engines find duplicate data through on-disk Hook files (hash →
//! Manifest). A daemon serving many concurrent clients also wants to
//! answer "do you already have this chunk?" (`HAVE`) and occupancy
//! queries *without* taking the engine lock, so the daemon mirrors the
//! Hook namespace into [`SharedHookIndex`]: an N-way sharded
//! `RwLock<FxHashMap>` keyed by the hash's first eight bytes.
//!
//! Coherence is structural, not cooperative: [`IndexingBackend`] wraps
//! the real store backend and publishes/forgets index entries on the
//! Hook **write path itself** — every `put(Hook, …)` and
//! `delete(Hook, …)` that reaches disk also reaches the index, whether
//! it came from a backup commit, GC, or recovery rollback. Nothing else
//! in the engine needs to know the index exists.
//!
//! Shard traffic is attributed in the obs snapshot under `shard=N`
//! scopes (`daemon.index_inserts` / `daemon.index_removes`), so a hot
//! shard shows up in `mhd stats --internals` exactly like a hot engine
//! shard does.

use std::sync::Arc;

use bytes::Bytes;
use mhd_hash::{ChunkHash, FxHashMap};
use mhd_store::{Backend, FileKind, ManifestId, RecoveryReport, StoreResult};
use parking_lot::RwLock;

/// A concurrently-readable hash → manifest map, sharded to keep writer
/// contention away from readers.
pub struct SharedHookIndex {
    shards: Vec<RwLock<FxHashMap<ChunkHash, Option<ManifestId>>>>,
}

impl SharedHookIndex {
    /// Creates an index with `shards` shards (coerced to at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        SharedHookIndex { shards: (0..shards).map(|_| RwLock::new(FxHashMap::default())).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, hash: &ChunkHash) -> usize {
        (hash.prefix_u64() % self.shards.len() as u64) as usize
    }

    /// Inserts (or refreshes) a mapping. `manifest` is `None` when only
    /// presence is known — e.g. entries bulk-loaded from Hook *names* at
    /// startup, resolved lazily if anyone needs the target.
    pub fn publish(&self, hash: ChunkHash, manifest: Option<ManifestId>) {
        let shard = self.shard_of(&hash);
        let _scope = mhd_obs::scope!("shard={shard}");
        mhd_obs::counter!("daemon.index_inserts").inc();
        self.shards[shard].write().insert(hash, manifest);
    }

    /// Removes a mapping (its Hook was garbage collected).
    pub fn forget(&self, hash: &ChunkHash) {
        let shard = self.shard_of(hash);
        let _scope = mhd_obs::scope!("shard={shard}");
        mhd_obs::counter!("daemon.index_removes").inc();
        self.shards[shard].write().remove(hash);
    }

    /// Whether `hash` has a Hook — the lock-free-for-the-engine `HAVE`
    /// probe (readers share the shard lock).
    pub fn contains(&self, hash: &ChunkHash) -> bool {
        self.shards[self.shard_of(hash)].read().contains_key(hash)
    }

    /// The manifest mapped to `hash`, if known (`None` inner value means
    /// presence-only).
    pub fn lookup(&self, hash: &ChunkHash) -> Option<Option<ManifestId>> {
        self.shards[self.shard_of(hash)].read().get(hash).copied()
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries per shard, for occupancy/balance reporting.
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.read().len()).collect()
    }
}

/// Staging engines (two-phase commits) probe the shared index as their
/// hook-presence oracle: the whole store's hook population, lock-free,
/// possibly slightly ahead of durable state — exactly the contract
/// [`mhd_core::HookPresence`] documents.
impl mhd_core::HookPresence for SharedHookIndex {
    fn contains(&self, hash: &ChunkHash) -> bool {
        SharedHookIndex::contains(self, hash)
    }
}

/// The hash of a *plain* Hook object name (40 hex chars). Occurrence
/// hooks (`hash-manifest`, SparseIndexing only) are not indexed.
fn plain_hook_hash(name: &str) -> Option<ChunkHash> {
    if name.len() == 40 {
        ChunkHash::from_hex(name).ok()
    } else {
        None
    }
}

/// Manifest id from a 20-byte Hook payload (first 8 bytes, little
/// endian).
fn payload_manifest(data: &[u8]) -> Option<ManifestId> {
    let raw: [u8; 8] = data.get(..8)?.try_into().ok()?;
    Some(ManifestId(u64::from_le_bytes(raw)))
}

/// A [`Backend`] decorator that mirrors Hook writes and deletes into a
/// [`SharedHookIndex`].
///
/// Everything except Hook `put`/`delete` passes straight through, so the
/// wrapped backend's crash-ordering, batching and recovery semantics are
/// untouched; the index is updated only *after* the inner operation
/// succeeds, so it never claims a hook the store does not have.
pub struct IndexingBackend<B> {
    inner: B,
    index: Arc<SharedHookIndex>,
}

impl<B: Backend> IndexingBackend<B> {
    /// Wraps `inner`, publishing Hook mutations to `index`.
    pub fn new(inner: B, index: Arc<SharedHookIndex>) -> Self {
        IndexingBackend { inner, index }
    }

    /// The shared index this backend publishes to.
    pub fn index(&self) -> &Arc<SharedHookIndex> {
        &self.index
    }

    /// The wrapped backend.
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Bulk-loads the index from the Hook names already on disk
    /// (presence-only entries; see [`SharedHookIndex::publish`]). Called
    /// once at daemon open, after recovery rollback.
    pub fn populate_index(&mut self) -> usize {
        let mut loaded = 0usize;
        for name in self.inner.list(FileKind::Hook) {
            if let Some(hash) = plain_hook_hash(&name) {
                self.index.publish(hash, None);
                loaded += 1;
            }
        }
        loaded
    }
}

impl<B: Backend> Backend for IndexingBackend<B> {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.inner.put(kind, name, data)?;
        if kind == FileKind::Hook {
            if let Some(hash) = plain_hook_hash(name) {
                self.index.publish(hash, payload_manifest(data));
            }
        }
        Ok(())
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        self.inner.update(kind, name, data)
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        self.inner.get(kind, name)
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        self.inner.get_range(kind, name, offset, len)
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        self.inner.size_of(kind, name)
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.inner.exists(kind, name)
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        self.inner.count(kind)
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        self.inner.list(kind)
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        self.inner.delete(kind, name)?;
        if kind == FileKind::Hook {
            if let Some(hash) = plain_hook_hash(name) {
                self.index.forget(&hash);
            }
        }
        Ok(())
    }

    fn flush(&mut self) -> StoreResult<()> {
        self.inner.flush()
    }

    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        self.inner.recover()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;
    use mhd_store::MemBackend;

    #[test]
    fn hook_writes_and_deletes_mirror_into_the_index() {
        let index = Arc::new(SharedHookIndex::new(4));
        let mut b = IndexingBackend::new(MemBackend::new(), index.clone());
        let hash = sha1(b"chunk");
        let mut payload = [0u8; 20];
        payload[..8].copy_from_slice(&7u64.to_le_bytes());

        b.put(FileKind::Hook, &hash.to_hex(), &payload).unwrap();
        assert!(index.contains(&hash));
        assert_eq!(index.lookup(&hash), Some(Some(ManifestId(7))));

        b.delete(FileKind::Hook, &hash.to_hex()).unwrap();
        assert!(!index.contains(&hash));
        assert!(index.is_empty());
    }

    #[test]
    fn failed_put_publishes_nothing() {
        let index = Arc::new(SharedHookIndex::new(2));
        let mut b = IndexingBackend::new(MemBackend::new(), index.clone());
        let hash = sha1(b"x");
        b.put(FileKind::Hook, &hash.to_hex(), &[0u8; 20]).unwrap();
        // Second put of the same name fails with AlreadyExists…
        assert!(b.put(FileKind::Hook, &hash.to_hex(), &[1u8; 20]).is_err());
        // …and must not have refreshed the index entry.
        assert_eq!(index.lookup(&hash), Some(Some(ManifestId(0))));
        assert_eq!(index.len(), 1);
    }

    #[test]
    fn non_hook_kinds_are_not_indexed() {
        let index = Arc::new(SharedHookIndex::new(2));
        let mut b = IndexingBackend::new(MemBackend::new(), index.clone());
        b.put(FileKind::DiskChunk, "0000000000000001", b"data").unwrap();
        b.put(FileKind::FileManifest, "t/l/f", b"fm").unwrap();
        assert!(index.is_empty());
    }

    #[test]
    fn populate_loads_plain_names_only() {
        let index = Arc::new(SharedHookIndex::new(3));
        let mut b = IndexingBackend::new(MemBackend::new(), index.clone());
        let h1 = sha1(b"a");
        let h2 = sha1(b"b");
        b.inner_mut().put(FileKind::Hook, &h1.to_hex(), &[0u8; 20]).unwrap();
        // An occurrence-style name must be skipped.
        b.inner_mut()
            .put(FileKind::Hook, &format!("{}-{:016x}", h2.to_hex(), 3), &[0u8; 20])
            .unwrap();
        assert_eq!(b.populate_index(), 1);
        assert_eq!(index.lookup(&h1), Some(None), "presence-only entry");
        assert!(!index.contains(&h2));
    }

    #[test]
    fn occupancy_covers_all_shards() {
        let index = SharedHookIndex::new(4);
        for i in 0..100u32 {
            index.publish(sha1(&i.to_le_bytes()), None);
        }
        let occ = index.occupancy();
        assert_eq!(occ.len(), 4);
        assert_eq!(occ.iter().sum::<usize>(), 100);
        assert_eq!(index.len(), 100);
        // SHA-1 prefixes spread well: no shard may be empty at n=100.
        assert!(occ.iter().all(|&n| n > 0), "{occ:?}");
    }
}
