//! The `mhd serve` socket server: accept loop, connection handlers and
//! orderly shutdown.
//!
//! One thread per connection; each handler owns its connection state (the
//! attached tenant and at most one [`WriteSession`]) and calls into the
//! [`SharedStore`]. Concurrency is the store's problem, not the
//! handler's: commit pipelines run in parallel on per-session staging
//! substrates and only the short publish phase serialises (two-phase
//! commit, DESIGN.md §10), while restores and listings use a lock-free
//! read view — so handler threads genuinely overlap, they don't just
//! queue. Reads use short timeouts so every handler notices the shutdown
//! flag promptly; a connection that drops mid-session gets its session
//! aborted by the handler's cleanup path.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::{DaemonError, DaemonResult};
use crate::protocol::{Request, MAX_LINE_BYTES};
use crate::shared::{DaemonConfig, SharedStore, WriteSession};

/// How long a handler blocks on the socket before re-checking the
/// shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(200);
/// Accept-loop poll interval while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// A running (or ready-to-run) daemon over one [`SharedStore`].
pub struct Daemon {
    store: Arc<SharedStore>,
    shutdown: Arc<AtomicBool>,
}

/// Join handle for a daemon spawned in the background with
/// [`Daemon::spawn`].
pub struct ServeHandle {
    thread: JoinHandle<DaemonResult<()>>,
}

impl ServeHandle {
    /// Waits for the serve loop to finish and returns its outcome.
    pub fn join(self) -> DaemonResult<()> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(DaemonError::State("serve thread panicked".into())),
        }
    }
}

impl Daemon {
    /// Opens the shared store at `root` (running recovery) and prepares a
    /// daemon over it. Nothing listens until [`serve`](Daemon::serve) or
    /// [`spawn`](Daemon::spawn).
    pub fn open(root: &Path, config: DaemonConfig) -> DaemonResult<Daemon> {
        let store = Arc::new(SharedStore::open(root, config)?);
        Ok(Daemon { store, shutdown: Arc::new(AtomicBool::new(false)) })
    }

    /// The shared store (for in-process callers such as tests and
    /// benchmarks).
    pub fn store(&self) -> &Arc<SharedStore> {
        &self.store
    }

    /// Requests shutdown from another thread: the accept loop stops, the
    /// handlers drain, and [`serve`](Daemon::serve) returns after a final
    /// state persist.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Runs the accept loop on a Unix socket at `socket`, blocking until
    /// a client sends `SHUTDOWN` (or the flag from
    /// [`shutdown_flag`](Daemon::shutdown_flag) is raised). The socket
    /// file is removed on exit.
    pub fn serve(self, socket: &Path) -> DaemonResult<()> {
        // A dead daemon may have left its socket file behind; a fresh
        // bind needs the name free. Store-level consistency never depends
        // on the socket file.
        if socket.exists() {
            std::fs::remove_file(socket)
                .map_err(|e| DaemonError::State(format!("remove {}: {e}", socket.display())))?;
        }
        let listener = UnixListener::bind(socket)?;
        listener.set_nonblocking(true)?;

        let mut handlers: Vec<JoinHandle<()>> = Vec::new();
        while !self.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    let store = self.store.clone();
                    let flag = self.shutdown.clone();
                    handlers.push(std::thread::spawn(move || {
                        Connection::new(store, flag, stream).run();
                    }));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) => {
                    self.shutdown.store(true, Ordering::SeqCst);
                    let _ = std::fs::remove_file(socket);
                    return Err(e.into());
                }
            }
        }
        for handler in handlers {
            let _ = handler.join();
        }
        let _ = std::fs::remove_file(socket);
        // Final persist so `mhd stats` on the stopped store is current.
        self.store.persist()
    }

    /// Like [`serve`](Daemon::serve) but on a background thread; returns
    /// once the socket is listening.
    pub fn spawn(self, socket: &Path) -> DaemonResult<ServeHandle> {
        let socket: PathBuf = socket.to_path_buf();
        let target = socket.clone();
        let thread = std::thread::spawn(move || self.serve(&target));
        // Wait (bounded, generous under CPU contention) until the daemon
        // actually accepts connections, so a caller can connect
        // immediately after spawn() returns. Checking that the socket
        // file exists is not enough: bind() creates the file before
        // listen() runs, and a connect inside that window is refused —
        // on a contended box the serve thread can sit preempted there
        // for a while. A successful probe connect (dropped at once; the
        // handler reads EOF and ends) proves the listener is live.
        for _ in 0..3000 {
            if socket.exists() && std::os::unix::net::UnixStream::connect(&socket).is_ok() {
                break;
            }
            if thread.is_finished() {
                // The serve thread died before binding (e.g. bad socket
                // path); surface its error instead of a connect failure.
                return match thread.join() {
                    Ok(Ok(())) => Err(DaemonError::State(format!(
                        "serve exited before binding {}",
                        socket.display()
                    ))),
                    Ok(Err(e)) => Err(e),
                    Err(_) => Err(DaemonError::State("serve thread panicked".into())),
                };
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        Ok(ServeHandle { thread })
    }
}

/// Per-connection handler state.
struct Connection {
    store: Arc<SharedStore>,
    shutdown: Arc<AtomicBool>,
    reader: BufReader<UnixStream>,
    tenant: Option<String>,
    session: Option<WriteSession>,
}

impl Connection {
    fn new(store: Arc<SharedStore>, shutdown: Arc<AtomicBool>, stream: UnixStream) -> Connection {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        Connection { store, shutdown, reader: BufReader::new(stream), tenant: None, session: None }
    }

    fn run(mut self) {
        // Ok(None) and Err both end the loop: disconnect or poisoned socket.
        while let Ok(Some(line)) = self.read_line() {
            if line.is_empty() {
                continue;
            }
            let outcome = match Request::parse(&line) {
                Ok(request) => {
                    let is_shutdown = request == Request::Shutdown;
                    let reply = self.dispatch(request);
                    // RESTORE frames its own reply; an empty string means
                    // the bytes are already on the wire.
                    let sent = if reply.is_empty() { Ok(()) } else { self.send(&reply) };
                    if is_shutdown && reply.starts_with("OK") {
                        self.shutdown.store(true, Ordering::SeqCst);
                        break;
                    }
                    sent
                }
                Err(e) => self.send(&format!("ERR {e}")),
            };
            if outcome.is_err() {
                break;
            }
        }
        // Disconnect with a live session = implicit abort.
        if let Some(session) = self.session.take() {
            self.store.abort(session);
        }
    }

    /// Reads one line, retrying on read timeouts until data arrives or
    /// shutdown is flagged. `Ok(None)` means the peer closed the
    /// connection.
    fn read_line(&mut self) -> DaemonResult<Option<String>> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    if line.len() > MAX_LINE_BYTES {
                        return Err(DaemonError::Protocol("request line too long".into()));
                    }
                    return Ok(Some(line.trim_end_matches(['\r', '\n']).to_string()));
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Ok(None);
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Reads exactly `len` payload bytes, riding out read timeouts.
    fn read_payload(&mut self, len: u64) -> DaemonResult<Vec<u8>> {
        let mut buf = vec![0u8; len as usize];
        let mut filled = 0usize;
        while filled < buf.len() {
            match self.reader.read(&mut buf[filled..]) {
                Ok(0) => {
                    return Err(DaemonError::Protocol(format!(
                        "connection closed {filled}/{len} bytes into a FILE payload"
                    )))
                }
                Ok(n) => filled += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    if self.shutdown.load(Ordering::SeqCst) {
                        return Err(DaemonError::Protocol("shutdown during FILE payload".into()));
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Ok(buf)
    }

    fn send(&mut self, reply: &str) -> DaemonResult<()> {
        let stream = self.reader.get_mut();
        stream.write_all(reply.as_bytes())?;
        stream.write_all(b"\n")?;
        Ok(())
    }

    /// Sends `OK <len>` followed by `len` raw bytes (RESTORE replies).
    fn send_bytes(&mut self, data: &[u8]) -> DaemonResult<()> {
        let stream = self.reader.get_mut();
        stream.write_all(format!("OK {}\n", data.len()).as_bytes())?;
        stream.write_all(data)?;
        Ok(())
    }

    fn dispatch(&mut self, request: Request) -> String {
        match self.handle(request) {
            Ok(reply) => reply,
            Err(e) => format!("ERR {e}"),
        }
    }

    fn tenant(&self) -> DaemonResult<&str> {
        self.tenant.as_deref().ok_or_else(|| DaemonError::Protocol("OPEN a tenant first".into()))
    }

    fn handle(&mut self, request: Request) -> DaemonResult<String> {
        match request {
            Request::Open { tenant } => {
                if self.session.is_some() {
                    return Err(DaemonError::Protocol(
                        "finish the current session before re-OPENing".into(),
                    ));
                }
                self.tenant = Some(tenant);
                Ok("OK".into())
            }
            Request::Begin { label } => {
                let tenant = self.tenant()?.to_string();
                if self.session.is_some() {
                    return Err(DaemonError::Protocol("a session is already open".into()));
                }
                let session = self.store.begin_session(&tenant, &label)?;
                self.session = Some(session);
                Ok("OK".into())
            }
            Request::File { len, path } => {
                // Always consume the payload, or the stream desyncs.
                let data = self.read_payload(len)?;
                let session = self
                    .session
                    .as_mut()
                    .ok_or_else(|| DaemonError::Protocol("FILE outside a session".into()))?;
                session.stage(&path, &data)?;
                Ok(format!("OK {}", session.staged_files()))
            }
            Request::Commit => {
                let session = self
                    .session
                    .take()
                    .ok_or_else(|| DaemonError::Protocol("COMMIT outside a session".into()))?;
                let report = self.store.commit(session)?;
                Ok(format!("OK {} {} {}", report.files, report.input_bytes, report.grown_bytes))
            }
            Request::Abort => {
                let session = self
                    .session
                    .take()
                    .ok_or_else(|| DaemonError::Protocol("ABORT outside a session".into()))?;
                self.store.abort(session);
                Ok("OK".into())
            }
            Request::Ls => {
                let tenant = self.tenant()?.to_string();
                let names = self.store.list(&tenant)?;
                Ok(format!("OK {}", names.join(" ")))
            }
            Request::Restore { name } => {
                let tenant = self.tenant()?.to_string();
                let data = self.store.restore(&tenant, &name)?;
                self.send_bytes(&data)?;
                // The framed reply is already on the wire; nothing more.
                Ok(String::new())
            }
            Request::Have { hashes } => {
                let bits: String =
                    self.store.have(&hashes).iter().map(|&b| if b { '1' } else { '0' }).collect();
                Ok(format!("OK {bits}"))
            }
            Request::Stats => {
                let stats = self.store.stats();
                let json = serde_json::to_string(&stats)
                    .map_err(|e| DaemonError::State(format!("encode stats: {e}")))?;
                Ok(format!("OK {json}"))
            }
            Request::Gc => {
                let report = self.store.gc()?;
                Ok(format!(
                    "OK {} {} {}",
                    report.containers_deleted, report.containers_protected, report.data_bytes_freed
                ))
            }
            Request::Fsck => {
                let report = self.store.fsck();
                if report.is_healthy() {
                    Ok(format!("OK healthy {} recipes", report.file_manifests))
                } else {
                    Err(DaemonError::State(format!(
                        "fsck found {} problem(s): {}",
                        report.problems.len(),
                        report.problems.join("; ")
                    )))
                }
            }
            Request::Ping => Ok("OK pong".into()),
            Request::Shutdown => {
                if let Some(session) = self.session.take() {
                    self.store.abort(session);
                }
                Ok("OK bye".into())
            }
        }
    }
}
