//! Active-session registry: the GC protection handshake.
//!
//! Chunk and manifest ids are allocated monotonically, so "everything a
//! session could possibly write" is exactly "ids at or above the
//! watermark when the session opened". Each write session registers that
//! watermark here; the collector computes its sweep cutoff as
//! `min(current watermark, min over registered watermarks)` and
//! [`mhd_core::gc::collect_protected`] never deletes at or above the
//! cutoff. Deregistration happens on commit and abort alike — by then the
//! session's objects are either referenced by its recipes (live) or were
//! never written.
//!
//! The registry also owns stream-prefix exclusivity: two sessions may not
//! write the same `tenant/label` stream concurrently.
//!
//! Under two-phase commits the watermark is captured at `BEGIN`, *before*
//! the session's pipeline runs: every id the session later reserves in
//! its publish phase is allocated after registration and therefore at or
//! above its watermark, so staged splices are protected from the moment
//! they hit disk. The interleaving-sensitive parts of this protocol
//! (register before reserve; splice before publishing a recipe; cutoff =
//! min of registered watermarks) are model-checked exhaustively by
//! `mhd-lint --mutant gc-protect` and `--mutant splice-order`.

use mhd_hash::FxHashMap;
use parking_lot::Mutex;

/// One registered session: its GC watermark and exclusive stream prefix.
#[derive(Debug, Clone)]
struct Registration {
    watermark: u64,
    prefix: String,
}

/// Tracks in-progress write sessions for GC protection and stream
/// exclusivity. All methods take `&self`; the registry is internally
/// locked and is shared via `Arc` between connection handlers and the
/// collector.
#[derive(Default)]
pub struct SessionRegistry {
    inner: Mutex<FxHashMap<u64, Registration>>,
}

impl SessionRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SessionRegistry::default()
    }

    /// Registers session `sid` with the chunk-id `watermark` captured at
    /// session open and its exclusive stream `prefix`
    /// (`"tenant/label"`). Fails if another active session holds the
    /// same prefix.
    pub fn register(&self, sid: u64, watermark: u64, prefix: &str) -> Result<(), String> {
        let mut inner = self.inner.lock();
        if inner.values().any(|r| r.prefix == prefix) {
            return Err(format!("stream {prefix:?} already has an active session"));
        }
        inner.insert(sid, Registration { watermark, prefix: prefix.to_string() });
        Ok(())
    }

    /// Drops session `sid` (commit or abort). Unknown ids are ignored —
    /// deregistration must be safe to call from cleanup paths.
    pub fn deregister(&self, sid: u64) {
        self.inner.lock().remove(&sid);
    }

    /// The smallest registered watermark, or `None` when no session is
    /// active (the collector may then sweep up to its own watermark).
    pub fn min_watermark(&self) -> Option<u64> {
        self.inner.lock().values().map(|r| r.watermark).min()
    }

    /// Number of active sessions.
    pub fn active(&self) -> usize {
        self.inner.lock().len()
    }

    /// Stream prefixes of active sessions, sorted (for stats output).
    pub fn active_prefixes(&self) -> Vec<String> {
        let mut prefixes: Vec<String> =
            self.inner.lock().values().map(|r| r.prefix.clone()).collect();
        prefixes.sort();
        prefixes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_watermark_tracks_registrations() {
        let reg = SessionRegistry::new();
        assert_eq!(reg.min_watermark(), None);
        reg.register(1, 100, "a/x").unwrap();
        reg.register(2, 40, "a/y").unwrap();
        reg.register(3, 70, "b/x").unwrap();
        assert_eq!(reg.min_watermark(), Some(40));
        assert_eq!(reg.active(), 3);
        reg.deregister(2);
        assert_eq!(reg.min_watermark(), Some(70));
        reg.deregister(3);
        reg.deregister(1);
        assert_eq!(reg.min_watermark(), None);
        assert_eq!(reg.active(), 0);
    }

    #[test]
    fn stream_prefixes_are_exclusive() {
        let reg = SessionRegistry::new();
        reg.register(1, 5, "alice/day0").unwrap();
        assert!(reg.register(2, 6, "alice/day0").is_err());
        // Same label under a different tenant is a different stream.
        reg.register(3, 6, "bob/day0").unwrap();
        reg.deregister(1);
        reg.register(4, 9, "alice/day0").unwrap();
        assert_eq!(reg.active_prefixes(), vec!["alice/day0", "bob/day0"]);
    }

    #[test]
    fn deregistering_unknown_sessions_is_harmless() {
        let reg = SessionRegistry::new();
        reg.deregister(42);
        assert_eq!(reg.active(), 0);
    }
}
