//! The line-delimited wire protocol between `mhd client` and `mhd serve`.
//!
//! One UTF-8 line per request, space-separated fields, over a Unix domain
//! socket. `FILE` and (in responses) `RESTORE` are followed by exactly
//! `len` raw payload bytes. Responses are `OK [fields…]` or
//! `ERR <message>`. One connection talks to one tenant at a time and
//! holds at most one write session; the full session state machine is
//! documented in DESIGN.md §10.
//!
//! ```text
//! OPEN <tenant>            attach to a tenant namespace
//! BEGIN <label>            start a write session (one backup stream)
//! FILE <len> <path>        stage one file (len raw bytes follow)
//! COMMIT                   dedup + flush + persist the staged snapshot
//! ABORT                    discard the staged snapshot
//! LS                       list the tenant's recipes
//! RESTORE <name>           read back one recipe (label/path)
//! HAVE <hex> [<hex>…]      shared-index membership probe (no lock)
//! STATS                    one-line JSON store/daemon statistics
//! GC                       protected mark-sweep collection
//! FSCK                     structural integrity walk
//! PING                     liveness probe
//! SHUTDOWN                 stop accepting; drain and exit
//! ```
//!
//! Tenants and labels are restricted to `[A-Za-z0-9.-]` (no `_`, no
//! `/`): the store flattens `/` to `_` in object names
//! ([`mhd_store::safe_name`]), so allowing either character in a tenant
//! name would let `a_b` and `a/b` collide into one namespace prefix.
//! Client file paths allow `[A-Za-z0-9._/-]` segments with no `..`.

use crate::error::{DaemonError, DaemonResult};

/// Longest accepted protocol line, in bytes. Guards the server against
/// unframed garbage on the socket.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Largest accepted single `FILE` payload, in bytes.
pub const MAX_FILE_BYTES: u64 = 256 << 20;

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Attach this connection to a tenant namespace.
    Open {
        /// Tenant name (validated by `valid_tenant`).
        tenant: String,
    },
    /// Start a write session under the attached tenant.
    Begin {
        /// Backup-stream label, unique per tenant (validated like a
        /// tenant name).
        label: String,
    },
    /// Stage one file; `len` raw bytes follow the newline.
    File {
        /// Payload length in bytes.
        len: u64,
        /// Tenant-relative file path (validated by `valid_path`).
        path: String,
    },
    /// Commit the staged snapshot atomically.
    Commit,
    /// Discard the staged snapshot.
    Abort,
    /// List the tenant's recipes.
    Ls,
    /// Restore one recipe by tenant-relative name (`label/path`).
    Restore {
        /// Recipe name, in listed (sanitised) or slashed form.
        name: String,
    },
    /// Probe the shared hook index for hex-encoded chunk hashes.
    Have {
        /// Hashes to probe, hex-encoded.
        hashes: Vec<String>,
    },
    /// One-line JSON statistics.
    Stats,
    /// Run protected garbage collection.
    Gc,
    /// Run the structural integrity checker.
    Fsck,
    /// Liveness probe.
    Ping,
    /// Stop the daemon.
    Shutdown,
}

/// Whether `s` is an acceptable tenant or label name: nonempty, at most
/// 64 bytes, `[A-Za-z0-9.-]` only, and not entirely dots.
pub fn valid_tenant(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'-')
        && !s.bytes().all(|b| b == b'.')
}

/// Whether `s` is an acceptable client file path: `/`-separated segments
/// of `[A-Za-z0-9._-]`, each nonempty and not `.`/`..`, at most 512
/// bytes, no leading `/`.
pub fn valid_path(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 512
        && s.split('/').all(|seg| {
            !seg.is_empty()
                && seg != "."
                && seg != ".."
                && seg
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-')
        })
}

impl Request {
    /// Parses one request line (without its trailing newline).
    pub fn parse(line: &str) -> DaemonResult<Request> {
        let err = |msg: String| Err(DaemonError::Protocol(msg));
        let mut fields = line.split_ascii_whitespace();
        let Some(verb) = fields.next() else {
            return err("empty request line".into());
        };
        let rest: Vec<&str> = fields.collect();
        let arity = |want: usize| -> DaemonResult<()> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(DaemonError::Protocol(format!(
                    "{verb} takes {want} argument(s), got {}",
                    rest.len()
                )))
            }
        };
        match verb {
            "OPEN" => {
                arity(1)?;
                if !valid_tenant(rest[0]) {
                    return err(format!("invalid tenant name {:?} (use [A-Za-z0-9.-])", rest[0]));
                }
                Ok(Request::Open { tenant: rest[0].to_string() })
            }
            "BEGIN" => {
                arity(1)?;
                if !valid_tenant(rest[0]) {
                    return err(format!("invalid label {:?} (use [A-Za-z0-9.-])", rest[0]));
                }
                Ok(Request::Begin { label: rest[0].to_string() })
            }
            "FILE" => {
                arity(2)?;
                let len: u64 = rest[0]
                    .parse()
                    .map_err(|_| DaemonError::Protocol(format!("bad FILE length {:?}", rest[0])))?;
                if len > MAX_FILE_BYTES {
                    return err(format!("FILE payload {len} exceeds {MAX_FILE_BYTES} bytes"));
                }
                if !valid_path(rest[1]) {
                    return err(format!("invalid file path {:?}", rest[1]));
                }
                Ok(Request::File { len, path: rest[1].to_string() })
            }
            "COMMIT" => arity(0).map(|_| Request::Commit),
            "ABORT" => arity(0).map(|_| Request::Abort),
            "LS" => arity(0).map(|_| Request::Ls),
            "RESTORE" => {
                arity(1)?;
                if rest[0].len() > 1024 {
                    return err("RESTORE name too long".into());
                }
                Ok(Request::Restore { name: rest[0].to_string() })
            }
            "HAVE" => {
                if rest.is_empty() || rest.len() > 64 {
                    return err("HAVE takes 1..=64 hex hashes".into());
                }
                Ok(Request::Have { hashes: rest.iter().map(|s| s.to_string()).collect() })
            }
            "STATS" => arity(0).map(|_| Request::Stats),
            "GC" => arity(0).map(|_| Request::Gc),
            "FSCK" => arity(0).map(|_| Request::Fsck),
            "PING" => arity(0).map(|_| Request::Ping),
            "SHUTDOWN" => arity(0).map(|_| Request::Shutdown),
            other => err(format!("unknown command {other:?}")),
        }
    }

    /// Renders the request as its wire line (no trailing newline).
    pub fn encode(&self) -> String {
        match self {
            Request::Open { tenant } => format!("OPEN {tenant}"),
            Request::Begin { label } => format!("BEGIN {label}"),
            Request::File { len, path } => format!("FILE {len} {path}"),
            Request::Commit => "COMMIT".into(),
            Request::Abort => "ABORT".into(),
            Request::Ls => "LS".into(),
            Request::Restore { name } => format!("RESTORE {name}"),
            Request::Have { hashes } => format!("HAVE {}", hashes.join(" ")),
            Request::Stats => "STATS".into(),
            Request::Gc => "GC".into(),
            Request::Fsck => "FSCK".into(),
            Request::Ping => "PING".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let cases = [
            Request::Open { tenant: "alice".into() },
            Request::Begin { label: "day-0".into() },
            Request::File { len: 42, path: "images/a.img".into() },
            Request::Commit,
            Request::Abort,
            Request::Ls,
            Request::Restore { name: "day-0/images/a.img".into() },
            Request::Have { hashes: vec!["aa".into(), "bb".into()] },
            Request::Stats,
            Request::Gc,
            Request::Fsck,
            Request::Ping,
            Request::Shutdown,
        ];
        for case in cases {
            assert_eq!(Request::parse(&case.encode()).unwrap(), case, "{case:?}");
        }
    }

    #[test]
    fn tenant_charset_excludes_separator_collisions() {
        assert!(valid_tenant("alice"));
        assert!(valid_tenant("pc-7.example"));
        // `_` and `/` are both mapped to `_` by the store's safe_name, so
        // neither may appear in a namespace component.
        assert!(!valid_tenant("a_b"));
        assert!(!valid_tenant("a/b"));
        assert!(!valid_tenant(""));
        assert!(!valid_tenant(".."));
        assert!(!valid_tenant(&"x".repeat(65)));
    }

    #[test]
    fn path_validation_blocks_traversal() {
        assert!(valid_path("a.img"));
        assert!(valid_path("dir/sub/file_1.bin"));
        assert!(!valid_path("/etc/passwd"));
        assert!(!valid_path("a/../b"));
        assert!(!valid_path("a//b"));
        assert!(!valid_path("a b"));
        assert!(!valid_path(""));
    }

    #[test]
    fn malformed_lines_are_rejected() {
        for bad in ["", "NOPE", "OPEN", "OPEN a b", "FILE x y", "FILE 10 /abs", "HAVE"] {
            assert!(Request::parse(bad).is_err(), "{bad:?} must not parse");
        }
        let too_big = format!("FILE {} a", MAX_FILE_BYTES + 1);
        assert!(Request::parse(&too_big).is_err());
    }
}
