//! The shared datastore: one store, many tenants, crash-safe sessions,
//! two-phase parallel commits.
//!
//! [`SharedStore`] owns the durable `MhdEngine` plus the pieces that make
//! concurrent use safe:
//!
//! * a [`SessionRegistry`] so GC never sweeps what an open session might
//!   still reference (watermark protection),
//! * the [`SharedHookIndex`] (kept coherent by [`IndexingBackend`] on the
//!   backend write path),
//! * per-session **intent records** under `daemon/wip/`, the daemon-level
//!   reuse of the store's tmp+rename discipline: a record is written
//!   atomically at `BEGIN` and removed only after the commit is fully
//!   persisted, so the next open knows exactly which streams were torn.
//!
//! # Two-phase commits
//!
//! `COMMIT` no longer serialises the dedup pipeline on the engine lock.
//! **Phase 1** (stage `commit.pipeline`, no lock) runs the full BF-MHD
//! pipeline on a throwaway engine over a [`StagingBackend`]: reads fall
//! through to the shared store's directory tree, hook probes go to the
//! lock-free [`SharedHookIndex`] (the engine's presence oracle), and all
//! writes land in an in-memory overlay under a private id range
//! ([`LOCAL_ID_BASE`] and up). Any number of sessions run phase 1
//! concurrently. **Phase 2** (stage `commit.publish`, engine lock held)
//! is O(metadata): it validates the pipeline's view against hooks other
//! sessions published meanwhile (retrying phase 1 on a real conflict, so
//! shared content is stored once), reserves real id ranges, splices the
//! staged objects in `FLUSH_ORDER`, absorbs the session's counters,
//! flushes, and persists the watermark. `RESTORE`/`LS` use a read-only
//! directory view and take no lock at all.
//!
//! # On-disk layout
//!
//! A daemon store is a superset of a CLI store — `mhd fsck`, `mhd stats`
//! and `mhd ls` work on it unchanged when the daemon is stopped:
//!
//! ```text
//! store/
//!   disk_chunks/  manifests/  hooks/  file_manifests/   (the four namespaces)
//!   session/state.json   engine state  = the durable commit watermark
//!   session/meta.json    ecs / sd / stream count
//!   daemon/wip/<tenant>_<label>   intent record per in-flight session
//! ```
//!
//! # Crash recovery
//!
//! `state.json` is rewritten atomically after every commit, so its id
//! counters are the durable commit watermark: any object on disk with an
//! id **at or above** them belongs to a commit that never acknowledged.
//! Opening the store rolls those forward-orphans back with *raw* backend
//! deletes (the ledger never accounted for them), in reverse
//! `FLUSH_ORDER`: first the recipes of every stream named by a `wip`
//! record, then above-watermark Hooks, Manifests and DiskChunks. A store
//! with no `state.json` at all has never committed, so the floor is zero
//! and the wipe is total — correct by the same rule.

use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use mhd_chunking::ChunkerKind;
use mhd_core::gc::GcReport;
use mhd_core::{Deduplicator, EngineConfig, MhdEngine, MhdState, SessionDelta};
use mhd_hash::{ChunkHash, FxHashSet};
use mhd_store::{
    safe_name, Backend, BatchedDirBackend, DirBackend, DiskChunkId, Durability, FaultBackend,
    FaultPoint, FileKind, FileManifest, IoConfig, Manifest, ManifestId, Substrate,
};
use mhd_workload::{FileEntry, Snapshot};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::error::{DaemonError, DaemonResult};
use crate::index::{IndexingBackend, SharedHookIndex};
use crate::protocol::{valid_path, valid_tenant, MAX_FILE_BYTES};
use crate::registry::SessionRegistry;
use crate::staging::StagingBackend;

/// The backend stack every daemon store runs on. The fault layer is
/// disarmed by default ([`FaultPoint::never`]) and exists so tests can
/// fail the publish step of a live commit ([`SharedStore::arm_fault`]).
type DaemonBackend = IndexingBackend<FaultBackend<BatchedDirBackend>>;

/// Id floor for staging engines: phase-1 objects are allocated at or
/// above this base, far beyond any real store id, so a staged id can
/// never collide with a read-through shared id and the publish remap is
/// a simple subtraction.
///
/// Public because the invariant it anchors is enforced from outside this
/// crate too: `mhd-lint`'s L8 id-range pass proves every backend write
/// either stays below this floor or flows through the splice remap, and
/// its `PublishModel` model-checks the reserve/remap protocol itself.
pub const LOCAL_ID_BASE: u64 = 1 << 48;

/// A conflicted commit re-runs phase 1 at most this many times before
/// publishing anyway — still correct, just storing some duplicate chunks
/// (which the within-tolerance dedup-equivalence bound accounts for). A
/// retry costs one staged pipeline run (milliseconds), so the budget is
/// generous: exhausting it needs a fresh racing publish on every attempt,
/// which heavy day-0 hook sharing can produce under oversubscription.
///
/// Public so `mhd-lint`'s `PublishModel` (which model-checks the bounded
/// retry against the epoch log) can tie itself to the shipped value.
pub const MAX_COMMIT_RETRIES: u32 = 8;

/// How many recent publishes keep their hook-hash sets for conflict
/// detection. A pipeline that started more than this many publishes ago
/// is conservatively treated as conflicted.
const PUBLISH_LOG: usize = 64;

/// Tuning for [`SharedStore::open`].
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Expected chunk size in bytes (new stores only; an existing store
    /// keeps its original chunking).
    pub ecs: usize,
    /// Slices per DiskChunk / Manifest (`SD`; new stores only).
    pub sd: usize,
    /// Chunking algorithm (new stores only; an existing store keeps the
    /// chunker its chunks were cut with).
    pub chunker: ChunkerKind,
    /// Batched-backend I/O tuning (threads, batch sizes, durability).
    pub io: IoConfig,
    /// Shard count for the in-memory hook index.
    pub index_shards: usize,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            ecs: 4096,
            sd: 16,
            chunker: ChunkerKind::Rabin,
            io: IoConfig::default(),
            index_shards: 8,
        }
    }
}

/// Mirrors the CLI's `session/meta.json` so daemon and CLI stores are
/// interchangeable on disk.
#[derive(Serialize, Deserialize)]
struct StoreMeta {
    ecs: usize,
    sd: usize,
    streams: u64,
    /// Chunking algorithm, spelled as the CLI spelling (`rabin`, …).
    chunker: String,
}

/// The pre-chunker `meta.json` layout; stores written before the chunker
/// was persisted are always Rabin.
#[derive(Deserialize)]
struct LegacyStoreMeta {
    ecs: usize,
    sd: usize,
    streams: u64,
}

impl StoreMeta {
    /// Parses `meta.json` bytes, accepting the legacy (chunker-less)
    /// layout and defaulting it to Rabin.
    fn parse(data: &[u8]) -> Result<Self, String> {
        if let Ok(meta) = serde_json::from_slice::<StoreMeta>(data) {
            return Ok(meta);
        }
        let legacy: LegacyStoreMeta = serde_json::from_slice(data).map_err(|e| e.to_string())?;
        Ok(StoreMeta {
            ecs: legacy.ecs,
            sd: legacy.sd,
            streams: legacy.streams,
            chunker: ChunkerKind::Rabin.as_str().to_string(),
        })
    }

    /// The persisted chunker, parsed back into a [`ChunkerKind`].
    fn kind(&self) -> Result<ChunkerKind, String> {
        self.chunker.parse::<ChunkerKind>().map_err(|e| e.to_string())
    }
}

/// What the open-time recovery pass did (backend pass + daemon rollback).
#[derive(Debug, Default, Clone, Serialize)]
pub struct RecoverySummary {
    /// Torn tmp files removed by the backend's own recovery.
    pub tmp_files_removed: u64,
    /// Write intents resolved by the backend's own recovery.
    pub intents_resolved: u64,
    /// Torn sessions rolled back from `daemon/wip` intent records.
    pub sessions_rolled_back: u64,
    /// Recipes (FileManifests) of torn sessions deleted.
    pub recipes_rolled_back: u64,
    /// Above-watermark DiskChunks deleted.
    pub chunks_rolled_back: u64,
    /// Above-watermark Manifests deleted.
    pub manifests_rolled_back: u64,
    /// Hooks pointing above the manifest watermark deleted.
    pub hooks_rolled_back: u64,
}

impl RecoverySummary {
    /// Whether the store was already consistent.
    pub fn is_clean(&self) -> bool {
        self.sessions_rolled_back == 0
            && self.recipes_rolled_back == 0
            && self.chunks_rolled_back == 0
            && self.manifests_rolled_back == 0
            && self.hooks_rolled_back == 0
    }
}

/// Result of a committed write session.
#[derive(Debug, Clone, Serialize)]
pub struct CommitReport {
    /// Files in the committed snapshot.
    pub files: u64,
    /// Raw input bytes deduplicated.
    pub input_bytes: u64,
    /// Bytes the store actually grew by (data + metadata).
    pub grown_bytes: u64,
}

/// One-line statistics snapshot (`STATS`).
#[derive(Debug, Clone, Serialize)]
pub struct DaemonStats {
    /// Cumulative input bytes over the store's life.
    pub input_bytes: u64,
    /// Bytes eliminated as duplicates.
    pub dup_bytes: u64,
    /// Files deduplicated.
    pub files: u64,
    /// Chunks stored.
    pub chunks_stored: u64,
    /// Total output (data + metadata) bytes on disk.
    pub stored_bytes: u64,
    /// Streams committed.
    pub streams: u64,
    /// Write sessions currently open.
    pub active_sessions: usize,
    /// `tenant/label` of each open session, sorted.
    pub active_streams: Vec<String>,
    /// Hook-index entries.
    pub index_entries: usize,
    /// Hook-index entries per shard.
    pub index_occupancy: Vec<usize>,
}

/// An in-progress write session: files staged in memory, nothing in the
/// store until [`SharedStore::commit`].
pub struct WriteSession {
    sid: u64,
    tenant: String,
    label: String,
    files: Vec<FileEntry>,
    staged_bytes: u64,
    seen: FxHashSet<String>,
}

impl WriteSession {
    /// Session id (unique within this daemon process).
    pub fn id(&self) -> u64 {
        self.sid
    }

    /// Owning tenant.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Stream label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The `tenant/label` stream prefix this session will commit under.
    pub fn prefix(&self) -> String {
        format!("{}/{}", self.tenant, self.label)
    }

    /// Files staged so far.
    pub fn staged_files(&self) -> usize {
        self.files.len()
    }

    /// Bytes staged so far.
    pub fn staged_bytes(&self) -> u64 {
        self.staged_bytes
    }

    /// Stages one file for commit. Validates the path, rejects
    /// duplicates and enforces the per-file size cap; the store is not
    /// touched.
    pub fn stage(&mut self, path: &str, data: &[u8]) -> DaemonResult<()> {
        if !valid_path(path) {
            return Err(DaemonError::Protocol(format!("invalid file path {path:?}")));
        }
        if data.len() as u64 > MAX_FILE_BYTES {
            return Err(DaemonError::Protocol(format!(
                "file {path:?} exceeds {MAX_FILE_BYTES} bytes"
            )));
        }
        if !self.seen.insert(path.to_string()) {
            return Err(DaemonError::Protocol(format!("duplicate file path {path:?}")));
        }
        self.files.push(FileEntry {
            path: format!("{}/{}/{path}", self.tenant, self.label),
            data: Bytes::copy_from_slice(data),
        });
        self.staged_bytes += data.len() as u64;
        Ok(())
    }
}

struct StoreInner {
    engine: MhdEngine<DaemonBackend>,
    streams: u64,
    /// Monotonic publish sequence: bumped once per committed session.
    epoch: u64,
    /// Hook hashes of the last [`PUBLISH_LOG`] publishes, tagged by the
    /// epoch that produced them, for phase-2 conflict detection.
    publish_log: VecDeque<(u64, FxHashSet<ChunkHash>)>,
}

/// The one store all sessions share. Commit pipelines, `HAVE`, `RESTORE`
/// and `LS` run without the engine lock; only the publish phase of a
/// commit, `BEGIN`, `GC`, `FSCK` and `STATS` serialise on it (see the
/// module docs for the two-phase commit protocol).
pub struct SharedStore {
    inner: Mutex<StoreInner>,
    index: Arc<SharedHookIndex>,
    registry: SessionRegistry,
    root: PathBuf,
    next_session: AtomicU64,
    /// Lock-free mirror of `StoreInner::epoch`, read at phase-1 start.
    epoch: AtomicU64,
    recovery: RecoverySummary,
    ecs: usize,
    sd: usize,
    chunker: ChunkerKind,
}

/// Writes `data` through a hidden tmp sibling + atomic rename so state
/// files can never be observed half-written.
fn write_atomic(path: &Path, data: &[u8]) -> DaemonResult<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| DaemonError::State(format!("{}: not a file path", path.display())))?;
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    std::fs::write(&tmp, data)
        .map_err(|e| DaemonError::State(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| DaemonError::State(format!("rename to {}: {e}", path.display())))?;
    Ok(())
}

/// Contents of one `daemon/wip/` intent record.
#[derive(Serialize, Deserialize)]
struct WipRecord {
    tenant: String,
    label: String,
}

impl SharedStore {
    fn state_path(root: &Path) -> PathBuf {
        root.join("session/state.json")
    }

    fn meta_path(root: &Path) -> PathBuf {
        root.join("session/meta.json")
    }

    fn wip_dir(root: &Path) -> PathBuf {
        root.join("daemon/wip")
    }

    fn wip_path(&self, tenant: &str, label: &str) -> PathBuf {
        // Tenant/label charsets exclude `_`, so this name is collision-free.
        Self::wip_dir(&self.root).join(safe_name(&format!("{tenant}/{label}")))
    }

    /// Opens (or initialises) the shared store at `root`, running the
    /// backend's crash-recovery pass and the daemon's session rollback
    /// before anything reads a byte. See the module docs for the
    /// recovery rules.
    pub fn open(root: &Path, config: DaemonConfig) -> DaemonResult<SharedStore> {
        for dir in [root.join("session"), Self::wip_dir(root)] {
            std::fs::create_dir_all(&dir)
                .map_err(|e| DaemonError::State(format!("create {}: {e}", dir.display())))?;
        }

        let meta_path = Self::meta_path(root);
        let meta: StoreMeta = if meta_path.exists() {
            let data = std::fs::read(&meta_path)
                .map_err(|e| DaemonError::State(format!("read {}: {e}", meta_path.display())))?;
            StoreMeta::parse(&data)
                .map_err(|e| DaemonError::State(format!("parse {}: {e}", meta_path.display())))?
        } else {
            StoreMeta {
                ecs: config.ecs,
                sd: config.sd,
                streams: 0,
                chunker: config.chunker.as_str().to_string(),
            }
        };
        let chunker = meta.kind().map_err(DaemonError::State)?;

        let mut backend = BatchedDirBackend::create_with(root, config.io)?;
        let backend_recovery = backend.recover()?;

        let index = Arc::new(SharedHookIndex::new(config.index_shards));
        let backend = FaultBackend::with_point(backend, FaultPoint::never());
        let mut backend = IndexingBackend::new(backend, index.clone());

        // The persisted engine state is the durable commit watermark.
        let state_path = Self::state_path(root);
        let state: Option<MhdState> = if state_path.exists() {
            let data = std::fs::read(&state_path)
                .map_err(|e| DaemonError::State(format!("read {}: {e}", state_path.display())))?;
            let mut state: MhdState = serde_json::from_slice(&data)
                .map_err(|e| DaemonError::State(format!("parse {}: {e}", state_path.display())))?;
            // Newer stores persist the Bloom filter and the id→hash/size
            // maps as binary sidecars (see `persist_locked`); older ones
            // inline them in the JSON. The same logic serves the CLI, so
            // either front end opens stores the other wrote.
            mhd_core::statefile::attach_sidecars(&mut state, root)
                .map_err(|e| DaemonError::State(e.to_string()))?;
            Some(state)
        } else {
            None
        };
        let (chunk_floor, manifest_floor) = state
            .as_ref()
            .map_or((0, 0), |s| (s.substrate.next_chunk_id, s.substrate.next_manifest_id));

        let mut recovery = RecoverySummary {
            tmp_files_removed: backend_recovery.tmp_files_removed as u64,
            intents_resolved: backend_recovery.intents_resolved as u64,
            ..RecoverySummary::default()
        };
        Self::rollback_torn_sessions(
            root,
            &mut backend,
            chunk_floor,
            manifest_floor,
            &mut recovery,
        )?;

        let mut engine =
            MhdEngine::new(backend, EngineConfig::new(meta.ecs, meta.sd).with_chunker(chunker))?;
        if let Some(state) = state {
            engine.import_state(state)?;
        }
        // Belt and braces: never allocate below anything still on disk.
        engine.substrate_mut().ensure_id_floor(chunk_floor, manifest_floor);
        let loaded = engine.substrate_mut().backend_mut().populate_index();
        mhd_obs::counter!("daemon.index_preloaded").add(loaded as u64);

        let store = SharedStore {
            inner: Mutex::new(StoreInner {
                engine,
                streams: meta.streams,
                epoch: 0,
                publish_log: VecDeque::new(),
            }),
            index,
            registry: SessionRegistry::new(),
            root: root.to_path_buf(),
            next_session: AtomicU64::new(1),
            epoch: AtomicU64::new(0),
            recovery,
            ecs: meta.ecs,
            sd: meta.sd,
            chunker,
        };
        // Persist immediately: a brand-new store gets its watermark files,
        // a recovered one gets a clean baseline.
        store.persist()?;
        Ok(store)
    }

    /// Deletes, with **raw** backend operations, every object a torn
    /// session left above the durable watermark. Raw deletes are
    /// deliberate: the persisted ledger never accounted for these
    /// objects, so substrate-level deletes would corrupt its counters.
    fn rollback_torn_sessions(
        root: &Path,
        backend: &mut DaemonBackend,
        chunk_floor: u64,
        manifest_floor: u64,
        recovery: &mut RecoverySummary,
    ) -> DaemonResult<()> {
        // 1. Recipes of every stream named by a wip intent record. These
        //    go first (reverse FLUSH_ORDER): a recipe must never outlive
        //    the chunks it references.
        let wip_dir = Self::wip_dir(root);
        let mut wip_files: Vec<PathBuf> = Vec::new();
        let entries = std::fs::read_dir(&wip_dir)
            .map_err(|e| DaemonError::State(format!("read {}: {e}", wip_dir.display())))?;
        for entry in entries {
            let entry = entry
                .map_err(|e| DaemonError::State(format!("read {}: {e}", wip_dir.display())))?;
            wip_files.push(entry.path());
        }
        for wip in &wip_files {
            let data = std::fs::read(wip)
                .map_err(|e| DaemonError::State(format!("read {}: {e}", wip.display())))?;
            let record: WipRecord = serde_json::from_slice(&data)
                .map_err(|e| DaemonError::State(format!("parse {}: {e}", wip.display())))?;
            let prefix = safe_name(&format!("{}/{}/", record.tenant, record.label));
            for name in backend.list(FileKind::FileManifest) {
                if name.starts_with(&prefix) {
                    backend.delete(FileKind::FileManifest, &name)?;
                    recovery.recipes_rolled_back += 1;
                }
            }
            recovery.sessions_rolled_back += 1;
        }

        // 2. Hooks pointing at rolled-back manifests (payload first 8
        //    bytes, little endian, is the target ManifestId).
        for name in backend.list(FileKind::Hook) {
            let payload = backend.get(FileKind::Hook, &name)?;
            let target = payload.get(..8).and_then(|raw| {
                let raw: Result<[u8; 8], _> = raw.try_into();
                raw.ok().map(u64::from_le_bytes)
            });
            if target.is_none_or(|mid| mid >= manifest_floor) {
                // lint: allow(immutability): rollback of hooks above the commit watermark
                backend.delete(FileKind::Hook, &name)?;
                recovery.hooks_rolled_back += 1;
            }
        }

        // 3. Above-watermark Manifests, then DiskChunks (ids are the
        //    object names, zero-padded hex).
        for (kind, floor, count) in [
            (FileKind::Manifest, manifest_floor, &mut recovery.manifests_rolled_back),
            (FileKind::DiskChunk, chunk_floor, &mut recovery.chunks_rolled_back),
        ] {
            for name in backend.list(kind) {
                if u64::from_str_radix(&name, 16).ok().is_none_or(|id| id >= floor) {
                    backend.delete(kind, &name)?;
                    *count += 1;
                }
            }
        }
        backend.flush()?;

        // 4. Only now that the rollback is durable, retire the intent
        //    records.
        for wip in &wip_files {
            std::fs::remove_file(wip)
                .map_err(|e| DaemonError::State(format!("remove {}: {e}", wip.display())))?;
        }
        Ok(())
    }

    /// What the open-time recovery pass found and did.
    pub fn recovery(&self) -> &RecoverySummary {
        &self.recovery
    }

    /// The shared hook index (lock-free `HAVE` probes).
    pub fn index(&self) -> &Arc<SharedHookIndex> {
        &self.index
    }

    /// The active-session registry.
    pub fn registry(&self) -> &SessionRegistry {
        &self.registry
    }

    /// Store root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Flushes engine state and rewrites the watermark files atomically.
    pub fn persist(&self) -> DaemonResult<()> {
        let mut inner = self.inner.lock();
        let _ = inner.engine.finish()?;
        Self::persist_locked(&self.root, self.ecs, self.sd, self.chunker, &mut inner)
    }

    fn persist_locked(
        root: &Path,
        ecs: usize,
        sd: usize,
        chunker: ChunkerKind,
        inner: &mut StoreInner,
    ) -> DaemonResult<()> {
        let mut state = inner.engine.export_state();
        // The bulky parts of the state — the Bloom filter (megabytes of
        // raw bits) and the per-chunk hash / per-manifest size maps —
        // used to be inlined in the state JSON, where serde renders them
        // as one JSON node per byte/entry. That made every commit's
        // persistence O(store) in JSON nodes and was by far the widest
        // part of the serialized publish phase. Both now go to binary
        // sidecars (written first — `mhd_core::statefile` documents the
        // crash-ordering argument), and the JSON keeps only the O(1)
        // counters and watermarks.
        mhd_core::statefile::detach_sidecars(&mut state, root)
            .map_err(|e| DaemonError::State(e.to_string()))?;
        let state_json = serde_json::to_vec(&state)
            .map_err(|e| DaemonError::State(format!("encode state: {e}")))?;
        write_atomic(&Self::state_path(root), &state_json)?;
        let meta =
            StoreMeta { ecs, sd, streams: inner.streams, chunker: chunker.as_str().to_string() };
        let meta_json = serde_json::to_vec(&meta)
            .map_err(|e| DaemonError::State(format!("encode meta: {e}")))?;
        write_atomic(&Self::meta_path(root), &meta_json)?;
        Ok(())
    }

    /// Opens a write session for `tenant`/`label`: captures the GC
    /// watermark, takes the stream lease and writes the `wip` intent
    /// record. Fails if the stream already exists or is being written by
    /// another session.
    pub fn begin_session(&self, tenant: &str, label: &str) -> DaemonResult<WriteSession> {
        if !valid_tenant(tenant) {
            return Err(DaemonError::Protocol(format!("invalid tenant name {tenant:?}")));
        }
        if !valid_tenant(label) {
            return Err(DaemonError::Protocol(format!("invalid label {label:?}")));
        }
        let prefix = format!("{tenant}/{label}");
        let recipe_prefix = safe_name(&format!("{prefix}/"));

        // The existence check, watermark capture and registration happen
        // under the engine lock so no commit can slide between them.
        let mut inner = self.inner.lock();
        if inner
            .engine
            .substrate_mut()
            .list_file_manifests()
            .iter()
            .any(|n| n.starts_with(&recipe_prefix))
        {
            return Err(DaemonError::Protocol(format!("stream {prefix:?} already exists")));
        }
        let watermark = inner.engine.substrate().chunk_id_watermark();
        let sid = self.next_session.fetch_add(1, Ordering::Relaxed);
        self.registry.register(sid, watermark, &prefix).map_err(DaemonError::Protocol)?;
        drop(inner);

        let record = WipRecord { tenant: tenant.to_string(), label: label.to_string() };
        let encoded = serde_json::to_vec(&record)
            .map_err(|e| DaemonError::State(format!("encode wip record: {e}")))?;
        if let Err(e) = write_atomic(&self.wip_path(tenant, label), &encoded) {
            self.registry.deregister(sid);
            return Err(e);
        }

        mhd_obs::counter!("daemon.sessions_opened").inc();
        Ok(WriteSession {
            sid,
            tenant: tenant.to_string(),
            label: label.to_string(),
            files: Vec::new(),
            staged_bytes: 0,
            seen: FxHashSet::default(),
        })
    }

    /// Commits a staged session with the two-phase protocol (module
    /// docs): the dedup pipeline runs outside the engine lock, the lock
    /// is taken only to validate, splice the staged objects in
    /// `FLUSH_ORDER`, and persist the watermark. The intent record is
    /// retired and the stream lease released on **every** exit path —
    /// success, pipeline error, or publish/persist failure — so a failed
    /// commit never leaves the stream un-writable or GC pinned.
    pub fn commit(&self, session: WriteSession) -> DaemonResult<CommitReport> {
        if session.files.is_empty() {
            self.abort(session);
            return Err(DaemonError::Protocol("session has no staged files".into()));
        }
        let _scope = mhd_obs::scope!("tenant={}", session.tenant);
        let files = session.files.len() as u64;
        let input_bytes = session.staged_bytes;
        // `Bytes` clones are refcounted: retries re-read, not re-copy.
        let snapshot = Snapshot { machine: 0, day: 0, files: session.files.clone() };

        let mut attempt = 0u32;
        loop {
            let epoch0 = self.epoch.load(Ordering::Acquire);

            // Phase 1: the full dedup pipeline against a staging engine,
            // concurrent with other sessions' pipelines and publishes.
            let pipeline = mhd_obs::stage("commit.pipeline");
            let pipeline_timer = mhd_obs::span!("daemon.commit_pipeline_ns");
            let mut staging = match self.build_staging_engine() {
                Ok(s) => s,
                Err(e) => {
                    self.cleanup_session(&session.tenant, &session.label, session.sid);
                    return Err(e);
                }
            };
            let ran =
                staging.process_snapshot(&snapshot).and_then(|()| staging.finish().map(|_| ()));
            drop(pipeline_timer);
            drop(pipeline);
            if let Err(e) = ran {
                // Nothing touched the shared store: staging writes are in
                // memory. Release the lease and intent record.
                self.cleanup_session(&session.tenant, &session.label, session.sid);
                return Err(DaemonError::Engine(e));
            }
            let missed = staging.take_missed_hashes();

            // Phase 2: validate, reserve, splice, persist — O(metadata),
            // under the lock.
            let _publish = mhd_obs::stage("commit.publish");
            let _publish_timer = mhd_obs::span!("daemon.commit_publish_ns");
            let mut inner = self.inner.lock();
            if attempt < MAX_COMMIT_RETRIES && Self::conflicts(&inner, epoch0, &missed) {
                drop(inner);
                attempt += 1;
                mhd_obs::counter!("daemon.commit_retries").inc();
                continue;
            }

            let before = inner.engine.substrate().ledger().total_output_bytes();
            let result = {
                let _t = mhd_obs::span!("daemon.commit_splice_ns");
                Self::splice_locked(&mut inner, staging)
            }
            .and_then(|hook_hashes| {
                inner.streams += 1;
                let _t = mhd_obs::span!("daemon.commit_persist_ns");
                match Self::persist_locked(&self.root, self.ecs, self.sd, self.chunker, &mut inner)
                {
                    Ok(()) => Ok(hook_hashes),
                    Err(e) => {
                        inner.streams -= 1;
                        Err(e)
                    }
                }
            });
            return match result {
                Ok(hook_hashes) => {
                    inner.epoch += 1;
                    let epoch = inner.epoch;
                    inner.publish_log.push_back((epoch, hook_hashes));
                    while inner.publish_log.len() > PUBLISH_LOG {
                        inner.publish_log.pop_front();
                    }
                    self.epoch.store(epoch, Ordering::Release);
                    let grown_bytes = inner
                        .engine
                        .substrate()
                        .ledger()
                        .total_output_bytes()
                        .saturating_sub(before);
                    drop(inner);
                    // Commit is durable; only now retire the intent
                    // record. A crash between persist and this point
                    // re-deletes nothing at recovery (everything is below
                    // the new watermark) except the recipes — exactly the
                    // unacknowledged-commit semantics we want.
                    self.cleanup_session(&session.tenant, &session.label, session.sid);
                    mhd_obs::counter!("daemon.commits").inc();
                    Ok(CommitReport { files, input_bytes, grown_bytes })
                }
                Err(e) => {
                    // Splice or persist failed. Roll the visible parts
                    // back and — the fix for the leaked-lease bug —
                    // release the lease and intent record before
                    // surfacing the error, so the stream stays writable
                    // and GC unpinned.
                    let recipe_prefix =
                        safe_name(&format!("{}/{}/", session.tenant, session.label));
                    Self::undo_failed_publish(&mut inner, &recipe_prefix);
                    let _ = Self::persist_locked(
                        &self.root,
                        self.ecs,
                        self.sd,
                        self.chunker,
                        &mut inner,
                    );
                    drop(inner);
                    self.cleanup_session(&session.tenant, &session.label, session.sid);
                    Err(e)
                }
            };
        }
    }

    /// Builds the phase-1 engine: a staging backend over the store root,
    /// ids floored at [`LOCAL_ID_BASE`], the shared hook index installed
    /// as the presence oracle.
    fn build_staging_engine(&self) -> DaemonResult<MhdEngine<StagingBackend>> {
        let backend = StagingBackend::over(&self.root)?;
        let mut engine = MhdEngine::new(
            backend,
            EngineConfig::new(self.ecs, self.sd).with_chunker(self.chunker),
        )?;
        engine.substrate_mut().ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE);
        engine.set_hook_presence(self.index.clone());
        Ok(engine)
    }

    /// Whether a pipeline that started at `epoch0` deduplicated against a
    /// stale view: true when any hash it *missed* was published as a hook
    /// by a session that committed after `epoch0` (the pipeline would
    /// have found it, so its staged objects duplicate stored content), or
    /// when the publish log no longer reaches back that far.
    fn conflicts(inner: &StoreInner, epoch0: u64, missed: &FxHashSet<ChunkHash>) -> bool {
        if inner.epoch == epoch0 || missed.is_empty() {
            // No publishes raced the pipeline, or the pipeline found
            // everything it looked for — either way its view was exact.
            return false;
        }
        match inner.publish_log.front() {
            // The log was truncated past the pipeline's start: be
            // conservative and retry against the fresher view.
            Some(&(oldest, _)) if oldest > epoch0 + 1 => true,
            None => true,
            _ => inner
                .publish_log
                .iter()
                .any(|(epoch, hashes)| *epoch > epoch0 && !hashes.is_disjoint(missed)),
        }
    }

    /// Splices one staged session into the shared store, in
    /// `FLUSH_ORDER`: reserves real id ranges, remaps the session's
    /// private ids onto them, writes chunks → manifests → hooks →
    /// recipes through the shared substrate (so ledger accounting and the
    /// write-through hook index stay exact), absorbs the session's
    /// counters, and flushes. Returns the hook hashes published.
    fn splice_locked(
        inner: &mut StoreInner,
        mut staging: MhdEngine<StagingBackend>,
    ) -> DaemonResult<FxHashSet<ChunkHash>> {
        let delta: SessionDelta = staging.export_delta();
        let chunk_span = staging.substrate().chunk_id_watermark() - LOCAL_ID_BASE;
        let manifest_span = staging.substrate().manifest_id_watermark() - LOCAL_ID_BASE;
        let overlay = staging.substrate_mut().backend_mut().take_staged();

        let parse_id = |name: &str| -> DaemonResult<u64> {
            u64::from_str_radix(name, 16)
                .map_err(|_| DaemonError::State(format!("staged object with odd name {name:?}")))
        };

        let sub = inner.engine.substrate_mut();
        let chunk_base = sub.reserve_chunk_ids(chunk_span);
        let manifest_base = sub.reserve_manifest_ids(manifest_span);
        let map_chunk = move |id: DiskChunkId| {
            if id.0 >= LOCAL_ID_BASE {
                DiskChunkId(id.0 - LOCAL_ID_BASE + chunk_base)
            } else {
                id
            }
        };
        let map_manifest = move |id: ManifestId| {
            if id.0 >= LOCAL_ID_BASE {
                ManifestId(id.0 - LOCAL_ID_BASE + manifest_base)
            } else {
                id
            }
        };

        // 1. DiskChunks (content hashes were recorded when staging sealed
        //    them; the splice re-registers them for compaction/GC).
        for (name, data) in overlay.fresh_of(FileKind::DiskChunk) {
            let local = DiskChunkId(parse_id(name)?);
            let hash = staging.substrate().disk_chunk_hash(local).ok_or_else(|| {
                DaemonError::State(format!("staged chunk {name} lost its content hash"))
            })?;
            sub.splice_disk_chunk(map_chunk(local), data, hash)?;
        }

        // 2. Manifests: the session's own (remap id and containers)…
        for (name, data) in overlay.fresh_of(FileKind::Manifest) {
            let local = ManifestId(parse_id(name)?);
            let mut manifest = Manifest::decode(local, data)?;
            manifest.id = map_manifest(local);
            for entry in &mut manifest.entries {
                entry.container = map_chunk(entry.container);
            }
            sub.write_manifest(&manifest)?;
        }
        //    …then copy-on-write rewrites of *shared* manifests (HHR
        //    write-backs against pre-existing streams). The original may
        //    have been GC'd or concurrently rewritten since phase 1
        //    copied it; skipping a vanished one is safe — manifests are
        //    dedup metadata, restores go through FileManifests, and a
        //    lost concurrent rewrite leaves a still-valid older tiling.
        for (name, data) in overlay.updated_of(FileKind::Manifest) {
            let id = ManifestId(parse_id(name)?);
            if !sub.manifest_exists(id) {
                continue;
            }
            let mut manifest = Manifest::decode(id, data)?;
            for entry in &mut manifest.entries {
                entry.container = map_chunk(entry.container);
            }
            sub.update_manifest(&manifest)?;
        }

        // 3. Hooks: name is the chunk hash, payload's first 8 LE bytes
        //    the target manifest id. write_hook's exists-guard keeps the
        //    store-wide first-mapping-wins rule under concurrency.
        let mut hook_hashes = FxHashSet::default();
        for (name, payload) in overlay.fresh_of(FileKind::Hook) {
            let hash = ChunkHash::from_hex(name)
                .map_err(|e| DaemonError::State(format!("staged hook name {name:?}: {e}")))?;
            let raw: [u8; 8] =
                payload.get(..8).and_then(|b| b.try_into().ok()).ok_or_else(|| {
                    DaemonError::State(format!("staged hook {name} payload truncated"))
                })?;
            let target = map_manifest(ManifestId(u64::from_le_bytes(raw)));
            sub.write_hook(hash, target)?;
            hook_hashes.insert(hash);
        }

        // 4. FileManifests (recipes) — last, per FLUSH_ORDER.
        for (name, data) in overlay.fresh_of(FileKind::FileManifest) {
            let staged = FileManifest::decode(data)?;
            let mut recipe = FileManifest::new();
            for extent in staged.extents() {
                recipe
                    .push(mhd_store::Extent { container: map_chunk(extent.container), ..*extent });
            }
            sub.write_file_manifest(name, &recipe)?;
        }

        sub.flush()?;
        let hashes: Vec<ChunkHash> = hook_hashes.iter().copied().collect();
        inner.engine.absorb_delta(&delta, &hashes);
        Ok(hook_hashes)
    }

    /// Best-effort rollback after a failed splice or persist: deletes the
    /// session's recipes (so the stream name is reusable and no recipe
    /// can outlive the objects a later open-time rollback may delete) and
    /// flushes the deletions — they must be durable *before* the wip
    /// record is removed, because open-time recovery only rolls back
    /// recipes named by a wip record. Orphaned chunks/manifests/hooks
    /// stay as unreferenced garbage above the persisted watermark: a
    /// later protected GC or the next open-time rollback reclaims them.
    fn undo_failed_publish(inner: &mut StoreInner, recipe_prefix: &str) {
        let sub = inner.engine.substrate_mut();
        for name in sub.list_file_manifests() {
            if name.starts_with(recipe_prefix) {
                let _ = sub.delete_file_manifest(&name);
            }
        }
        let _ = sub.flush();
    }

    /// Arms (or, with [`FaultPoint::never`], disarms) the fault-injection
    /// layer in the daemon's backend stack. Test instrumentation for the
    /// commit failure paths; the layer never fires unless armed.
    pub fn arm_fault(&self, point: FaultPoint) {
        let mut inner = self.inner.lock();
        inner.engine.substrate_mut().backend_mut().inner_mut().arm(point);
    }

    /// Discards a staged session. Nothing reached the store, so this only
    /// retires the intent record and releases the lease.
    pub fn abort(&self, session: WriteSession) {
        self.cleanup_session(&session.tenant, &session.label, session.sid);
        mhd_obs::counter!("daemon.aborts").inc();
    }

    fn cleanup_session(&self, tenant: &str, label: &str, sid: u64) {
        // Removal failure is not actionable here: a leftover record only
        // causes a benign re-rollback of an already-clean stream.
        let _ = std::fs::remove_file(self.wip_path(tenant, label));
        self.registry.deregister(sid);
    }

    /// A throwaway read-only substrate over the store's directory tree.
    /// Safe without the engine lock: commits flush (in `FLUSH_ORDER`)
    /// before they acknowledge, so every listed recipe is complete on
    /// disk, and GC marks recipes live before sweeping.
    fn read_view(&self) -> DaemonResult<Substrate<DirBackend>> {
        Ok(Substrate::new(DirBackend::create_with(&self.root, Durability::None)?))
    }

    /// Restores one file. `name` is tenant-relative (`label/path`, as
    /// listed by [`list`](SharedStore::list)). Runs on a read-only view —
    /// a large restore never blocks commits.
    pub fn restore(&self, tenant: &str, name: &str) -> DaemonResult<Vec<u8>> {
        if !valid_tenant(tenant) {
            return Err(DaemonError::Protocol(format!("invalid tenant name {tenant:?}")));
        }
        let full = format!("{tenant}/{name}");
        let mut view = self.read_view()?;
        Ok(mhd_core::restore::restore_file(&mut view, &full)?)
    }

    /// Lists `tenant`'s recipes, tenant prefix stripped. Lock-free, like
    /// [`restore`](SharedStore::restore).
    pub fn list(&self, tenant: &str) -> DaemonResult<Vec<String>> {
        if !valid_tenant(tenant) {
            return Err(DaemonError::Protocol(format!("invalid tenant name {tenant:?}")));
        }
        let prefix = safe_name(&format!("{tenant}/"));
        let mut view = self.read_view()?;
        Ok(view
            .list_file_manifests()
            .into_iter()
            .filter_map(|n| n.strip_prefix(&prefix).map(str::to_string))
            .collect())
    }

    /// Which of `hashes` (hex) the store has hooks for — answered from
    /// the shared index, without the engine lock.
    pub fn have(&self, hashes: &[String]) -> Vec<bool> {
        hashes
            .iter()
            .map(|hex| {
                mhd_hash::ChunkHash::from_hex(hex).map(|h| self.index.contains(&h)).unwrap_or(false)
            })
            .collect()
    }

    /// Protected mark-sweep garbage collection: sweeps only below
    /// `min(current watermark, every active session's watermark)`, so an
    /// in-progress session can never lose objects it wrote. Safe to call
    /// with sessions open.
    pub fn gc(&self) -> DaemonResult<GcReport> {
        let mut inner = self.inner.lock();
        // Drain the manifest cache first: GC must not race a dirty
        // write-back, and a cold cache can't resurrect a swept manifest.
        let _ = inner.engine.finish()?;
        let watermark = inner.engine.substrate().chunk_id_watermark();
        let cutoff = self.registry.min_watermark().map_or(watermark, |w| w.min(watermark));
        let report = mhd_core::gc::collect_protected(inner.engine.substrate_mut(), cutoff)?;
        Self::persist_locked(&self.root, self.ecs, self.sd, self.chunker, &mut inner)?;
        mhd_obs::counter!("daemon.gc_runs").inc();
        Ok(report)
    }

    /// Runs the structural integrity checker over the whole store.
    pub fn fsck(&self) -> mhd_core::fsck::IntegrityReport {
        let mut inner = self.inner.lock();
        mhd_core::fsck::check_store(inner.engine.substrate_mut())
    }

    /// A statistics snapshot (store totals + daemon live state).
    pub fn stats(&self) -> DaemonStats {
        let inner = self.inner.lock();
        let state = inner.engine.export_state();
        DaemonStats {
            input_bytes: state.input_bytes,
            dup_bytes: state.dup_bytes,
            files: state.files,
            chunks_stored: state.chunks_stored,
            stored_bytes: inner.engine.substrate().ledger().total_output_bytes(),
            streams: inner.streams,
            active_sessions: self.registry.active(),
            active_streams: self.registry.active_prefixes(),
            index_entries: self.index.len(),
            index_occupancy: self.index.occupancy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn temp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mhd-daemon-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn random_bytes(seed: u64, len: usize) -> Vec<u8> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = vec![0u8; len];
        rng.fill_bytes(&mut data);
        data
    }

    fn small_config() -> DaemonConfig {
        DaemonConfig { ecs: 512, sd: 8, ..DaemonConfig::default() }
    }

    #[test]
    fn commit_restore_round_trip_per_tenant() {
        let root = temp_root("roundtrip");
        let store = SharedStore::open(&root, small_config()).unwrap();

        let data_a = random_bytes(1, 60_000);
        let data_b = random_bytes(2, 40_000);
        let mut sa = store.begin_session("alice", "day0").unwrap();
        sa.stage("disk.img", &data_a).unwrap();
        let mut sb = store.begin_session("bob", "day0").unwrap();
        sb.stage("disk.img", &data_b).unwrap();

        let ra = store.commit(sa).unwrap();
        assert_eq!(ra.files, 1);
        assert_eq!(ra.input_bytes, 60_000);
        store.commit(sb).unwrap();

        assert_eq!(store.restore("alice", "day0/disk.img").unwrap(), data_a);
        assert_eq!(store.restore("bob", "day0/disk.img").unwrap(), data_b);
        // Listings are tenant-scoped.
        assert_eq!(store.list("alice").unwrap(), vec!["day0_disk.img".to_string()]);
        assert_eq!(store.list("bob").unwrap(), vec!["day0_disk.img".to_string()]);
        assert!(store.restore("alice", "day0/nope.img").is_err());
        assert_eq!(store.registry().active(), 0);
        assert!(store.fsck().is_healthy());

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn identical_corpora_across_tenants_share_chunks() {
        let root = temp_root("xdedup");
        let store = SharedStore::open(&root, small_config()).unwrap();
        let data = random_bytes(3, 80_000);

        let mut s = store.begin_session("alice", "d").unwrap();
        s.stage("img", &data).unwrap();
        let first = store.commit(s).unwrap();

        let mut s = store.begin_session("bob", "d").unwrap();
        s.stage("img", &data).unwrap();
        let second = store.commit(s).unwrap();

        assert!(
            second.grown_bytes < first.grown_bytes / 5,
            "identical data from another tenant must dedup (first grew {}, second grew {})",
            first.grown_bytes,
            second.grown_bytes
        );
        assert_eq!(store.restore("bob", "d/img").unwrap(), data);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn stream_names_are_exclusive_and_released_on_abort() {
        let root = temp_root("lease");
        let store = SharedStore::open(&root, small_config()).unwrap();

        let s1 = store.begin_session("t", "day0").unwrap();
        // Active lease blocks a second session on the same stream…
        assert!(store.begin_session("t", "day0").is_err());
        // …but not a different stream.
        let s2 = store.begin_session("t", "day1").unwrap();
        store.abort(s2);
        store.abort(s1);

        // After abort the stream name is reusable.
        let mut s = store.begin_session("t", "day0").unwrap();
        s.stage("f", &random_bytes(4, 10_000)).unwrap();
        store.commit(s).unwrap();
        // A committed stream's name is taken for good.
        assert!(store.begin_session("t", "day0").is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn gc_protects_active_sessions() {
        let root = temp_root("gcprotect");
        let store = SharedStore::open(&root, small_config()).unwrap();

        let mut s = store.begin_session("t", "base").unwrap();
        s.stage("f", &random_bytes(5, 50_000)).unwrap();
        store.commit(s).unwrap();

        // An idle session pins the watermark: even though nothing above it
        // exists yet, a GC run must report a cutoff that spares future
        // writes. Commit afterwards and verify the data survived GC.
        let mut s = store.begin_session("t", "next").unwrap();
        let data = random_bytes(6, 50_000);
        s.stage("f", &data).unwrap();
        let _ = store.gc().unwrap();
        store.commit(s).unwrap();
        assert_eq!(store.restore("t", "next/f").unwrap(), data);
        assert!(store.fsck().is_healthy());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn torn_session_rolls_back_at_open() {
        let root = temp_root("torn");
        let committed = random_bytes(7, 30_000);
        {
            let store = SharedStore::open(&root, small_config()).unwrap();
            let mut s = store.begin_session("t", "good").unwrap();
            s.stage("f", &committed).unwrap();
            store.commit(s).unwrap();
            // Simulate a crash mid-session: begin (which writes the wip
            // intent record) and drop the store without commit/abort.
            let mut s = store.begin_session("t", "torn").unwrap();
            s.stage("f", &random_bytes(8, 30_000)).unwrap();
            std::mem::forget(s);
        }
        // The wip record survived the "crash".
        let wip = std::fs::read_dir(SharedStore::wip_dir(&root)).unwrap().count();
        assert_eq!(wip, 1);

        let store = SharedStore::open(&root, small_config()).unwrap();
        let recovery = store.recovery().clone();
        assert_eq!(recovery.sessions_rolled_back, 1);
        // The torn stream is gone, the committed one intact, and the
        // store is structurally healthy.
        assert_eq!(store.list("t").unwrap(), vec!["good_f".to_string()]);
        assert_eq!(store.restore("t", "good/f").unwrap(), committed);
        assert!(store.fsck().is_healthy());
        // The lease is free again.
        let s = store.begin_session("t", "torn").unwrap();
        store.abort(s);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn have_answers_from_the_shared_index() {
        let root = temp_root("have");
        let store = SharedStore::open(&root, small_config()).unwrap();
        let mut s = store.begin_session("t", "d").unwrap();
        s.stage("f", &random_bytes(9, 20_000)).unwrap();
        store.commit(s).unwrap();

        assert!(!store.index().is_empty(), "commit must publish hooks");
        let hooks: Vec<String> = {
            // Ask for a real hook plus a bogus one.
            let stats = store.stats();
            assert!(stats.index_entries > 0);
            vec!["0000000000000000000000000000000000000000".to_string()]
        };
        assert_eq!(store.have(&hooks), vec![false]);
        assert_eq!(store.have(&["nothex".to_string()]), vec![false]);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_resumes_dedup_against_persisted_state() {
        let root = temp_root("resume");
        let data = random_bytes(10, 70_000);
        {
            let store = SharedStore::open(&root, small_config()).unwrap();
            let mut s = store.begin_session("t", "day0").unwrap();
            s.stage("img", &data).unwrap();
            store.commit(s).unwrap();
        }
        let store = SharedStore::open(&root, small_config()).unwrap();
        assert!(store.recovery().is_clean());
        let mut s = store.begin_session("t", "day1").unwrap();
        s.stage("img", &data).unwrap();
        let report = store.commit(s).unwrap();
        assert!(
            report.grown_bytes < report.input_bytes / 5,
            "reopened store must dedup against day0 (grew {} of {})",
            report.grown_bytes,
            report.input_bytes
        );
        assert_eq!(store.restore("t", "day1/img").unwrap(), data);
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn publish_failure_releases_lease_and_gc_recovers() {
        let root = temp_root("faultpub");
        let store = SharedStore::open(&root, small_config()).unwrap();
        let data = random_bytes(11, 40_000);

        // Fail the first Manifest write of the publish splice: the
        // session's chunks are already on disk, its manifests are not.
        let mut s = store.begin_session("t", "d").unwrap();
        s.stage("f", &data).unwrap();
        store.arm_fault(FaultPoint::write(Some(FileKind::Manifest), 0));
        assert!(store.commit(s).is_err(), "injected fault must surface");
        store.arm_fault(FaultPoint::never());

        // The lease and the intent record are released — the stream is
        // not stuck and GC is not pinned at a dead session's watermark.
        assert_eq!(store.registry().active(), 0);
        assert_eq!(std::fs::read_dir(SharedStore::wip_dir(&root)).unwrap().count(), 0);

        // The GC cutoff recovered: a run reclaims the orphaned splice.
        let report = store.gc().unwrap();
        assert!(report.containers_deleted >= 1, "orphans must be swept: {report:?}");

        // A retry of the very same tenant/label succeeds end to end.
        let mut s = store.begin_session("t", "d").unwrap();
        s.stage("f", &data).unwrap();
        store.commit(s).unwrap();
        assert_eq!(store.restore("t", "d/f").unwrap(), data);
        assert!(store.fsck().is_healthy());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn persist_failure_releases_lease_and_retry_succeeds() {
        let root = temp_root("faultpersist");
        let store = SharedStore::open(&root, small_config()).unwrap();
        let data0 = random_bytes(12, 40_000);
        let mut s = store.begin_session("t", "d0").unwrap();
        s.stage("f", &data0).unwrap();
        store.commit(s).unwrap();

        // Make `state.json` unwritable: rename cannot replace a directory.
        let state = root.join("session/state.json");
        std::fs::remove_file(&state).unwrap();
        std::fs::create_dir(&state).unwrap();

        let data1 = random_bytes(13, 40_000);
        let mut s = store.begin_session("t", "d1").unwrap();
        s.stage("f", &data1).unwrap();
        assert!(store.commit(s).is_err(), "persist failure must surface");

        // The historical bug: this path leaked the registry lease and the
        // wip intent record, wedging the stream until restart.
        assert_eq!(store.registry().active(), 0);
        assert_eq!(std::fs::read_dir(SharedStore::wip_dir(&root)).unwrap().count(), 0);

        // Repair the state path; the same stream commits cleanly.
        std::fs::remove_dir(&state).unwrap();
        let mut s = store.begin_session("t", "d1").unwrap();
        s.stage("f", &data1).unwrap();
        store.commit(s).unwrap();
        assert_eq!(store.restore("t", "d1/f").unwrap(), data1);
        assert_eq!(store.restore("t", "d0/f").unwrap(), data0);
        let _ = store.gc().unwrap();
        assert!(store.fsck().is_healthy());
        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn parallel_commits_match_serial_dedup_within_tolerance() {
        // Four machines share a 60 KiB OS base plus a unique tail — the
        // pathological day-0 race where every session misses the base
        // hooks at once. Optimistic publish-time validation must make the
        // parallel run store the base once, like the serial run does.
        let base = random_bytes(20, 60_000);
        let datas: Vec<Vec<u8>> = (0..4u64)
            .map(|i| {
                let mut d = base.clone();
                d.extend_from_slice(&random_bytes(21 + i, 20_000));
                d
            })
            .collect();

        let serial_root = temp_root("eqserial");
        let serial = SharedStore::open(&serial_root, small_config()).unwrap();
        for (i, data) in datas.iter().enumerate() {
            let mut s = serial.begin_session("t", &format!("m{i}")).unwrap();
            s.stage("disk.img", data).unwrap();
            serial.commit(s).unwrap();
        }
        let serial_chunks = serial.stats().chunks_stored;

        let par_root = temp_root("eqpar");
        let par = Arc::new(SharedStore::open(&par_root, small_config()).unwrap());
        std::thread::scope(|scope| {
            for (i, data) in datas.iter().enumerate() {
                let par = Arc::clone(&par);
                scope.spawn(move || {
                    let mut s = par.begin_session("t", &format!("m{i}")).unwrap();
                    s.stage("disk.img", data).unwrap();
                    par.commit(s).unwrap();
                });
            }
        });

        let par_chunks = par.stats().chunks_stored;
        assert!(
            par_chunks.abs_diff(serial_chunks) <= 2,
            "parallel dedup must match serial within the hysteresis \
             tolerance: serial {serial_chunks}, parallel {par_chunks}"
        );
        for (i, data) in datas.iter().enumerate() {
            assert_eq!(&par.restore("t", &format!("m{i}/disk.img")).unwrap(), data);
        }
        assert_eq!(par.registry().active(), 0);
        assert!(par.fsck().is_healthy());
        std::fs::remove_dir_all(&serial_root).unwrap();
        std::fs::remove_dir_all(&par_root).unwrap();
    }

    #[test]
    fn staging_validates_paths_and_duplicates() {
        let root = temp_root("staging");
        let store = SharedStore::open(&root, small_config()).unwrap();
        let mut s = store.begin_session("t", "d").unwrap();
        assert!(s.stage("../escape", b"x").is_err());
        assert!(s.stage("/abs", b"x").is_err());
        s.stage("ok.bin", b"x").unwrap();
        assert!(s.stage("ok.bin", b"y").is_err(), "duplicate path");
        assert_eq!(s.staged_files(), 1);
        store.abort(s);
        // Committing an empty session is an error, not a no-op.
        let s = store.begin_session("t", "d2").unwrap();
        assert!(store.commit(s).is_err());
        std::fs::remove_dir_all(&root).unwrap();
    }
}
