//! Blocking client for the `mhd serve` socket protocol.
//!
//! One [`Client`] is one connection: attach a tenant with
//! [`open`](Client::open), then run sessions
//! (`begin` → `send_file`… → `commit`/`abort`) and reads (`ls`,
//! `restore`, `have`). The wire format is documented in
//! [`crate::protocol`].

use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

use crate::error::{DaemonError, DaemonResult};
use crate::protocol::Request;

/// What the server reported for a committed session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitSummary {
    /// Files committed.
    pub files: u64,
    /// Raw input bytes sent.
    pub input_bytes: u64,
    /// Bytes the shared store actually grew by.
    pub grown_bytes: u64,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connects to a daemon's Unix socket.
    pub fn connect(socket: &Path) -> DaemonResult<Client> {
        let stream = UnixStream::connect(socket)?;
        Ok(Client { reader: BufReader::new(stream) })
    }

    fn send_line(&mut self, request: &Request) -> DaemonResult<()> {
        let stream = self.reader.get_mut();
        stream.write_all(request.encode().as_bytes())?;
        stream.write_all(b"\n")?;
        Ok(())
    }

    /// Reads one reply line; `OK …` yields the rest, `ERR …` becomes
    /// [`DaemonError::Remote`].
    fn read_reply(&mut self) -> DaemonResult<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(DaemonError::Protocol("server closed the connection".into()));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(rest) = line.strip_prefix("OK") {
            Ok(rest.trim_start().to_string())
        } else if let Some(msg) = line.strip_prefix("ERR") {
            Err(DaemonError::Remote(msg.trim_start().to_string()))
        } else {
            Err(DaemonError::Protocol(format!("unparseable reply {line:?}")))
        }
    }

    fn round_trip(&mut self, request: &Request) -> DaemonResult<String> {
        self.send_line(request)?;
        self.read_reply()
    }

    /// Attaches this connection to a tenant namespace.
    pub fn open(&mut self, tenant: &str) -> DaemonResult<()> {
        self.round_trip(&Request::Open { tenant: tenant.to_string() }).map(|_| ())
    }

    /// Starts a write session for a new backup stream.
    pub fn begin(&mut self, label: &str) -> DaemonResult<()> {
        self.round_trip(&Request::Begin { label: label.to_string() }).map(|_| ())
    }

    /// Stages one file in the open session.
    pub fn send_file(&mut self, path: &str, data: &[u8]) -> DaemonResult<()> {
        self.send_line(&Request::File { len: data.len() as u64, path: path.to_string() })?;
        self.reader.get_mut().write_all(data)?;
        self.read_reply().map(|_| ())
    }

    /// Commits the open session.
    pub fn commit(&mut self) -> DaemonResult<CommitSummary> {
        let reply = self.round_trip(&Request::Commit)?;
        let mut fields = reply.split_ascii_whitespace().map(|f| f.parse::<u64>());
        match (fields.next(), fields.next(), fields.next()) {
            (Some(Ok(files)), Some(Ok(input_bytes)), Some(Ok(grown_bytes))) => {
                Ok(CommitSummary { files, input_bytes, grown_bytes })
            }
            _ => Err(DaemonError::Protocol(format!("bad COMMIT reply {reply:?}"))),
        }
    }

    /// Aborts the open session.
    pub fn abort(&mut self) -> DaemonResult<()> {
        self.round_trip(&Request::Abort).map(|_| ())
    }

    /// Lists the tenant's recipes.
    pub fn ls(&mut self) -> DaemonResult<Vec<String>> {
        let reply = self.round_trip(&Request::Ls)?;
        Ok(reply.split_ascii_whitespace().map(str::to_string).collect())
    }

    /// Restores one recipe (`label/path`) to bytes.
    pub fn restore(&mut self, name: &str) -> DaemonResult<Vec<u8>> {
        let reply = self.round_trip(&Request::Restore { name: name.to_string() })?;
        let len: u64 = reply
            .parse()
            .map_err(|_| DaemonError::Protocol(format!("bad RESTORE length {reply:?}")))?;
        let mut data = vec![0u8; len as usize];
        self.reader.read_exact(&mut data)?;
        Ok(data)
    }

    /// Probes which of `hashes` (hex) the store already has.
    pub fn have(&mut self, hashes: &[String]) -> DaemonResult<Vec<bool>> {
        let reply = self.round_trip(&Request::Have { hashes: hashes.to_vec() })?;
        Ok(reply.chars().map(|c| c == '1').collect())
    }

    /// One-line JSON statistics from the server.
    pub fn stats(&mut self) -> DaemonResult<String> {
        self.round_trip(&Request::Stats)
    }

    /// Runs protected garbage collection; returns the server's summary
    /// line (`deleted protected bytes_freed`).
    pub fn gc(&mut self) -> DaemonResult<String> {
        self.round_trip(&Request::Gc)
    }

    /// Runs the integrity checker; `Ok` means healthy.
    pub fn fsck(&mut self) -> DaemonResult<String> {
        self.round_trip(&Request::Fsck)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> DaemonResult<()> {
        self.round_trip(&Request::Ping).map(|_| ())
    }

    /// Asks the daemon to stop (drains handlers, persists state).
    pub fn shutdown(&mut self) -> DaemonResult<()> {
        self.round_trip(&Request::Shutdown).map(|_| ())
    }

    /// Backs up a directory as one session: files are read in sorted
    /// order, staged under their `/`-separated relative paths, and
    /// committed. The session label is `label`; a failure aborts the
    /// session before returning.
    pub fn backup_dir(&mut self, dir: &Path, label: &str) -> DaemonResult<CommitSummary> {
        let mut paths: Vec<std::path::PathBuf> = Vec::new();
        collect_files(dir, &mut paths)?;
        paths.sort();
        if paths.is_empty() {
            return Err(DaemonError::Protocol(format!("{} contains no files", dir.display())));
        }
        self.begin(label)?;
        for path in paths {
            let rel = path.strip_prefix(dir).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let data = match std::fs::read(&path) {
                Ok(data) => data,
                Err(e) => {
                    let _ = self.abort();
                    return Err(e.into());
                }
            };
            if let Err(e) = self.send_file(&rel, &data) {
                let _ = self.abort();
                return Err(e);
            }
        }
        self.commit()
    }
}

fn collect_files(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_files(&path, out)?;
        } else if ty.is_file() {
            out.push(path);
        } // symlinks and specials are skipped
    }
    Ok(())
}
