//! The per-session staging substrate behind two-phase commits.
//!
//! Phase 1 of a daemon commit runs a full dedup pipeline *outside* the
//! engine lock. [`StagingBackend`] is the backend that pipeline runs on:
//! reads fall through to a read-only directory view of the shared store,
//! while writes land in in-memory overlays — [`Overlay::fresh`] for
//! brand-new objects (the session's chunks, manifests, hooks and recipes,
//! allocated in a private id range far above the shared store's) and
//! [`Overlay::updated`] for copy-on-write rewrites of shared manifests
//! (HHR write-backs). Phase 2 drains the overlays with
//! [`StagingBackend::take_staged`] and splices them into the shared store
//! under the lock.
//!
//! The base view reads the directory tree directly, so it only observes
//! objects the durable backend has flushed. The shared store flushes in
//! `FileKind::FLUSH_ORDER` (referee before referrer), which gives the
//! staging pipeline the invariant it needs: a visible manifest implies
//! its chunks are visible. The one racy edge — the lock-free hook index
//! claiming a hook whose manifest is not flushed yet — is tolerated by
//! the engine's presence-oracle mode (a missing manifest degrades to a
//! lookup miss).

use std::collections::BTreeMap;
use std::path::Path;

use bytes::Bytes;
use mhd_store::{
    Backend, DirBackend, Durability, FileKind, RecoveryReport, StoreError, StoreResult,
};

/// The staged writes of one commit pipeline, keyed by object name within
/// each kind. `BTreeMap` keeps splice order deterministic (name order
/// equals id order for fixed-width hex names).
#[derive(Debug, Default)]
pub struct Overlay {
    /// Brand-new objects, named in the session's private id range (or by
    /// content hash, for hooks; by recipe name, for file manifests).
    pub fresh: [BTreeMap<String, Vec<u8>>; 4],
    /// Copy-on-write rewrites of objects that exist in the shared store
    /// (only manifests: the HHR write-back is the sole mutation in the
    /// system).
    pub updated: [BTreeMap<String, Vec<u8>>; 4],
}

/// Index of `kind` into the per-kind overlay arrays.
fn slot(kind: FileKind) -> usize {
    match kind {
        FileKind::DiskChunk => 0,
        FileKind::Manifest => 1,
        FileKind::Hook => 2,
        FileKind::FileManifest => 3,
    }
}

impl Overlay {
    /// The fresh objects of one kind, in name order.
    pub fn fresh_of(&self, kind: FileKind) -> &BTreeMap<String, Vec<u8>> {
        &self.fresh[slot(kind)]
    }

    /// The copy-on-write rewrites of one kind, in name order.
    pub fn updated_of(&self, kind: FileKind) -> &BTreeMap<String, Vec<u8>> {
        &self.updated[slot(kind)]
    }
}

/// Copy-on-write backend for one staging pipeline: reads fall through to
/// a read-only view of the shared store's directory tree, writes stay in
/// memory until the publish phase splices them in. See the module docs.
pub struct StagingBackend {
    base: DirBackend,
    overlay: Overlay,
}

impl StagingBackend {
    /// Opens a staging view over the shared store rooted at `root`.
    ///
    /// The base view is a plain [`DirBackend`] used read-only (durability
    /// is irrelevant; `Durability::None` avoids pointless fsync setup).
    /// It is never `recover()`ed — recovery would delete the live store's
    /// in-flight tmp files.
    pub fn over(root: &Path) -> StoreResult<Self> {
        Ok(StagingBackend {
            base: DirBackend::create_with(root, Durability::None)?,
            overlay: Overlay::default(),
        })
    }

    /// Drains the staged writes for the publish phase.
    pub fn take_staged(&mut self) -> Overlay {
        std::mem::take(&mut self.overlay)
    }

    fn staged(&self, kind: FileKind, name: &str) -> Option<&Vec<u8>> {
        self.overlay.fresh[slot(kind)]
            .get(name)
            .or_else(|| self.overlay.updated[slot(kind)].get(name))
    }
}

impl Backend for StagingBackend {
    fn put(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        // Only overlay collisions are refused here. The shared base is
        // deliberately *not* consulted: phase 1 holds no lock, so a base
        // existence check races with other sessions' publish phases — a
        // hook another session splices in mid-pipeline would fail this
        // whole commit with AlreadyExists. Collisions against the shared
        // store are resolved under the lock at splice time instead:
        // write_hook's exists-guard keeps first-mapping-wins for hooks,
        // chunk/manifest names are private staged ids that cannot clash,
        // and recipe names are protected by the stream lease.
        if self.staged(kind, name).is_some() {
            return Err(StoreError::AlreadyExists { kind, name: name.to_string() });
        }
        self.overlay.fresh[slot(kind)].insert(name.to_string(), data.to_vec());
        Ok(())
    }

    fn update(&mut self, kind: FileKind, name: &str, data: &[u8]) -> StoreResult<()> {
        if let Some(entry) = self.overlay.fresh[slot(kind)].get_mut(name) {
            *entry = data.to_vec();
            return Ok(());
        }
        if let Some(entry) = self.overlay.updated[slot(kind)].get_mut(name) {
            *entry = data.to_vec();
            return Ok(());
        }
        if self.base.exists(kind, name) {
            // Copy-on-write: the shared object stays untouched until the
            // publish phase decides what to do with the rewrite.
            self.overlay.updated[slot(kind)].insert(name.to_string(), data.to_vec());
            return Ok(());
        }
        Err(StoreError::NotFound { kind, name: name.to_string() })
    }

    fn get(&mut self, kind: FileKind, name: &str) -> StoreResult<Bytes> {
        if let Some(data) = self.staged(kind, name) {
            return Ok(Bytes::from(data.clone()));
        }
        self.base.get(kind, name)
    }

    fn get_range(
        &mut self,
        kind: FileKind,
        name: &str,
        offset: u64,
        len: u64,
    ) -> StoreResult<Bytes> {
        if let Some(data) = self.staged(kind, name) {
            let end = offset.saturating_add(len);
            if end > data.len() as u64 {
                return Err(StoreError::OutOfRange {
                    name: name.to_string(),
                    offset,
                    len,
                    size: data.len() as u64,
                });
            }
            return Ok(Bytes::from(data[offset as usize..end as usize].to_vec()));
        }
        self.base.get_range(kind, name, offset, len)
    }

    fn size_of(&mut self, kind: FileKind, name: &str) -> StoreResult<u64> {
        if let Some(data) = self.staged(kind, name) {
            return Ok(data.len() as u64);
        }
        self.base.size_of(kind, name)
    }

    fn exists(&mut self, kind: FileKind, name: &str) -> bool {
        self.staged(kind, name).is_some() || self.base.exists(kind, name)
    }

    fn count(&mut self, kind: FileKind) -> u64 {
        // Updated names exist in base already, so they don't add. A fresh
        // hook can transiently shadow a base hook another session
        // published after this pipeline started (put no longer consults
        // the racy base), overcounting by one until the splice resolves
        // it — tolerable for a staging view that only feeds pipeline
        // stats.
        self.base.count(kind) + self.overlay.fresh[slot(kind)].len() as u64
    }

    fn list(&mut self, kind: FileKind) -> Vec<String> {
        let mut names = self.base.list(kind);
        names.extend(self.overlay.fresh[slot(kind)].keys().cloned());
        names.sort();
        names
    }

    fn delete(&mut self, kind: FileKind, name: &str) -> StoreResult<()> {
        // The dedup pipeline never deletes; GC and rollback run on the
        // shared store, not on a staging view. Allow retracting a staged
        // write, refuse touching shared objects.
        if self.overlay.fresh[slot(kind)].remove(name).is_some() {
            return Ok(());
        }
        if self.overlay.updated[slot(kind)].remove(name).is_some() {
            return Ok(());
        }
        Err(StoreError::NotFound { kind, name: name.to_string() })
    }

    fn flush(&mut self) -> StoreResult<()> {
        // Staged writes are in-memory by design; durability happens at
        // publish time through the shared substrate.
        Ok(())
    }

    fn recover(&mut self) -> StoreResult<RecoveryReport> {
        Ok(RecoveryReport::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mhd-staging-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap(); // lint: allow(unwrap): test setup
        dir
    }

    #[test]
    fn overlay_shadows_and_merges_with_base() {
        let root = temp_root("overlay");
        let mut base = DirBackend::create_with(&root, Durability::None).unwrap(); // lint: allow(unwrap): test setup
        base.put(FileKind::DiskChunk, "base", b"old").unwrap(); // lint: allow(unwrap): test setup
        base.put(FileKind::Manifest, "m1", b"manifest-v1").unwrap(); // lint: allow(unwrap): test setup
        base.put(FileKind::Hook, "h1", b"hook-shared").unwrap(); // lint: allow(unwrap): test setup

        let mut s = StagingBackend::over(&root).unwrap(); // lint: allow(unwrap): test setup
                                                          // Reads fall through.
        assert_eq!(&s.get(FileKind::DiskChunk, "base").unwrap()[..], b"old"); // lint: allow(unwrap): asserted
                                                                              // Fresh writes stay in memory and shadow reads.
        s.put(FileKind::DiskChunk, "new", b"fresh").unwrap(); // lint: allow(unwrap): asserted
        assert_eq!(&s.get(FileKind::DiskChunk, "new").unwrap()[..], b"fresh"); // lint: allow(unwrap): asserted
        assert_eq!(&s.get_range(FileKind::DiskChunk, "new", 1, 3).unwrap()[..], b"res"); // lint: allow(unwrap): asserted
        assert!(s.get_range(FileKind::DiskChunk, "new", 3, 9).is_err());
        // Puts never overwrite staged objects…
        assert!(s.put(FileKind::DiskChunk, "new", b"x").is_err());
        // …but a name that exists only in the shared base is accepted:
        // phase 1 holds no lock, so an object another session splices in
        // mid-pipeline (a racing hook publish) must not fail this
        // pipeline — the splice resolves the collision under the lock
        // (write_hook's first-mapping-wins guard).
        s.put(FileKind::Hook, "h1", b"hook-mine").unwrap(); // lint: allow(unwrap): asserted
        assert_eq!(&s.get(FileKind::Hook, "h1").unwrap()[..], b"hook-mine"); // lint: allow(unwrap): asserted
                                                                             // Updates of shared objects copy on write.
        s.update(FileKind::Manifest, "m1", b"manifest-v2").unwrap(); // lint: allow(unwrap): asserted
        assert_eq!(&s.get(FileKind::Manifest, "m1").unwrap()[..], b"manifest-v2"); // lint: allow(unwrap): asserted
        assert_eq!(&base.get(FileKind::Manifest, "m1").unwrap()[..], b"manifest-v1"); // lint: allow(unwrap): asserted
                                                                                      // Listing and counting merge without double-counting.
        assert_eq!(s.count(FileKind::DiskChunk), 2);
        assert_eq!(s.list(FileKind::DiskChunk), vec!["base".to_string(), "new".to_string()]);
        assert_eq!(s.count(FileKind::Manifest), 1);

        let overlay = s.take_staged();
        assert_eq!(overlay.fresh_of(FileKind::DiskChunk).len(), 1);
        assert_eq!(overlay.updated_of(FileKind::Manifest).len(), 1);
        // Drained: the backend is clean again.
        assert_eq!(s.count(FileKind::DiskChunk), 1);
        let _ = std::fs::remove_dir_all(&root);
    }
}
