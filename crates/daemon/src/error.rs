//! The daemon's error type.

use mhd_core::EngineError;
use mhd_store::StoreError;

/// Everything a daemon or client operation can fail with.
#[derive(Debug)]
pub enum DaemonError {
    /// Storage substrate failure.
    Store(StoreError),
    /// Dedup engine failure.
    Engine(EngineError),
    /// Socket / filesystem I/O failure.
    Io(std::io::Error),
    /// Malformed or out-of-sequence protocol traffic (bad command, bad
    /// tenant name, oversized payload, `FILE` before `BEGIN`, …).
    Protocol(String),
    /// The server answered `ERR <message>` (client side).
    Remote(String),
    /// Session-state persistence or recovery failure.
    State(String),
}

/// Result alias for daemon operations.
pub type DaemonResult<T> = Result<T, DaemonError>;

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Store(e) => write!(f, "storage error: {e}"),
            DaemonError::Engine(e) => write!(f, "engine error: {e}"),
            DaemonError::Io(e) => write!(f, "i/o error: {e}"),
            DaemonError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            DaemonError::Remote(msg) => write!(f, "server error: {msg}"),
            DaemonError::State(msg) => write!(f, "session state error: {msg}"),
        }
    }
}

impl std::error::Error for DaemonError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DaemonError::Store(e) => Some(e),
            DaemonError::Engine(e) => Some(e),
            DaemonError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for DaemonError {
    fn from(e: StoreError) -> Self {
        DaemonError::Store(e)
    }
}

impl From<EngineError> for DaemonError {
    fn from(e: EngineError) -> Self {
        DaemonError::Engine(e)
    }
}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}
