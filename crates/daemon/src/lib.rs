//! Multi-tenant MHD backup daemon.
//!
//! `mhd serve` turns the single-process, single-stream `mhd` CLI store
//! into a long-running service: many clients back up and restore
//! **concurrently**, as isolated **tenants**, against **one shared
//! deduplicated datastore** — the ROADMAP's "production-scale backup
//! service" step. The crate is a library; the `mhd serve` / `mhd client`
//! subcommands are thin drivers over it, and the integration tests drive
//! it in-process.
//!
//! # Architecture (DESIGN.md §10 has the full picture)
//!
//! * **One store, sharded commit work.** All tenants share a single
//!   [`BatchedDirBackend`](mhd_store::BatchedDirBackend) datastore, so
//!   cross-tenant duplicate data is stored once — the whole point of a
//!   shared dedup store. Tenancy is a *namespace* property: recipe names
//!   are prefixed `tenant/label/path`, and every listing/restore is
//!   filtered by the tenant prefix, so metadata never leaks across
//!   tenants even though chunks are shared.
//! * **Sessions are staged, commits are atomic and two-phase.** A write
//!   session stages its files in memory ([`WriteSession`]); nothing
//!   touches the store until `COMMIT`. The commit's dedup pipeline runs
//!   *outside* the engine lock on a per-session [`StagingBackend`]
//!   (hook probes against the lock-free index), and only the short
//!   publish phase — id-range reservation, `FLUSH_ORDER` splice, state
//!   persist — serialises, so aggregate throughput grows with session
//!   count. A crash mid-commit is rolled back at the next open by the
//!   session **intent records** (`daemon/wip/<id>`) plus the persisted
//!   id watermarks — the daemon-level reuse of the store's tmp+rename
//!   intent discipline.
//! * **GC is watermark-protected.** Chunk ids are monotonic, so each
//!   session registers the id watermark at open
//!   ([`SessionRegistry`]); garbage collection sweeps only below
//!   `min(watermarks)` ([`mhd_core::gc::collect_protected`]). The
//!   protocol is model-checked exhaustively by `mhd-lint`'s `gc-protect`
//!   model.
//! * **The hook index is sharded and shared.** [`SharedHookIndex`] keeps
//!   the hash→manifest hook mapping in N `RwLock` shards, kept coherent
//!   by [`IndexingBackend`] on the store's own write path; `HAVE` queries
//!   and stats read it without the engine lock, with per-shard `shard=N`
//!   obs attribution.
//!
//! # Quick use
//!
//! ```
//! use mhd_daemon::{Client, Daemon, DaemonConfig};
//! # let dir = std::env::temp_dir().join(format!("mhd-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! # std::fs::create_dir_all(&dir).unwrap();
//! let store = dir.join("store");
//! let socket = dir.join("mhd.sock");
//!
//! let daemon = Daemon::open(&store, DaemonConfig::default())?;
//! let handle = daemon.spawn(&socket)?;
//!
//! let mut client = Client::connect(&socket)?;
//! client.open("alice")?;
//! client.begin("day0")?;
//! client.send_file("disk.img", b"not much of a disk image")?;
//! let commit = client.commit()?;
//! assert_eq!(commit.files, 1);
//! let back = client.restore("day0/disk.img")?;
//! assert_eq!(back, b"not much of a disk image");
//! client.shutdown()?;
//! handle.join()?;
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok::<(), mhd_daemon::DaemonError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod error;
mod index;
mod protocol;
mod registry;
mod server;
mod shared;
mod staging;

pub use client::{Client, CommitSummary};
pub use error::{DaemonError, DaemonResult};
pub use index::{IndexingBackend, SharedHookIndex};
pub use protocol::{Request, MAX_FILE_BYTES, MAX_LINE_BYTES};
pub use registry::SessionRegistry;
pub use server::{Daemon, ServeHandle};
pub use shared::{
    CommitReport, DaemonConfig, DaemonStats, RecoverySummary, SharedStore, WriteSession,
    LOCAL_ID_BASE, MAX_COMMIT_RETRIES,
};
pub use staging::{Overlay, StagingBackend};
