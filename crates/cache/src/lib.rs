//! RAM caching for Manifests.
//!
//! The paper's deduplicator keeps "a number of Manifests, each of which is
//! organized as a hash table" in an in-RAM cache: an incoming chunk is a
//! duplicate if its hash matches a cached Manifest (data locality makes
//! this the common hit path). "If the cache becomes full ... one Manifest
//! would be freed following the Least-Recently-Used (LRU) policy. A
//! Manifest that has been set dirty, is written back to the disk before it
//! is freed."
//!
//! [`LruCache`] is a general-purpose O(1) LRU (hash map + intrusive
//! doubly-linked list over a slab), and [`ManifestCache`] layers the
//! dedup-specific parts on top: a per-manifest hash index, a cache-wide
//! hash → manifest index so lookups do not scan every resident manifest,
//! and dirty tracking whose evictees are handed back to the caller for
//! write-back (the cache has no access to storage by design).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod lru;
mod manifest_cache;

pub use lru::LruCache;
pub use manifest_cache::{CachedManifest, ManifestCache};
