//! A general-purpose O(1) LRU cache.

use std::hash::Hash;

use mhd_hash::FxHashMap;

/// Slab slot index; `NONE` is the list terminator.
type Idx = u32;
const NONE: Idx = u32::MAX;

struct Node<K, V> {
    key: K,
    value: V,
    prev: Idx,
    next: Idx,
}

/// A fixed-capacity least-recently-used cache.
///
/// All operations are O(1): a hash map locates the slab slot, and an
/// intrusive doubly-linked list through the slab maintains recency order.
/// Inserting into a full cache evicts and returns the least-recently-used
/// entry so the caller can write back dirty state.
///
/// ```
/// use mhd_cache::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// cache.get(&"a");                            // touch: "b" is now LRU
/// let evicted = cache.insert("c", 3);
/// assert_eq!(evicted, Some(("b", 2)));
/// ```
pub struct LruCache<K, V> {
    map: FxHashMap<K, Idx>,
    slab: Vec<Node<K, V>>,
    head: Idx, // most recently used
    tail: Idx, // least recently used
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "LRU capacity must be positive");
        LruCache {
            map: FxHashMap::default(),
            slab: Vec::with_capacity(capacity.min(1024)),
            head: NONE,
            tail: NONE,
            capacity,
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Detaches `idx` from the recency list.
    fn unlink(&mut self, idx: Idx) {
        let (prev, next) = {
            let n = &self.slab[idx as usize];
            (n.prev, n.next)
        };
        if prev != NONE {
            self.slab[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.slab[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Links `idx` at the head (most recently used).
    fn link_front(&mut self, idx: Idx) {
        self.slab[idx as usize].prev = NONE;
        self.slab[idx as usize].next = self.head;
        if self.head != NONE {
            self.slab[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NONE {
            self.tail = idx;
        }
    }

    /// Looks up `key`, marking it most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.link_front(idx);
        Some(&self.slab[idx as usize].value)
    }

    /// Mutable lookup, marking the entry most recently used.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.link_front(idx);
        Some(&mut self.slab[idx as usize].value)
    }

    /// Lookup without touching recency (for read-only inspection).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        Some(&self.slab[idx as usize].value)
    }

    /// Whether `key` is resident (no recency update).
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Inserts `key → value`, returning the evicted LRU entry when the
    /// cache was full, or the previous value when the key was already
    /// resident.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if let Some(&idx) = self.map.get(&key) {
            let old = std::mem::replace(&mut self.slab[idx as usize].value, value);
            self.unlink(idx);
            self.link_front(idx);
            return Some((key, old));
        }
        let evicted = if self.map.len() == self.capacity { self.pop_lru() } else { None };
        // The slab is kept dense by swap_remove, so the next slot is always
        // the end.
        let idx = self.slab.len() as Idx;
        self.slab.push(Node { key: key.clone(), value, prev: NONE, next: NONE });
        self.map.insert(key, idx);
        self.link_front(idx);
        evicted
    }

    /// Removes the already-unlinked slot `idx` from the slab, keeping the
    /// slab dense via swap_remove and fixing up the map entry and list
    /// links of the element that moved into the hole.
    fn take_slot(&mut self, idx: Idx) -> Node<K, V> {
        let node = self.slab.swap_remove(idx as usize);
        let moved_from = self.slab.len() as Idx;
        if idx != moved_from {
            // The element formerly at `moved_from` now lives at `idx`.
            let (moved_key, prev, next) = {
                let m = &self.slab[idx as usize];
                (m.key.clone(), m.prev, m.next)
            };
            *self.map.get_mut(&moved_key).expect("moved key must be resident") = idx;
            if prev != NONE {
                self.slab[prev as usize].next = idx;
            } else if self.head == moved_from {
                self.head = idx;
            }
            if next != NONE {
                self.slab[next as usize].prev = idx;
            } else if self.tail == moved_from {
                self.tail = idx;
            }
        }
        node
    }

    /// Removes and returns the least-recently-used entry.
    pub fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.tail == NONE {
            return None;
        }
        let idx = self.tail;
        self.unlink(idx);
        let node = self.take_slot(idx);
        self.map.remove(&node.key);
        Some((node.key, node.value))
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        let node = self.take_slot(idx);
        self.map.remove(&node.key);
        Some(node.value)
    }

    /// Drains every entry, LRU-first (used for final dirty write-back).
    pub fn drain_lru_first(&mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        while let Some(kv) = self.pop_lru() {
            out.push(kv);
        }
        out
    }

    /// Iterates over resident `(key, value)` pairs in arbitrary order,
    /// without touching recency.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slab.iter().map(|n| (&n.key, &n.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_insert_get() {
        let mut c = LruCache::new(2);
        assert!(c.insert(1, "a").is_none());
        assert!(c.insert(2, "b").is_none());
        assert_eq!(c.get(&1), Some(&"a"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.get(&1); // 2 is now LRU
        let evicted = c.insert(3, "c");
        assert_eq!(evicted, Some((2, "b")));
        assert!(c.contains(&1));
        assert!(c.contains(&3));
    }

    #[test]
    fn reinsert_updates_value_and_recency() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        assert_eq!(c.insert(1, "a2"), Some((1, "a")));
        // 2 is LRU now.
        assert_eq!(c.insert(3, "c"), Some((2, "b")));
        assert_eq!(c.peek(&1), Some(&"a2"));
    }

    #[test]
    fn peek_does_not_touch() {
        let mut c = LruCache::new(2);
        c.insert(1, "a");
        c.insert(2, "b");
        c.peek(&1);
        assert_eq!(c.insert(3, "c"), Some((1, "a")));
    }

    #[test]
    fn remove_and_capacity_one() {
        let mut c = LruCache::new(1);
        c.insert(1, "a");
        assert_eq!(c.insert(2, "b"), Some((1, "a")));
        assert_eq!(c.remove(&2), Some("b"));
        assert!(c.is_empty());
        assert_eq!(c.remove(&2), None);
        c.insert(3, "c");
        assert_eq!(c.peek(&3), Some(&"c"));
    }

    #[test]
    fn drain_is_lru_first() {
        let mut c = LruCache::new(3);
        c.insert(1, "a");
        c.insert(2, "b");
        c.insert(3, "c");
        c.get(&1);
        let order: Vec<i32> = c.drain_lru_first().into_iter().map(|(k, _)| k).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!(c.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _: LruCache<u32, ()> = LruCache::new(0);
    }

    /// Model-based test: compare against a naive Vec-based LRU.
    #[derive(Default)]
    struct Model {
        entries: Vec<(u8, u16)>, // most recent last
        capacity: usize,
    }

    impl Model {
        fn get(&mut self, k: u8) -> Option<u16> {
            let pos = self.entries.iter().position(|&(ek, _)| ek == k)?;
            let e = self.entries.remove(pos);
            self.entries.push(e);
            Some(e.1)
        }
        fn insert(&mut self, k: u8, v: u16) -> Option<(u8, u16)> {
            if let Some(pos) = self.entries.iter().position(|&(ek, _)| ek == k) {
                let old = self.entries.remove(pos);
                self.entries.push((k, v));
                return Some(old);
            }
            let evicted = if self.entries.len() == self.capacity {
                Some(self.entries.remove(0))
            } else {
                None
            };
            self.entries.push((k, v));
            evicted
        }
        fn remove(&mut self, k: u8) -> Option<u16> {
            let pos = self.entries.iter().position(|&(ek, _)| ek == k)?;
            Some(self.entries.remove(pos).1)
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Get(u8),
        Insert(u8, u16),
        Remove(u8),
        PopLru,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>()).prop_map(Op::Get),
            (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
            (any::<u8>()).prop_map(Op::Remove),
            Just(Op::PopLru),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn prop_matches_reference_model(
            ops in proptest::collection::vec(op_strategy(), 1..200),
            capacity in 1usize..8,
        ) {
            let mut real: LruCache<u8, u16> = LruCache::new(capacity);
            let mut model = Model { entries: vec![], capacity };
            for op in ops {
                match op {
                    Op::Get(k) => {
                        prop_assert_eq!(real.get(&k).copied(), model.get(k));
                    }
                    Op::Insert(k, v) => {
                        prop_assert_eq!(real.insert(k, v), model.insert(k, v));
                    }
                    Op::Remove(k) => {
                        prop_assert_eq!(real.remove(&k), model.remove(k));
                    }
                    Op::PopLru => {
                        let expect = if model.entries.is_empty() {
                            None
                        } else {
                            Some(model.entries.remove(0))
                        };
                        prop_assert_eq!(real.pop_lru(), expect);
                    }
                }
                prop_assert_eq!(real.len(), model.entries.len());
                prop_assert!(real.len() <= capacity);
            }
        }
    }
}
