//! The Manifest cache used by the deduplication engines.

use mhd_hash::{ChunkHash, FxHashMap};
use mhd_store::{Manifest, ManifestId};

use crate::LruCache;

/// A resident Manifest plus its hash index and dirty flag.
pub struct CachedManifest {
    /// The manifest content. Mutations must go through
    /// [`ManifestCache::mutate`] so the indexes stay consistent.
    manifest: Manifest,
    /// hash → entry index within `manifest.entries` (later entries win).
    index: FxHashMap<ChunkHash, u32>,
    /// Needs write-back before eviction (set by HHR re-chunking).
    dirty: bool,
}

impl CachedManifest {
    /// Read access to the manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Entry index of `hash` within this manifest.
    pub fn find(&self, hash: &ChunkHash) -> Option<u32> {
        self.index.get(hash).copied()
    }

    /// Whether the manifest has unwritten modifications.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

/// LRU cache of Manifests with a cache-wide hash index.
///
/// The paper's description — each cached Manifest "organized as a hash
/// table", incoming hashes matched against the cache — implies a per-chunk
/// probe of every resident manifest; we keep an aggregate `hash →
/// manifests` index instead so the probe is O(1) regardless of cache size,
/// which changes nothing observable (same hits, same misses).
pub struct ManifestCache {
    lru: LruCache<ManifestId, CachedManifest>,
    /// Which resident manifests contain each hash (usually exactly one).
    by_hash: FxHashMap<ChunkHash, Vec<ManifestId>>,
}

impl ManifestCache {
    /// Creates a cache holding at most `capacity` manifests.
    pub fn new(capacity: usize) -> Self {
        ManifestCache { lru: LruCache::new(capacity), by_hash: FxHashMap::default() }
    }

    /// Number of resident manifests.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Whether `id` is resident.
    pub fn contains(&self, id: ManifestId) -> bool {
        self.lru.contains(&id)
    }

    fn index_insert(by_hash: &mut FxHashMap<ChunkHash, Vec<ManifestId>>, m: &Manifest) {
        for e in &m.entries {
            let ids = by_hash.entry(e.hash).or_default();
            if !ids.contains(&m.id) {
                ids.push(m.id);
            }
        }
    }

    fn index_remove(by_hash: &mut FxHashMap<ChunkHash, Vec<ManifestId>>, m: &Manifest) {
        for e in &m.entries {
            if let Some(ids) = by_hash.get_mut(&e.hash) {
                ids.retain(|&id| id != m.id);
                if ids.is_empty() {
                    by_hash.remove(&e.hash);
                }
            }
        }
    }

    /// Inserts a freshly loaded (clean) or newly created manifest.
    ///
    /// Returns the evicted manifest when one had to be freed, paired with
    /// whether it was dirty — the caller must write dirty evictees back
    /// ("a Manifest that has been set dirty, is written back to the disk
    /// before it is freed").
    #[must_use = "dirty evictees must be written back"]
    pub fn insert(&mut self, manifest: Manifest, dirty: bool) -> Option<(Manifest, bool)> {
        let index = manifest.build_index();
        Self::index_insert(&mut self.by_hash, &manifest);
        let entry = CachedManifest { manifest, index, dirty };
        mhd_obs::counter!("cache.manifest_inserts").inc();
        let evicted = self.lru.insert(entry.manifest.id, entry);
        evicted.map(|(_, old)| {
            Self::index_remove(&mut self.by_hash, &old.manifest);
            mhd_obs::counter!("cache.manifest_evictions").inc();
            if old.dirty {
                mhd_obs::counter!("cache.dirty_writebacks").inc();
            }
            mhd_obs::trace(mhd_obs::TraceEvent::CacheEvict { dirty: old.dirty });
            (old.manifest, old.dirty)
        })
    }

    /// Finds which resident manifest (if any) contains `hash`, touching it
    /// as most-recently-used. Returns the manifest id and entry index.
    pub fn find_hash(&mut self, hash: &ChunkHash) -> Option<(ManifestId, u32)> {
        let Some(id) = self.by_hash.get(hash).and_then(|ids| ids.last().copied()) else {
            mhd_obs::counter!("cache.manifest_misses").inc();
            return None;
        };
        mhd_obs::counter!("cache.manifest_hits").inc();
        let cached = self.lru.get(&id).expect("by_hash index out of sync with LRU");
        let entry_idx = cached.find(hash).expect("per-manifest index out of sync");
        Some((id, entry_idx))
    }

    /// Read access to a resident manifest, touching recency.
    pub fn get(&mut self, id: ManifestId) -> Option<&CachedManifest> {
        self.lru.get(&id)
    }

    /// Read access without touching recency.
    pub fn peek(&self, id: ManifestId) -> Option<&CachedManifest> {
        self.lru.peek(&id)
    }

    /// Mutates a resident manifest in place (the HHR re-chunking path),
    /// rebuilding its hash indexes and marking it dirty.
    ///
    /// Returns `false` when `id` is not resident.
    pub fn mutate(&mut self, id: ManifestId, f: impl FnOnce(&mut Manifest)) -> bool {
        // Remove the old index contribution first (entry hashes change).
        let Some(cached) = self.lru.get_mut(&id) else { return false };
        mhd_obs::counter!("cache.manifest_mutations").inc();
        let old = cached.manifest.clone();
        f(&mut cached.manifest);
        cached.index = cached.manifest.build_index();
        cached.dirty = true;
        let new = cached.manifest.clone();
        Self::index_remove(&mut self.by_hash, &old);
        Self::index_insert(&mut self.by_hash, &new);
        true
    }

    /// Drains the cache LRU-first, returning every resident manifest and
    /// its dirty flag (end-of-run write-back).
    pub fn drain(&mut self) -> Vec<(Manifest, bool)> {
        self.by_hash.clear();
        self.lru.drain_lru_first().into_iter().map(|(_, c)| (c.manifest, c.dirty)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_hash::sha1;
    use mhd_store::{DiskChunkId, ManifestEntry, ManifestFormat};

    fn manifest(id: u64, hashes: &[u64]) -> Manifest {
        let mut m = Manifest::new(ManifestId(id), ManifestFormat::HookFlags);
        let mut offset = 0;
        for &h in hashes {
            m.entries.push(ManifestEntry {
                hash: sha1(&h.to_le_bytes()),
                container: DiskChunkId(id),
                offset,
                size: 10,
                is_hook: false,
            });
            offset += 10;
        }
        m
    }

    #[test]
    fn find_hash_hits_resident_manifest() {
        let mut c = ManifestCache::new(4);
        assert!(c.insert(manifest(1, &[10, 11]), false).is_none());
        assert!(c.insert(manifest(2, &[20, 21]), false).is_none());
        let (id, idx) = c.find_hash(&sha1(&21u64.to_le_bytes())).unwrap();
        assert_eq!(id, ManifestId(2));
        assert_eq!(idx, 1);
        assert!(c.find_hash(&sha1(&99u64.to_le_bytes())).is_none());
    }

    #[test]
    fn eviction_returns_dirty_flag_and_cleans_index() {
        let mut c = ManifestCache::new(2);
        assert!(c.insert(manifest(1, &[10]), true).is_none());
        assert!(c.insert(manifest(2, &[20]), false).is_none());
        let (evicted, dirty) = c.insert(manifest(3, &[30]), false).unwrap();
        assert_eq!(evicted.id, ManifestId(1));
        assert!(dirty);
        // Evicted manifest's hashes are no longer findable.
        assert!(c.find_hash(&sha1(&10u64.to_le_bytes())).is_none());
        assert!(c.find_hash(&sha1(&20u64.to_le_bytes())).is_some());
    }

    #[test]
    fn find_hash_touches_recency() {
        let mut c = ManifestCache::new(2);
        let _ = c.insert(manifest(1, &[10]), false);
        let _ = c.insert(manifest(2, &[20]), false);
        // Touch manifest 1, then insert: manifest 2 must be the evictee.
        c.find_hash(&sha1(&10u64.to_le_bytes())).unwrap();
        let (evicted, _) = c.insert(manifest(3, &[30]), false).unwrap();
        assert_eq!(evicted.id, ManifestId(2));
    }

    #[test]
    fn mutate_reindexes_and_marks_dirty() {
        let mut c = ManifestCache::new(2);
        let _ = c.insert(manifest(1, &[10, 11]), false);
        assert!(c.mutate(ManifestId(1), |m| {
            // Replace entry 0's hash (an HHR-style re-chunk).
            m.entries[0].hash = sha1(&99u64.to_le_bytes());
        }));
        assert!(c.find_hash(&sha1(&10u64.to_le_bytes())).is_none());
        assert_eq!(c.find_hash(&sha1(&99u64.to_le_bytes())), Some((ManifestId(1), 0)));
        assert!(c.peek(ManifestId(1)).unwrap().is_dirty());
        assert!(!c.mutate(ManifestId(9), |_| {}));
    }

    #[test]
    fn drain_returns_everything_and_empties() {
        let mut c = ManifestCache::new(4);
        let _ = c.insert(manifest(1, &[10]), true);
        let _ = c.insert(manifest(2, &[20]), false);
        let drained = c.drain();
        assert_eq!(drained.len(), 2);
        assert!(c.is_empty());
        assert!(c.find_hash(&sha1(&10u64.to_le_bytes())).is_none());
        let dirty: Vec<bool> = drained.iter().map(|(_, d)| *d).collect();
        assert_eq!(dirty.iter().filter(|&&d| d).count(), 1);
    }

    #[test]
    fn duplicate_hash_across_manifests_resolves_to_latest() {
        let mut c = ManifestCache::new(4);
        let _ = c.insert(manifest(1, &[10]), false);
        let _ = c.insert(manifest(2, &[10]), false);
        let (id, _) = c.find_hash(&sha1(&10u64.to_le_bytes())).unwrap();
        assert_eq!(id, ManifestId(2));
        // Evict manifest 2 by filling the cache; hash 10 must fall back to
        // manifest 1... (evictions are LRU so touch 1 first)
        c.get(ManifestId(1));
    }
}
