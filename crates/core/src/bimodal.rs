//! The Bimodal baseline (Kruus, Ungureanu & Dubnicki, FAST'10).
//!
//! Bimodal chunks the stream at the *big* expected size (`ECS × SD`) and
//! deduplicates big chunks first. A non-duplicate big chunk adjacent to a
//! duplicate one (a "transition point") is re-chunked at the small size
//! (`ECS`) and its small chunks deduplicated individually; non-duplicate
//! big chunks away from transition points are stored whole. Every stored
//! chunk — big or small — gets one Manifest entry and one Hook ("each
//! chunk, big or small, is represented by one entry in the Manifests as
//! well as one Hook"), which is why its metadata grows as
//! `N/SD + 2L(SD−1)` hooks (Table I): each duplicate slice flanks up to two
//! re-chunked big chunks.

use std::time::Instant;

use bytes::Bytes;
use mhd_bloom::BloomFilter;
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::ChunkHash;
use mhd_store::{
    Backend, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, SliceTracker,
};

/// Big-chunk-first deduplicator with transition-point re-chunking.
pub struct BimodalEngine<B: Backend> {
    config: EngineConfig,
    big_chunker: AnyChunker,
    small_chunker: AnyChunker,
    substrate: Substrate<B>,
    bloom: BloomFilter,
    cache: ManifestCache,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    big_chunks_stored: u64,
    dedup_seconds: f64,
}

impl<B: Backend> BimodalEngine<B> {
    /// Creates an engine over `backend`.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let small_chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        let big_chunker = config
            .chunker
            .build(config.big_chunk_size())
            .map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(BimodalEngine {
            big_chunker,
            small_chunker,
            substrate: Substrate::new(backend),
            bloom: BloomFilter::with_bytes(config.bloom_bytes, (config.bloom_bytes * 2) as u64),
            cache: ManifestCache::new(config.cache_manifests),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            big_chunks_stored: 0,
            dedup_seconds: 0.0,
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    /// Full-index lookup via cache → Bloom → Hook → Manifest, as in CDC.
    /// `big` routes the query to the big-chunk counter.
    fn lookup(&mut self, hash: ChunkHash, big: bool) -> EngineResult<Option<Extent>> {
        if big {
            self.substrate.stats_mut().big_chunk_query += 1;
        } else {
            self.substrate.stats_mut().small_chunk_query += 1;
        }
        let found = if let Some((mid, idx)) = self.cache.find_hash(&hash) {
            self.substrate.stats_mut().cache_hits += 1;
            Some(self.cache.peek(mid).expect("resident").manifest().entries[idx as usize])
        } else if !self.bloom.contains(&hash) {
            self.substrate.stats_mut().bloom_suppressed += 1;
            None
        } else if let Some(mid) = self.substrate.lookup_hook(hash)? {
            let manifest = self.substrate.load_manifest(mid)?;
            let e = manifest.entries.iter().find(|e| e.hash == hash).copied();
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            e
        } else {
            None
        };
        Ok(found.map(|e| Extent { container: e.container, offset: e.offset, len: e.size }))
    }

    fn process_file(&mut self, path: &str, data: &Bytes) -> EngineResult<()> {
        self.input_bytes += data.len() as u64;
        let bigs = chunk_and_hash(&self.big_chunker, data);

        // Pass 1: duplicate status of every big chunk (the big-chunk-first
        // queries).
        let mut dup_extents: Vec<Option<Extent>> = Vec::with_capacity(bigs.len());
        for b in &bigs {
            dup_extents.push(self.lookup(b.hash, true)?);
        }

        // Pass 2: store/dedup with transition-point re-chunking.
        let mut builder = self.substrate.new_disk_chunk();
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut fm = FileManifest::new();

        for (j, b) in bigs.iter().enumerate() {
            if let Some(extent) = dup_extents[j] {
                self.slice.on_dup(extent.len, 1);
                fm.push(extent);
                continue;
            }
            let at_transition = (j > 0 && dup_extents[j - 1].is_some())
                || (j + 1 < bigs.len() && dup_extents[j + 1].is_some());
            if !at_transition {
                // Store the big chunk whole: one entry, one hook.
                self.slice.on_nondup();
                let offset = builder.append(b.slice(data));
                entries.push(ManifestEntry {
                    hash: b.hash,
                    container: builder.id(),
                    offset,
                    size: b.len as u64,
                    is_hook: false,
                });
                fm.push(Extent { container: builder.id(), offset, len: b.len as u64 });
                self.chunks_stored += 1;
                self.big_chunks_stored += 1;
                continue;
            }
            // Transition point: re-chunk at the small size and dedup each
            // small chunk.
            let big_bytes = Bytes::copy_from_slice(b.slice(data));
            let smalls = chunk_and_hash(&self.small_chunker, &big_bytes);
            for s in &smalls {
                if let Some(extent) = self.lookup(s.hash, false)? {
                    self.slice.on_dup(extent.len, 1);
                    fm.push(extent);
                } else {
                    self.slice.on_nondup();
                    let offset = builder.append(s.slice(&big_bytes));
                    entries.push(ManifestEntry {
                        hash: s.hash,
                        container: builder.id(),
                        offset,
                        size: s.len as u64,
                        is_hook: false,
                    });
                    fm.push(Extent { container: builder.id(), offset, len: s.len as u64 });
                    self.chunks_stored += 1;
                }
            }
        }
        self.slice.reset_run();

        if !builder.is_empty() {
            self.substrate.write_disk_chunk(builder)?;
            let mid = self.substrate.new_manifest_id();
            let manifest = Manifest { id: mid, format: ManifestFormat::Plain, entries };
            self.substrate.write_manifest(&manifest)?;
            for e in &manifest.entries {
                self.substrate.write_hook(e.hash, mid)?;
                self.bloom.insert(&e.hash);
            }
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            self.files += 1;
        }
        self.substrate.write_file_manifest(path, &fm)?;
        debug_assert_eq!(fm.total_len(), data.len() as u64);
        Ok(())
    }
}

impl<B: Backend> Deduplicator for BimodalEngine<B> {
    fn name(&self) -> &'static str {
        "bimodal"
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        for file in &snapshot.files {
            self.process_file(&file.path, &file.data)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        for (manifest, dirty) in self.cache.drain() {
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: 0,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: self.bloom.ram_bytes() as u64,
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;
    use mhd_workload::FileEntry;

    fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    fn engine() -> BimodalEngine<MemBackend> {
        BimodalEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap()
    }

    #[test]
    fn identical_file_dedups_at_big_granularity() {
        let mut e = engine();
        let content = random(64 << 10, 1);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.stored_data_bytes, 64 << 10);
        assert_eq!(r.dup_bytes, 64 << 10);
        assert!(r.stats.big_chunk_query > 0);
    }

    #[test]
    fn fewer_hooks_than_cdc_without_duplicates() {
        // On pure fresh data (no transitions), Bimodal stores only big
        // chunks: ~N/SD hooks.
        let mut e = engine();
        e.process_snapshot(&snapshot("a", vec![random(256 << 10, 2)])).unwrap();
        let r = e.finish().unwrap();
        // Big chunks average 4 KiB (512·8); 256 KiB → ~64 stored chunks,
        // far fewer than the ~512 small chunks CDC would store.
        assert!(r.chunks_stored < 200, "stored {}", r.chunks_stored);
        assert_eq!(r.ledger.inodes_hooks, r.chunks_stored);
    }

    #[test]
    fn rechunks_at_transition_points() {
        let mut e = engine();
        let original = random(64 << 10, 3);
        let mut edited = original.clone();
        let patch = random(512, 4);
        edited[32_000..32_512].copy_from_slice(&patch);

        e.process_snapshot(&snapshot("a", vec![original])).unwrap();
        e.process_snapshot(&snapshot("b", vec![edited])).unwrap();
        let r = e.finish().unwrap();
        // Small-chunk queries prove re-chunking happened.
        assert!(r.stats.small_chunk_query > 0);
        // Some duplicate content inside the edited big chunk region is
        // recovered at small granularity.
        assert!(r.dup_bytes > 32 << 10, "dup {}", r.dup_bytes);
    }

    #[test]
    fn misses_interior_duplicates_away_from_transitions() {
        // A duplicate region fully inside a big chunk whose big hash
        // changed, with non-duplicate neighbours, is missed — the DER
        // weakness the paper exploits (§V-B).
        let mut e = engine();
        // Stream 1: one big random file.
        let original = random(128 << 10, 5);
        e.process_snapshot(&snapshot("a", vec![original.clone()])).unwrap();
        // Stream 2: fresh data, with a copy of an interior region of the
        // original spliced into the middle (smaller than a big chunk).
        let mut second = random(64 << 10, 6);
        second.extend_from_slice(&original[40_000..42_000]); // 2 KiB interior dup
        second.extend_from_slice(&random(64 << 10, 7));
        e.process_snapshot(&snapshot("b", vec![second])).unwrap();
        let r = e.finish().unwrap();
        // The 2 KiB is interior to non-dup big chunks on both sides: missed.
        assert!(r.dup_bytes < 2000, "found {} dup bytes unexpectedly", r.dup_bytes);
    }
}
