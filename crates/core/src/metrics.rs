//! The evaluation's figures of merit (§V).
//!
//! * **data-only DER** — input bytes / stored data bytes, ignoring
//!   metadata.
//! * **real DER** — input bytes / (stored data + all metadata), "from the
//!   perspective of the file system".
//! * **MetaDataRatio** — total metadata bytes / input bytes.
//! * **ThroughputRatio** — time to pass the input through the system
//!   *without* deduplication (a plain copy) divided by the deduplication
//!   time; larger is faster.
//! * **DAD** — Duplication Aggregation Degree: duplicate bytes per
//!   duplicate slice.
//!
//! The paper measures ThroughputRatio on a physical disk where both the
//! copy and the deduplicator pay seek and bandwidth costs. Our substrate
//! is in-memory, so [`DiskModel`] re-introduces a device: both sides are
//! charged `bytes / bandwidth` for what they write, and the deduplicator
//! additionally pays its measured CPU time and `seek × disk accesses`.
//! Absolute ratios depend on the chosen device constants; the *ordering*
//! of algorithms does not.

use serde::{Deserialize, Serialize};

use crate::engine::DedupReport;

/// A simple storage device model for throughput accounting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    /// Seconds per disk access (seek + rotational + request overhead).
    pub seek_seconds: f64,
    /// Sequential bandwidth in bytes/second.
    pub bandwidth: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // 2013-era SATA disk with a healthy cache: sub-millisecond
        // effective seeks at queue depth, ~150 MB/s sequential.
        DiskModel { seek_seconds: 0.5e-3, bandwidth: 150.0e6 }
    }
}

impl DiskModel {
    /// Time for the no-deduplication baseline: stream the input to disk.
    pub fn copy_seconds(&self, input_bytes: u64) -> f64 {
        input_bytes as f64 / self.bandwidth
    }

    /// Time for a deduplication run: measured CPU seconds, plus a seek per
    /// disk access, plus writing the (deduplicated) output.
    pub fn dedup_seconds(&self, report: &DedupReport) -> f64 {
        report.dedup_seconds
            + report.stats.total_with_bloom() as f64 * self.seek_seconds
            + report.ledger.total_output_bytes() as f64 / self.bandwidth
    }
}

/// The derived metrics for one run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Input / stored-data bytes.
    pub data_only_der: f64,
    /// Input / (stored data + metadata) bytes.
    pub real_der: f64,
    /// Metadata bytes / input bytes.
    pub metadata_ratio: f64,
    /// Duplicate bytes per duplicate slice (bytes).
    pub dad: f64,
    /// copy time / dedup time under the disk model.
    pub throughput_ratio: f64,
    /// Inodes per MiB of input (Fig. 7a's y-axis).
    pub inodes_per_mib: f64,
    /// Manifest+Hook bytes / input bytes (Fig. 7b).
    pub manifest_metadata_ratio: f64,
    /// FileManifest bytes / input bytes (Fig. 7c).
    pub file_manifest_metadata_ratio: f64,
}

/// Computes all §V metrics from a run report under a device model.
pub fn compute(report: &DedupReport, disk: &DiskModel) -> Metrics {
    let input = report.input_bytes.max(1) as f64;
    let ledger = &report.ledger;
    Metrics {
        data_only_der: input / ledger.stored_data_bytes.max(1) as f64,
        real_der: input / ledger.total_output_bytes().max(1) as f64,
        metadata_ratio: ledger.total_metadata_bytes() as f64 / input,
        dad: report.dup_bytes as f64 / report.dup_slices.max(1) as f64,
        throughput_ratio: disk.copy_seconds(report.input_bytes) / disk.dedup_seconds(report),
        inodes_per_mib: ledger.total_inodes() as f64 / (input / (1024.0 * 1024.0)),
        manifest_metadata_ratio: ledger.manifest_and_hook_bytes() as f64 / input,
        file_manifest_metadata_ratio: ledger.file_manifest_bytes as f64 / input,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::{IoStats, MetadataLedger};

    fn report() -> DedupReport {
        DedupReport {
            algorithm: "test".into(),
            input_bytes: 1 << 20,
            dup_bytes: 600 << 10,
            dup_slices: 6,
            files: 4,
            chunks_stored: 100,
            chunks_dup: 150,
            hhr_count: 0,
            stats: IoStats { chunk_output: 4, hook_output: 10, ..Default::default() },
            ledger: MetadataLedger {
                inodes_disk_chunks: 4,
                inodes_hooks: 10,
                inodes_manifests: 4,
                inodes_file_manifests: 4,
                hook_bytes: 200,
                manifest_bytes: 3700,
                file_manifest_bytes: 400,
                stored_data_bytes: 424 << 10,
            },
            ram_index_bytes: 0,
            dedup_seconds: 0.01,
        }
    }

    #[test]
    fn ders_ordered_and_positive() {
        let m = compute(&report(), &DiskModel::default());
        assert!(m.data_only_der > m.real_der, "metadata must lower the real DER");
        assert!(m.real_der > 1.0);
        let expected = (1u64 << 20) as f64 / (424u64 << 10) as f64;
        assert!((m.data_only_der - expected).abs() < 1e-9);
    }

    #[test]
    fn dad_is_bytes_per_slice() {
        let m = compute(&report(), &DiskModel::default());
        assert!((m.dad - (600u64 << 10) as f64 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn metadata_ratio_counts_inodes() {
        let m = compute(&report(), &DiskModel::default());
        let meta = 22 * 256 + 200 + 3700 + 400;
        assert!((m.metadata_ratio - meta as f64 / (1u64 << 20) as f64).abs() < 1e-12);
    }

    #[test]
    fn throughput_ratio_penalises_accesses() {
        let fast = compute(&report(), &DiskModel::default());
        let mut busy = report();
        busy.stats.hook_input = 10_000;
        let slow = compute(&busy, &DiskModel::default());
        assert!(slow.throughput_ratio < fast.throughput_ratio);
    }

    #[test]
    fn zero_guards() {
        let empty = DedupReport {
            algorithm: "x".into(),
            input_bytes: 0,
            dup_bytes: 0,
            dup_slices: 0,
            files: 0,
            chunks_stored: 0,
            chunks_dup: 0,
            hhr_count: 0,
            stats: IoStats::default(),
            ledger: MetadataLedger::default(),
            ram_index_bytes: 0,
            dedup_seconds: 0.0,
        };
        let m = compute(&empty, &DiskModel::default());
        assert!(m.data_only_der.is_finite() && m.dad.is_finite());
    }
}
