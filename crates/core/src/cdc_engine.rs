//! The flat CDC baseline (the "CDC" column of Tables I–II).
//!
//! Classic content-defined deduplication with a full index: every stored
//! chunk gets one Manifest entry (36 bytes) *and* one on-disk Hook — the
//! paper's `512F + 312N` metadata bill. A Bloom filter suppresses lookups
//! for never-seen hashes and the Manifest cache exploits locality, so a
//! duplicate data slice costs one Hook read plus one Manifest load, with
//! subsequent chunks of the slice resolving in RAM.

use std::time::Instant;

use bytes::Bytes;
use mhd_bloom::BloomFilter;
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::ChunkHash;
use mhd_store::{
    Backend, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, SliceTracker,
};

/// Flat content-defined-chunking deduplicator with a full per-chunk index.
pub struct CdcEngine<B: Backend> {
    config: EngineConfig,
    chunker: AnyChunker,
    substrate: Substrate<B>,
    bloom: BloomFilter,
    cache: ManifestCache,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    dedup_seconds: f64,
}

impl<B: Backend> CdcEngine<B> {
    /// Creates an engine over `backend`.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(CdcEngine {
            chunker,
            substrate: Substrate::new(backend),
            bloom: BloomFilter::with_bytes(config.bloom_bytes, (config.bloom_bytes * 2) as u64),
            cache: ManifestCache::new(config.cache_manifests),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            dedup_seconds: 0.0,
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    fn lookup(&mut self, hash: ChunkHash) -> EngineResult<Option<Extent>> {
        let found = if let Some((mid, idx)) = self.cache.find_hash(&hash) {
            self.substrate.stats_mut().cache_hits += 1;
            let e = self.cache.peek(mid).expect("resident").manifest().entries[idx as usize];
            Some(e)
        } else if !self.bloom.contains(&hash) {
            self.substrate.stats_mut().bloom_suppressed += 1;
            None
        } else if let Some(mid) = self.substrate.lookup_hook(hash)? {
            let manifest = self.substrate.load_manifest(mid)?;
            let e = manifest.entries.iter().find(|e| e.hash == hash).copied();
            debug_assert!(e.is_some(), "hook points at manifest lacking its hash");
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                debug_assert!(!dirty, "CDC never dirties manifests");
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            e
        } else {
            None // Bloom false positive
        };
        Ok(found.map(|e| Extent { container: e.container, offset: e.offset, len: e.size }))
    }

    fn process_file(&mut self, path: &str, data: &Bytes) -> EngineResult<()> {
        self.input_bytes += data.len() as u64;
        let chunks = chunk_and_hash(&self.chunker, data);

        let mut builder = self.substrate.new_disk_chunk();
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut fm = FileManifest::new();

        for c in &chunks {
            if let Some(extent) = self.lookup(c.hash)? {
                debug_assert_eq!(extent.len, c.len as u64);
                self.slice.on_dup(extent.len, 1);
                fm.push(extent);
            } else {
                self.slice.on_nondup();
                let offset = builder.append(c.slice(data));
                entries.push(ManifestEntry {
                    hash: c.hash,
                    container: builder.id(),
                    offset,
                    size: c.len as u64,
                    is_hook: false,
                });
                fm.push(Extent { container: builder.id(), offset, len: c.len as u64 });
                self.chunks_stored += 1;
            }
        }
        self.slice.reset_run();

        if !builder.is_empty() {
            self.substrate.write_disk_chunk(builder)?;
            let mid = self.substrate.new_manifest_id();
            let manifest = Manifest { id: mid, format: ManifestFormat::Plain, entries };
            self.substrate.write_manifest(&manifest)?;
            // Full index: a Hook per stored chunk.
            for e in &manifest.entries {
                self.substrate.write_hook(e.hash, mid)?;
                self.bloom.insert(&e.hash);
            }
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            self.files += 1;
        }
        self.substrate.write_file_manifest(path, &fm)?;
        debug_assert_eq!(fm.total_len(), data.len() as u64);
        Ok(())
    }
}

impl<B: Backend> Deduplicator for CdcEngine<B> {
    fn name(&self) -> &'static str {
        "cdc"
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        for file in &snapshot.files {
            self.process_file(&file.path, &file.data)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        for (manifest, dirty) in self.cache.drain() {
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: 0,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: self.bloom.ram_bytes() as u64,
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;
    use mhd_workload::FileEntry;

    fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn dedups_identical_file() {
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let content = random(64 << 10, 1);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.stored_data_bytes, 64 << 10);
        assert_eq!(r.dup_bytes, 64 << 10);
        assert_eq!(r.files, 1);
    }

    #[test]
    fn hook_per_stored_chunk() {
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        e.process_snapshot(&snapshot("a", vec![random(64 << 10, 2)])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.inodes_hooks, r.chunks_stored, "CDC hooks one inode per chunk");
        // Manifest bytes ≈ 36·N (+13-byte envelope per manifest).
        assert_eq!(r.ledger.manifest_bytes, 36 * r.chunks_stored + 13 * r.files);
    }

    #[test]
    fn finds_shifted_duplicates() {
        // Prepend bytes: CDC realigns, most of the content still dedups.
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let content = random(64 << 10, 3);
        let mut shifted = random(50, 4);
        shifted.extend_from_slice(&content);
        e.process_snapshot(&snapshot("a", vec![content])).unwrap();
        e.process_snapshot(&snapshot("b", vec![shifted])).unwrap();
        let r = e.finish().unwrap();
        assert!(r.dup_bytes > 56 << 10, "dup bytes {}", r.dup_bytes);
    }

    #[test]
    fn slice_locality_one_manifest_load_per_slice() {
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let content = random(64 << 10, 5);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        // The duplicate file is one slice, resolved with locality: the
        // manifest is either still cached from its creation (0 loads) or
        // loaded once via its hook, never per chunk.
        assert_eq!(r.dup_slices, 1);
        assert!(r.stats.manifest_input <= 1);
        assert!(r.stats.hook_input <= 2);
        assert!(r.stats.cache_hits > 0);
    }
}
