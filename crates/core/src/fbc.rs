//! The FBC baseline (Frequency-Based Chunking, Lu, Jin & Du, MASCOTS'10),
//! discussed alongside Bimodal and SubChunk throughout the paper's §I–II:
//! "FBC performs selective re-chunking using several strategies based on
//! the frequency information of chunks estimated from data that have been
//! previously processed."
//!
//! Like Bimodal, FBC chunks big-first and stores most non-duplicate big
//! chunks whole; unlike Bimodal's positional trigger (transition points),
//! FBC re-chunks a big chunk when a count-min sketch says it contains
//! *frequent* small content — content seen often is content likely to
//! recur, so splitting it out pays for its metadata. The paper leaves FBC
//! out of its evaluation; it is provided here as an additional baseline
//! (`algorithm_shootout` example, `fbc_comparison` integration test) with
//! the same accounting as the other engines.

use std::time::Instant;

use bytes::Bytes;
use mhd_bloom::{BloomFilter, CountMinSketch};
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::ChunkHash;
use mhd_store::{
    Backend, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, SliceTracker,
};

/// How many sightings make a small chunk "frequent" enough to justify
/// re-chunking the big chunk containing it.
const FREQUENCY_THRESHOLD: u32 = 2;

/// Frequency-based-chunking deduplicator.
pub struct FbcEngine<B: Backend> {
    config: EngineConfig,
    big_chunker: AnyChunker,
    small_chunker: AnyChunker,
    substrate: Substrate<B>,
    bloom: BloomFilter,
    cache: ManifestCache,
    /// Frequency estimator over small-chunk hashes of the input stream.
    sketch: CountMinSketch,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    rechunked_bigs: u64,
    dedup_seconds: f64,
}

impl<B: Backend> FbcEngine<B> {
    /// Creates an engine over `backend`.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let small_chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        let big_chunker = config
            .chunker
            .build(config.big_chunk_size())
            .map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(FbcEngine {
            big_chunker,
            small_chunker,
            substrate: Substrate::new(backend),
            bloom: BloomFilter::with_bytes(config.bloom_bytes, (config.bloom_bytes * 2) as u64),
            cache: ManifestCache::new(config.cache_manifests),
            sketch: CountMinSketch::with_epsilon(1e-4),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            rechunked_bigs: 0,
            dedup_seconds: 0.0,
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    /// Big chunks re-chunked due to frequent content (the FBC trigger).
    pub fn rechunked_bigs(&self) -> u64 {
        self.rechunked_bigs
    }

    /// Full-index lookup via cache → Bloom → Hook → Manifest, as in
    /// Bimodal (hooks exist for every stored chunk, big or small).
    fn lookup(&mut self, hash: ChunkHash, big: bool) -> EngineResult<Option<Extent>> {
        if big {
            self.substrate.stats_mut().big_chunk_query += 1;
        } else {
            self.substrate.stats_mut().small_chunk_query += 1;
        }
        let found = if let Some((mid, idx)) = self.cache.find_hash(&hash) {
            self.substrate.stats_mut().cache_hits += 1;
            Some(self.cache.peek(mid).expect("resident").manifest().entries[idx as usize])
        } else if !self.bloom.contains(&hash) {
            self.substrate.stats_mut().bloom_suppressed += 1;
            None
        } else if let Some(mid) = self.substrate.lookup_hook(hash)? {
            let manifest = self.substrate.load_manifest(mid)?;
            let e = manifest.entries.iter().find(|e| e.hash == hash).copied();
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            e
        } else {
            None
        };
        Ok(found.map(|e| Extent { container: e.container, offset: e.offset, len: e.size }))
    }

    fn process_file(&mut self, path: &str, data: &Bytes) -> EngineResult<()> {
        self.input_bytes += data.len() as u64;
        let bigs = chunk_and_hash(&self.big_chunker, data);

        let mut builder = self.substrate.new_disk_chunk();
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut fm = FileManifest::new();

        for b in &bigs {
            // Frequency bookkeeping happens on the raw input (small
            // granularity), before any dedup decision — "estimated from
            // data that have been previously processed".
            let big_bytes = Bytes::copy_from_slice(b.slice(data));
            let smalls = chunk_and_hash(&self.small_chunker, &big_bytes);
            let frequent =
                smalls.iter().any(|s| self.sketch.estimate(&s.hash) >= FREQUENCY_THRESHOLD);
            for s in &smalls {
                self.sketch.add(&s.hash);
            }

            // Big-chunk dedup first.
            if let Some(extent) = self.lookup(b.hash, true)? {
                self.slice.on_dup(extent.len, 1);
                fm.push(extent);
                continue;
            }

            if !frequent {
                // Cold content: store the big chunk whole (one entry, one
                // hook — cheap metadata).
                self.slice.on_nondup();
                let offset = builder.append(&big_bytes);
                entries.push(ManifestEntry {
                    hash: b.hash,
                    container: builder.id(),
                    offset,
                    size: b.len as u64,
                    is_hook: false,
                });
                fm.push(Extent { container: builder.id(), offset, len: b.len as u64 });
                self.chunks_stored += 1;
                continue;
            }

            // Frequent content inside: re-chunk and dedup at the small
            // granularity.
            self.rechunked_bigs += 1;
            for s in &smalls {
                if let Some(extent) = self.lookup(s.hash, false)? {
                    self.slice.on_dup(extent.len, 1);
                    fm.push(extent);
                } else {
                    self.slice.on_nondup();
                    let offset = builder.append(s.slice(&big_bytes));
                    entries.push(ManifestEntry {
                        hash: s.hash,
                        container: builder.id(),
                        offset,
                        size: s.len as u64,
                        is_hook: false,
                    });
                    fm.push(Extent { container: builder.id(), offset, len: s.len as u64 });
                    self.chunks_stored += 1;
                }
            }
        }
        self.slice.reset_run();

        if !builder.is_empty() {
            self.substrate.write_disk_chunk(builder)?;
            let mid = self.substrate.new_manifest_id();
            let manifest = Manifest { id: mid, format: ManifestFormat::Plain, entries };
            self.substrate.write_manifest(&manifest)?;
            for e in &manifest.entries {
                self.substrate.write_hook(e.hash, mid)?;
                self.bloom.insert(&e.hash);
            }
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            self.files += 1;
        }
        self.substrate.write_file_manifest(path, &fm)?;
        debug_assert_eq!(fm.total_len(), data.len() as u64);
        Ok(())
    }
}

impl<B: Backend> Deduplicator for FbcEngine<B> {
    fn name(&self) -> &'static str {
        "fbc"
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        for file in &snapshot.files {
            self.process_file(&file.path, &file.data)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        for (manifest, dirty) in self.cache.drain() {
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: 0,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: (self.bloom.ram_bytes() + self.sketch.ram_bytes()) as u64,
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;
    use mhd_workload::FileEntry;

    fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    fn engine() -> FbcEngine<MemBackend> {
        FbcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap()
    }

    #[test]
    fn identical_file_dedups_at_big_granularity() {
        let mut e = engine();
        let content = random(64 << 10, 1);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.dup_bytes, 64 << 10);
        assert_eq!(r.ledger.stored_data_bytes, 64 << 10);
    }

    #[test]
    fn cold_fresh_data_stays_big() {
        let mut e = engine();
        e.process_snapshot(&snapshot("a", vec![random(128 << 10, 2)])).unwrap();
        let r = e.finish().unwrap();
        // All-new content has no frequent small chunks: no re-chunking,
        // few stored (big) chunks.
        assert_eq!(e.rechunked_bigs(), 0);
        assert!(r.chunks_stored < 100, "stored {}", r.chunks_stored);
    }

    #[test]
    fn frequent_content_triggers_rechunking() {
        let mut e = engine();
        // A 4 KiB motif repeated many times across two streams: its small
        // chunks become frequent, so big chunks containing it re-chunk.
        let motif = random(4 << 10, 3);
        let mut first = Vec::new();
        for i in 0..8 {
            first.extend_from_slice(&motif);
            first.extend_from_slice(&random(8 << 10, 10 + i));
        }
        e.process_snapshot(&snapshot("a", vec![first])).unwrap();
        let mut second = Vec::new();
        for i in 0..8 {
            second.extend_from_slice(&motif);
            second.extend_from_slice(&random(8 << 10, 30 + i));
        }
        e.process_snapshot(&snapshot("b", vec![second])).unwrap();
        let r = e.finish().unwrap();
        assert!(e.rechunked_bigs() > 0, "frequent motif must trigger re-chunking");
        // The motif occurrences in stream b dedup at small granularity.
        assert!(r.dup_bytes > 3 * (4 << 10), "dup {}", r.dup_bytes);
    }

    #[test]
    fn conserves_bytes_and_restores() {
        let corpus = mhd_workload::Corpus::generate(mhd_workload::CorpusSpec::tiny(91));
        let mut e = engine();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.stored_data_bytes + r.dup_bytes, r.input_bytes);
        assert!(crate::restore::verify_corpus(e.substrate_mut(), &corpus).unwrap() > 0);
    }
}
