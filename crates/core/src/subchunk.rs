//! The SubChunk baseline (anchor-driven subchunk deduplication,
//! Romanski et al., SYSTOR'11, as modelled in the paper's §II/§IV).
//!
//! SubChunk also chunks big-first, but re-chunks *every* non-duplicate big
//! chunk into small chunks for deduplication, then coalesces the
//! non-duplicate small chunks of one big chunk into a single container
//! DiskChunk (so there are ~`N/SD` DiskChunks of expected size `SD × ECS`).
//! The per-file Manifest records the small-chunk-to-container-chunk
//! mapping: 36 bytes per entry plus a shared 28-byte record per container
//! group (Table I: `36N + 28N/SD` manifest bytes), and is "conservatively
//! allocated with one Hook".
//!
//! Because only that one Hook per file is on disk, a duplicate slice is
//! found only when its first hash hits a Hook or when the covering
//! Manifest is already cached — "when one small-chunk-to-container-chunk
//! mapping was not hit, the duplicate data inside the big chunks covered
//! by the mapping would be missed", the DER loss visible in Fig. 8. Big
//! chunk identities are kept in a RAM index whose probes are charged as
//! big-chunk queries, following the paper's Table II accounting.

use std::time::Instant;

use bytes::Bytes;
use mhd_bloom::BloomFilter;
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::{ChunkHash, FxHashMap};
use mhd_store::{
    Backend, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, SliceTracker,
};

/// Anchor-driven subchunk deduplicator.
pub struct SubChunkEngine<B: Backend> {
    config: EngineConfig,
    big_chunker: AnyChunker,
    small_chunker: AnyChunker,
    substrate: Substrate<B>,
    bloom: BloomFilter,
    cache: ManifestCache,
    /// RAM index of big-chunk content: big hash → the extents its content
    /// resolves to (its small chunks' homes).
    big_index: FxHashMap<ChunkHash, Vec<Extent>>,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    dedup_seconds: f64,
}

impl<B: Backend> SubChunkEngine<B> {
    /// Creates an engine over `backend`.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let small_chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        let big_chunker = config
            .chunker
            .build(config.big_chunk_size())
            .map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(SubChunkEngine {
            big_chunker,
            small_chunker,
            substrate: Substrate::new(backend),
            bloom: BloomFilter::with_bytes(config.bloom_bytes, (config.bloom_bytes * 2) as u64),
            cache: ManifestCache::new(config.cache_manifests),
            big_index: FxHashMap::default(),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            dedup_seconds: 0.0,
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    /// Small-chunk lookup: Manifest cache, then Bloom + the (sparse,
    /// one-per-file) Hooks. Misses here are exactly the paper's missed
    /// duplicates.
    fn lookup_small(&mut self, hash: ChunkHash) -> EngineResult<Option<Extent>> {
        let found = if let Some((mid, idx)) = self.cache.find_hash(&hash) {
            self.substrate.stats_mut().cache_hits += 1;
            Some(self.cache.peek(mid).expect("resident").manifest().entries[idx as usize])
        } else if !self.bloom.contains(&hash) {
            self.substrate.stats_mut().bloom_suppressed += 1;
            None
        } else {
            self.substrate.stats_mut().small_chunk_query += 1;
            if let Some(mid) = self.substrate.lookup_hook(hash)? {
                let manifest = self.substrate.load_manifest(mid)?;
                let e = manifest.entries.iter().find(|e| e.hash == hash).copied();
                if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                    if dirty {
                        self.substrate.update_manifest(&evicted)?;
                    }
                }
                e
            } else {
                None // hash exists somewhere, but no hook reaches it: missed
            }
        };
        Ok(found.map(|e| Extent { container: e.container, offset: e.offset, len: e.size }))
    }

    fn process_file(&mut self, path: &str, data: &Bytes) -> EngineResult<()> {
        self.input_bytes += data.len() as u64;
        let bigs = chunk_and_hash(&self.big_chunker, data);

        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut fm = FileManifest::new();

        for b in &bigs {
            // Big-chunk-first query (charged per the paper's Table II; the
            // Bloom filter suppresses never-seen big hashes).
            if self.bloom.contains(&b.hash) {
                self.substrate.stats_mut().big_chunk_query += 1;
                if let Some(extents) = self.big_index.get(&b.hash) {
                    let total: u64 = extents.iter().map(|e| e.len).sum();
                    debug_assert_eq!(total, b.len as u64);
                    for e in extents.clone() {
                        fm.push(e);
                    }
                    self.slice.on_dup(b.len as u64, 1);
                    continue;
                }
            } else {
                self.substrate.stats_mut().bloom_suppressed += 1;
            }

            // Non-duplicate big chunk: re-chunk everything into small
            // chunks; coalesce its non-dup smalls into one container.
            let big_bytes = Bytes::copy_from_slice(b.slice(data));
            let smalls = chunk_and_hash(&self.small_chunker, &big_bytes);
            let mut builder = self.substrate.new_disk_chunk();
            let mut homes: Vec<Extent> = Vec::with_capacity(smalls.len());
            for s in &smalls {
                if let Some(extent) = self.lookup_small(s.hash)? {
                    self.slice.on_dup(extent.len, 1);
                    homes.push(extent);
                    fm.push(extent);
                } else {
                    self.slice.on_nondup();
                    let offset = builder.append(s.slice(&big_bytes));
                    let extent = Extent { container: builder.id(), offset, len: s.len as u64 };
                    entries.push(ManifestEntry {
                        hash: s.hash,
                        container: builder.id(),
                        offset,
                        size: s.len as u64,
                        is_hook: false,
                    });
                    homes.push(extent);
                    fm.push(extent);
                    self.chunks_stored += 1;
                }
            }
            self.substrate.write_disk_chunk(builder)?;
            self.big_index.insert(b.hash, coalesce(homes));
            self.bloom.insert(&b.hash);
        }
        self.slice.reset_run();

        if !entries.is_empty() {
            let mid = self.substrate.new_manifest_id();
            // Small hashes enter the Bloom filter (the summary of the
            // index); only the first one gets an on-disk Hook.
            for e in &entries {
                self.bloom.insert(&e.hash);
            }
            let first_hash = entries[0].hash;
            let manifest = Manifest {
                id: mid,
                format: ManifestFormat::Grouped,
                entries: std::mem::take(&mut entries),
            };
            self.substrate.write_manifest(&manifest)?;
            self.substrate.write_hook(first_hash, mid)?;
            if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                if dirty {
                    self.substrate.update_manifest(&evicted)?;
                }
            }
            self.files += 1;
        }
        self.substrate.write_file_manifest(path, &fm)?;
        debug_assert_eq!(fm.total_len(), data.len() as u64);
        Ok(())
    }
}

/// Merges byte-adjacent extents (used to keep the big-chunk index compact).
fn coalesce(extents: Vec<Extent>) -> Vec<Extent> {
    let mut out: Vec<Extent> = Vec::with_capacity(extents.len());
    for e in extents {
        if let Some(last) = out.last_mut() {
            if last.container == e.container && last.offset + last.len == e.offset {
                last.len += e.len;
                continue;
            }
        }
        out.push(e);
    }
    out
}

impl<B: Backend> Deduplicator for SubChunkEngine<B> {
    fn name(&self) -> &'static str {
        "subchunk"
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        for file in &snapshot.files {
            self.process_file(&file.path, &file.data)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        for (manifest, dirty) in self.cache.drain() {
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        let big_index_ram: u64 = self
            .big_index
            .values()
            .map(|v| 20 + (v.len() * std::mem::size_of::<Extent>()) as u64)
            .sum();
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: 0,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: self.bloom.ram_bytes() as u64 + big_index_ram,
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;
    use mhd_workload::FileEntry;

    fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    fn engine() -> SubChunkEngine<MemBackend> {
        SubChunkEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap()
    }

    #[test]
    fn identical_file_dedups_via_big_index() {
        let mut e = engine();
        let content = random(64 << 10, 1);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.dup_bytes, 64 << 10);
        assert_eq!(r.ledger.stored_data_bytes, 64 << 10);
        assert!(r.stats.big_chunk_query > 0);
    }

    #[test]
    fn container_per_big_chunk() {
        let mut e = engine();
        e.process_snapshot(&snapshot("a", vec![random(128 << 10, 2)])).unwrap();
        let r = e.finish().unwrap();
        // DiskChunk inodes ≈ number of big chunks (ECS·SD = 4 KiB avg →
        // ~32 for 128 KiB), far more than the 1-per-file of CDC/MHD.
        assert!(r.ledger.inodes_disk_chunks >= 8, "{}", r.ledger.inodes_disk_chunks);
        // But only one manifest and one hook (per file).
        assert_eq!(r.ledger.inodes_manifests, 1);
        assert_eq!(r.ledger.inodes_hooks, 1);
    }

    #[test]
    fn manifest_bytes_grow_per_small_chunk() {
        let mut e = engine();
        e.process_snapshot(&snapshot("a", vec![random(64 << 10, 3)])).unwrap();
        let r = e.finish().unwrap();
        // Grouped format: ≥ 36 bytes per stored small chunk.
        assert!(r.ledger.manifest_bytes >= 36 * r.chunks_stored);
    }

    #[test]
    fn misses_duplicates_when_hook_not_hit() {
        // Duplicate content whose covering manifest was evicted from the
        // cache and whose single hook hash is absent from the new stream:
        // SubChunk misses it (the paper's §V-B DER weakness).
        let mut cfg = EngineConfig::new(512, 8);
        cfg.cache_manifests = 1;
        let mut e = SubChunkEngine::new(MemBackend::new(), cfg).unwrap();
        let original = random(64 << 10, 4);
        e.process_snapshot(&snapshot("a", vec![original.clone()])).unwrap();
        // An unrelated stream evicts the original's manifest.
        e.process_snapshot(&snapshot("b", vec![random(64 << 10, 5)])).unwrap();
        // New stream: fresh prefix, then an interior region of the
        // original (not including the original's first chunk).
        let mut third = random(32 << 10, 6);
        third.extend_from_slice(&original[30_000..45_000]);
        third.extend_from_slice(&random(32 << 10, 7));
        e.process_snapshot(&snapshot("c", vec![third])).unwrap();
        let r = e.finish().unwrap();

        // CDC with its full per-chunk index on the same input is the
        // reference for what was findable.
        let mut cdc = crate::CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let orig2 = random(64 << 10, 4);
        cdc.process_snapshot(&snapshot("a", vec![orig2.clone()])).unwrap();
        cdc.process_snapshot(&snapshot("b", vec![random(64 << 10, 5)])).unwrap();
        let mut third2 = random(32 << 10, 6);
        third2.extend_from_slice(&orig2[30_000..45_000]);
        third2.extend_from_slice(&random(32 << 10, 7));
        cdc.process_snapshot(&snapshot("c", vec![third2])).unwrap();
        let rc = cdc.finish().unwrap();

        // Whole realigned big chunks are still found through SubChunk's
        // big-chunk index, but the small-granularity edges are missed:
        // strictly less than CDC recovers.
        assert!(rc.dup_bytes > 12_000, "CDC reference found only {}", rc.dup_bytes);
        assert!(
            r.dup_bytes < rc.dup_bytes,
            "subchunk {} should miss edges CDC {} finds",
            r.dup_bytes,
            rc.dup_bytes
        );
        // And the failed probes were charged as small-chunk queries.
        assert!(r.stats.small_chunk_query > 0);
    }

    #[test]
    fn coalesce_merges_adjacent() {
        use mhd_store::DiskChunkId;
        let e = |c: u64, o: u64, l: u64| Extent { container: DiskChunkId(c), offset: o, len: l };
        assert_eq!(coalesce(vec![e(1, 0, 5), e(1, 5, 5), e(2, 0, 5)]).len(), 2);
        assert_eq!(coalesce(vec![]).len(), 0);
    }
}
