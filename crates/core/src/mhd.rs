//! The Metadata Harnessing Deduplication engine (BF-MHD).
//!
//! Implements §III of the paper:
//!
//! * **SHM** — non-duplicate chunks are buffered (buffer capacity 2·SD
//!   chunks; the front SD are flushed when it fills, the rest at file end).
//!   Each flushed run of up to SD chunks becomes *two* Manifest entries:
//!   the first chunk's hash is kept as a **Hook** and the remaining ≤ SD−1
//!   chunks are merged under a single hash — "the first and the last SD−1
//!   chunks respectively". Only Hook hashes enter the Bloom filter and the
//!   on-disk Hook store; merged hashes are reachable only through a cached
//!   Manifest (locality), exactly as in the paper.
//! * **BME/FME** — on a duplicate hit, the match is extended backward over
//!   the buffered chunks and forward over the lookahead, first by hash
//!   comparison, then — when the mismatching Manifest entry is a merged
//!   block that may straddle the duplicate/non-duplicate edge — by
//!   reloading the old bytes from the DiskChunk and comparing directly.
//! * **HHR** — a straddling merged entry is split into at most three new
//!   entries: the remainder, the **EdgeHash** block (sized like the first
//!   non-matching incoming chunk, to keep the same slice from re-triggering
//!   an identical re-chunk), and the duplicate region. The Manifest is
//!   mutated in cache, marked dirty, and written back on eviction or at
//!   finish. DiskChunks and Hooks are never modified.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use mhd_bloom::BloomFilter;
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::{sha1, ChunkHash, FxHashMap, FxHashSet};
use mhd_store::{
    Backend, DiskChunkBuilder, Extent, FileManifest, IoStats, Manifest, ManifestEntry,
    ManifestFormat, ManifestId, StoreError, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::{EngineConfig, HhrDupGranularity, HookIndex};
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, HashedChunk,
    HookPresence, SliceTracker,
};

/// The BF-MHD engine (Bloom-filter-based MHD, the variant evaluated in §V).
pub struct MhdEngine<B: Backend> {
    config: EngineConfig,
    chunker: AnyChunker,
    substrate: Substrate<B>,
    bloom: BloomFilter,
    /// SI-MHD only: the in-RAM hook index replacing Bloom filter + on-disk
    /// Hook files.
    sparse_hooks: FxHashMap<ChunkHash, ManifestId>,
    cache: ManifestCache,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    hhr_count: u64,
    dedup_seconds: f64,
    /// Optional shared-store presence oracle (two-phase daemon commits):
    /// consulted before the Bloom filter, which then only covers the
    /// hooks this engine wrote itself.
    presence: Option<Arc<dyn HookPresence>>,
    /// When a presence oracle is installed: every hash that missed
    /// lookup, for publish-time conflict detection.
    missed: FxHashSet<ChunkHash>,
}

/// Result of extending a match through one Manifest entry by byte
/// comparison.
struct ByteMatch {
    /// Whole incoming chunks matched (count).
    matched_chunks: usize,
    /// Bytes matched (sum of matched chunk lengths).
    matched_bytes: u64,
}

/// How many chunks, taken from the back of `buffer`, cover exactly `size`
/// bytes — `None` when chunk boundaries do not align with that range.
fn chunks_covering_suffix(buffer: &VecDeque<HashedChunk>, size: u64) -> Option<usize> {
    let mut total = 0u64;
    for (count, chunk) in buffer.iter().rev().enumerate() {
        total += chunk.len as u64;
        if total == size {
            return Some(count + 1);
        }
        if total > size {
            return None;
        }
    }
    None
}

/// How many leading chunks of `chunks` cover exactly `size` bytes.
fn chunks_covering_prefix(chunks: &[HashedChunk], size: u64) -> Option<usize> {
    let mut total = 0u64;
    for (count, chunk) in chunks.iter().enumerate() {
        total += chunk.len as u64;
        if total == size {
            return Some(count + 1);
        }
        if total > size {
            return None;
        }
    }
    None
}

impl<B: Backend> MhdEngine<B> {
    /// Creates an engine over `backend` with the given configuration.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(MhdEngine {
            chunker,
            substrate: Substrate::new(backend),
            bloom: BloomFilter::with_bytes(config.bloom_bytes, (config.bloom_bytes * 2) as u64),
            sparse_hooks: FxHashMap::default(),
            cache: ManifestCache::new(config.cache_manifests),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            hhr_count: 0,
            dedup_seconds: 0.0,
            presence: None,
            missed: FxHashSet::default(),
            config,
        })
    }

    /// Installs a hook-presence oracle: lookups consult it before the
    /// Bloom filter (whose coverage shrinks to this engine's own hooks),
    /// every missing hook is tolerated as a plain miss (the oracle may
    /// run ahead of durable state), and every missed hash is recorded for
    /// [`MhdEngine::take_missed_hashes`]. This is the staging-engine mode
    /// of a two-phase daemon commit.
    pub fn set_hook_presence(&mut self, oracle: Arc<dyn HookPresence>) {
        self.presence = Some(oracle);
    }

    /// Drains the hashes that missed lookup since the last call (always
    /// empty unless a presence oracle is installed). A publisher
    /// intersects these with concurrently-published hooks to detect that
    /// this pipeline deduplicated against a stale view.
    pub fn take_missed_hashes(&mut self) -> FxHashSet<ChunkHash> {
        std::mem::take(&mut self.missed)
    }

    /// Records (under a presence oracle) and returns a lookup miss.
    fn miss(&mut self, hash: ChunkHash) -> EngineResult<Option<(ManifestId, u32)>> {
        if self.presence.is_some() {
            self.missed.insert(hash);
        }
        Ok(None)
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    /// Read access to the substrate.
    pub fn substrate(&self) -> &Substrate<B> {
        // Only &self accessors on Substrate are stats()/ledger(), which are
        // what callers need here.
        &self.substrate
    }

    /// Looks up an incoming chunk hash: RAM cache first, then Bloom filter,
    /// then the on-disk Hook store (loading the Manifest it points to).
    fn lookup(&mut self, hash: ChunkHash) -> EngineResult<Option<(ManifestId, u32)>> {
        if let Some(hit) = self.cache.find_hash(&hash) {
            self.substrate.stats_mut().cache_hits += 1;
            return Ok(Some(hit));
        }
        let mid = match self.config.mhd.hook_index {
            HookIndex::Bloom => {
                // With a presence oracle, the shared index answers for
                // hooks other sessions published; the Bloom filter only
                // covers this engine's own hooks.
                let claimed = match &self.presence {
                    Some(oracle) => oracle.contains(&hash) || self.bloom.contains(&hash),
                    None => self.bloom.contains(&hash),
                };
                if !claimed {
                    self.substrate.stats_mut().bloom_suppressed += 1;
                    return self.miss(hash);
                }
                match self.substrate.lookup_hook(hash)? {
                    Some(mid) => {
                        mhd_obs::counter!("mhd.hook_hits").inc();
                        mhd_obs::trace(mhd_obs::TraceEvent::HookHit);
                        mid
                    }
                    None => {
                        mhd_obs::counter!("mhd.bloom_false_positives").inc();
                        return self.miss(hash);
                    }
                }
            }
            HookIndex::SparseIndex => match self.sparse_hooks.get(&hash) {
                Some(&mid) => {
                    // RAM lookup: no disk probe charged.
                    mhd_obs::counter!("mhd.hook_hits").inc();
                    mhd_obs::trace(mhd_obs::TraceEvent::HookHit);
                    mid
                }
                None => return self.miss(hash),
            },
        };
        let manifest = match self.substrate.load_manifest(mid) {
            Ok(m) => m,
            // Under a presence oracle a hook can race the manifest it
            // points to (the lock-free index runs ahead of the publisher's
            // flush, or GC swept the manifest): degrade to a miss —
            // publish-time conflict detection re-runs the pipeline when
            // the race actually cost deduplication.
            Err(StoreError::NotFound { .. }) if self.presence.is_some() => {
                return self.miss(hash);
            }
            Err(e) => return Err(e.into()),
        };
        self.insert_into_cache(manifest)?;
        // Resolve the entry through the cache's per-manifest hash index
        // built on fill — a linear scan here is O(entries) per hook hit,
        // which dominates on large manifests.
        let idx = self.cache.peek(mid).and_then(|cached| cached.find(&hash));
        // Hooks are immutable and HHR never re-chunks Hook entries, so the
        // hash is always present in the Manifest its Hook points to —
        // except under a presence oracle, where the hook may map to a
        // concurrent publisher's manifest that happens to collide.
        debug_assert!(
            self.presence.is_some() || idx.is_some(),
            "hook points at manifest lacking its hash"
        );
        match idx {
            Some(i) => Ok(Some((mid, i))),
            None => self.miss(hash),
        }
    }

    fn insert_into_cache(&mut self, manifest: Manifest) -> EngineResult<()> {
        if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
            if dirty {
                self.substrate.update_manifest(&evicted)?;
            }
        }
        Ok(())
    }

    /// Flushes one SHM run of up to SD buffered chunks into the builder:
    /// the first chunk becomes a Hook entry, the remaining chunks one
    /// merged entry.
    fn flush_run(
        &mut self,
        run: &[HashedChunk],
        data: &Bytes,
        builder: &mut DiskChunkBuilder,
        entries: &mut Vec<ManifestEntry>,
        fm: &mut FileManifest,
    ) {
        debug_assert!(!run.is_empty() && run.len() <= self.config.sd);
        let container = builder.id();
        let first = &run[0];
        let off0 = builder.append(first.slice(data));
        entries.push(ManifestEntry {
            hash: first.hash,
            container,
            offset: off0,
            size: first.len as u64,
            is_hook: true,
        });
        if run.len() > 1 {
            let merged_start = run[1].offset as usize;
            let merged_end = run[run.len() - 1].end() as usize;
            let merged = &data[merged_start..merged_end];
            let off1 = builder.append(merged);
            entries.push(ManifestEntry {
                hash: sha1(merged),
                container,
                offset: off1,
                size: merged.len() as u64,
                is_hook: false,
            });
        }
        self.chunks_stored += run.len() as u64;
        fm.push(Extent { container, offset: off0, len: (run[run.len() - 1].end() - first.offset) });
    }

    /// Drains the first `count` chunks of the buffer through SHM.
    fn flush_front(
        &mut self,
        buffer: &mut VecDeque<HashedChunk>,
        count: usize,
        data: &Bytes,
        builder: &mut DiskChunkBuilder,
        entries: &mut Vec<ManifestEntry>,
        fm: &mut FileManifest,
    ) {
        let mut run = Vec::with_capacity(count.min(self.config.sd));
        let mut remaining = count;
        while remaining > 0 {
            run.clear();
            while remaining > 0 && run.len() < self.config.sd {
                // lint: allow(unwrap): callers pass count <= buffer.len(), checked at entry
                run.push(buffer.pop_front().expect("flush_front within buffer length"));
                remaining -= 1;
            }
            self.flush_run(&run, data, builder, entries, fm);
        }
    }

    /// Byte-compares the tail of an old merged block against the buffer
    /// tail, matching whole incoming chunks only (the straddling chunk is
    /// new data and stays stored intact — the paper's Fig. 6, where Chunk
    /// N3 is not split).
    fn match_suffix(old: &[u8], buffer: &VecDeque<HashedChunk>, data: &Bytes) -> ByteMatch {
        let mut matched_chunks = 0usize;
        let mut matched_bytes = 0u64;
        for chunk in buffer.iter().rev() {
            let len = chunk.len as u64;
            if matched_bytes + len > old.len() as u64 {
                break;
            }
            let old_tail = &old
                [old.len() - (matched_bytes + len) as usize..old.len() - matched_bytes as usize];
            if old_tail != chunk.slice(data) {
                break;
            }
            matched_chunks += 1;
            matched_bytes += len;
        }
        ByteMatch { matched_chunks, matched_bytes }
    }

    /// Byte-compares the head of an old merged block against upcoming
    /// chunks, matching whole chunks only.
    fn match_prefix(old: &[u8], chunks: &[HashedChunk], data: &Bytes) -> ByteMatch {
        let mut matched_chunks = 0usize;
        let mut matched_bytes = 0u64;
        for chunk in chunks {
            let len = chunk.len as u64;
            if matched_bytes + len > old.len() as u64 {
                break;
            }
            let old_head = &old[matched_bytes as usize..(matched_bytes + len) as usize];
            if old_head != chunk.slice(data) {
                break;
            }
            matched_chunks += 1;
            matched_bytes += len;
        }
        ByteMatch { matched_chunks, matched_bytes }
    }

    /// Builds the replacement entries for a straddling merged entry `e`:
    /// remainder + EdgeHash + duplicate region (backward direction) or
    /// duplicate region + EdgeHash + remainder (forward direction).
    ///
    /// `dup_chunks` are the incoming chunks whose bytes matched (used for
    /// the per-chunk ablation granularity); `edge_len` is the length of the
    /// first non-matching incoming chunk (clamped to what remains of `e`).
    #[allow(clippy::too_many_arguments)]
    fn hhr_split(
        &mut self,
        e: ManifestEntry,
        old: &[u8],
        dup_bytes: u64,
        dup_chunks: &[HashedChunk],
        edge_len: u64,
        backward: bool,
    ) -> Vec<ManifestEntry> {
        debug_assert!(dup_bytes > 0 && dup_bytes < e.size);
        let container = e.container;
        let nondup = e.size - dup_bytes;
        let edge_len = if self.config.mhd.edge_hash { edge_len.min(nondup) } else { 0 };
        let rem_len = nondup - edge_len;
        self.hhr_count += 1;
        mhd_obs::counter!("mhd.hhr_splits").inc();
        mhd_obs::histogram!("mhd.hhr_dup_bytes").record(dup_bytes);

        let mut parts: Vec<(u64, u64, bool)> = Vec::with_capacity(3); // (rel_off, len, is_dup)
        if backward {
            // [remainder][edge][dup] — dup is the tail.
            if rem_len > 0 {
                parts.push((0, rem_len, false));
            }
            if edge_len > 0 {
                parts.push((rem_len, edge_len, false));
            }
            parts.push((nondup, dup_bytes, true));
        } else {
            // [dup][edge][remainder] — dup is the head.
            parts.push((0, dup_bytes, true));
            if edge_len > 0 {
                parts.push((dup_bytes, edge_len, false));
            }
            if rem_len > 0 {
                parts.push((dup_bytes + edge_len, rem_len, false));
            }
        }

        let mut out = Vec::with_capacity(parts.len() + dup_chunks.len());
        for (rel, len, is_dup) in parts {
            if is_dup && self.config.mhd.hhr_dup == HhrDupGranularity::PerChunk {
                // One entry per matched incoming chunk; their hashes are
                // already known.
                let mut cursor = rel;
                for c in dup_chunks {
                    out.push(ManifestEntry {
                        hash: c.hash,
                        container,
                        offset: e.offset + cursor,
                        size: c.len as u64,
                        is_hook: false,
                    });
                    cursor += c.len as u64;
                }
                debug_assert_eq!(cursor, rel + len);
            } else {
                out.push(ManifestEntry {
                    hash: sha1(&old[rel as usize..(rel + len) as usize]),
                    container,
                    offset: e.offset + rel,
                    size: len,
                    is_hook: false,
                });
            }
        }
        if mhd_obs::tracing() {
            mhd_obs::trace(mhd_obs::TraceEvent::HhrSplit { parts: out.len() as u64 });
        }
        out
    }

    /// Backward Match Extension. Consumes matching chunks from the buffer
    /// tail and returns their extents in reverse file order.
    fn backward_extend(
        &mut self,
        mid: ManifestId,
        hit_idx: u32,
        buffer: &mut VecDeque<HashedChunk>,
        data: &Bytes,
    ) -> EngineResult<(Vec<Extent>, u64, u64)> {
        let mut extents_rev: Vec<Extent> = Vec::new();
        let mut dup_bytes = 0u64;
        let mut dup_chunks = 0u64;
        let mut k = hit_idx as i64 - 1;

        while k >= 0 && !buffer.is_empty() {
            let e = {
                // lint: allow(unwrap): the BME loop runs under the cache pin taken at hit time
                let cached = self.cache.peek(mid).expect("hit manifest resident");
                cached.manifest().entries[k as usize]
            };
            // lint: allow(unwrap): loop condition guarantees a non-empty buffer
            let tail = *buffer.back().expect("non-empty buffer");
            if e.hash == tail.hash {
                buffer.pop_back();
                extents_rev.push(Extent { container: e.container, offset: e.offset, len: e.size });
                dup_bytes += e.size;
                dup_chunks += 1;
                k -= 1;
                continue;
            }
            // Merged entry: "new hash values are calculated for the
            // buffered chunk bytes before the HitChunk and compared with
            // the hash values ... in the Manifest" — hash the trailing
            // e.size buffered bytes (when they align with whole chunks)
            // and compare, avoiding any disk I/O for fully-duplicate
            // merged blocks.
            if !e.is_hook && e.size > tail.len as u64 {
                if let Some(count) = chunks_covering_suffix(buffer, e.size) {
                    let end = tail.end() as usize;
                    let start = end - e.size as usize;
                    if sha1(&data[start..end]) == e.hash {
                        for _ in 0..count {
                            buffer.pop_back();
                        }
                        extents_rev.push(Extent {
                            container: e.container,
                            offset: e.offset,
                            len: e.size,
                        });
                        dup_bytes += e.size;
                        dup_chunks += count as u64;
                        k -= 1;
                        continue;
                    }
                }
            }
            // Mismatch. Only a merged block larger than the incoming chunk
            // can straddle the duplicate/non-duplicate edge.
            if e.is_hook || e.size <= tail.len as u64 {
                break;
            }
            let old = match self.substrate.read_chunk_range(e.container, e.offset, e.size) {
                Ok(old) => old,
                // Under a presence oracle the container may belong to a
                // concurrent publisher and not be flushed yet: stop
                // extending instead of failing the whole pipeline.
                Err(StoreError::NotFound { .. }) if self.presence.is_some() => break,
                Err(err) => return Err(err.into()),
            };
            let m = Self::match_suffix(&old, buffer, data);
            if m.matched_chunks == 0 {
                break;
            }
            // Record extents and drop the matched chunks; collect them for
            // the per-chunk granularity option.
            let mut matched: Vec<HashedChunk> = Vec::with_capacity(m.matched_chunks);
            let mut cursor = e.size;
            for _ in 0..m.matched_chunks {
                // lint: allow(unwrap): matched_chunks counted from this buffer while matching
                let c = buffer.pop_back().expect("matched chunk present");
                cursor -= c.len as u64;
                extents_rev.push(Extent {
                    container: e.container,
                    offset: e.offset + cursor,
                    len: c.len as u64,
                });
                matched.push(c);
            }
            matched.reverse(); // file order
            dup_bytes += m.matched_bytes;
            dup_chunks += m.matched_chunks as u64;

            if m.matched_bytes == e.size {
                // The whole merged block matched: its hash already covers
                // exactly these bytes; no re-chunk needed; keep walking.
                k -= 1;
                continue;
            }
            // Straddle: split the entry (HHR).
            let edge_len = buffer.back().map(|c| c.len as u64).unwrap_or(0);
            let replacement = self.hhr_split(e, &old, m.matched_bytes, &matched, edge_len, true);
            let kk = k as usize;
            self.cache.mutate(mid, |man| {
                man.entries.splice(kk..kk + 1, replacement);
            });
            break;
        }
        Ok((extents_rev, dup_bytes, dup_chunks))
    }

    /// Forward Match Extension. Returns extents (file order), bytes,
    /// chunks consumed from the lookahead.
    fn forward_extend(
        &mut self,
        mid: ManifestId,
        hit_idx: u32,
        chunks: &[HashedChunk],
        mut i: usize,
        data: &Bytes,
    ) -> EngineResult<(Vec<Extent>, u64, usize)> {
        let mut extents: Vec<Extent> = Vec::new();
        let mut dup_bytes = 0u64;
        let start_i = i;
        let mut k = hit_idx as usize + 1;

        while i < chunks.len() {
            let e = {
                // lint: allow(unwrap): mid was pinned by the caller's lookup and peek never evicts
                let cached = self.cache.peek(mid).expect("hit manifest resident");
                let entries = &cached.manifest().entries;
                if k >= entries.len() {
                    break;
                }
                entries[k]
            };
            let c = chunks[i];
            if e.hash == c.hash {
                extents.push(Extent { container: e.container, offset: e.offset, len: e.size });
                dup_bytes += e.size;
                i += 1;
                k += 1;
                continue;
            }
            // Merged entry: hash the next e.size bytes of lookahead (when
            // whole chunks cover them exactly) and compare — fully
            // duplicate merged blocks match without any disk I/O.
            if !e.is_hook && e.size > c.len as u64 {
                if let Some(count) = chunks_covering_prefix(&chunks[i..], e.size) {
                    let start = c.offset as usize;
                    let end = start + e.size as usize;
                    if sha1(&data[start..end]) == e.hash {
                        extents.push(Extent {
                            container: e.container,
                            offset: e.offset,
                            len: e.size,
                        });
                        dup_bytes += e.size;
                        i += count;
                        k += 1;
                        continue;
                    }
                }
            }
            if e.is_hook || e.size <= c.len as u64 {
                break;
            }
            let old = match self.substrate.read_chunk_range(e.container, e.offset, e.size) {
                Ok(old) => old,
                // Under a presence oracle the container may belong to a
                // concurrent publisher and not be flushed yet: stop
                // extending instead of failing the whole pipeline.
                Err(StoreError::NotFound { .. }) if self.presence.is_some() => break,
                Err(err) => return Err(err.into()),
            };
            let m = Self::match_prefix(&old, &chunks[i..], data);
            if m.matched_chunks == 0 {
                break;
            }
            let matched: Vec<HashedChunk> = chunks[i..i + m.matched_chunks].to_vec();
            let mut cursor = 0u64;
            for c in &matched {
                extents.push(Extent {
                    container: e.container,
                    offset: e.offset + cursor,
                    len: c.len as u64,
                });
                cursor += c.len as u64;
            }
            dup_bytes += m.matched_bytes;
            i += m.matched_chunks;

            if m.matched_bytes == e.size {
                k += 1;
                continue;
            }
            let edge_len = chunks.get(i).map(|c| c.len as u64).unwrap_or(0);
            let replacement = self.hhr_split(e, &old, m.matched_bytes, &matched, edge_len, false);
            self.cache.mutate(mid, |man| {
                man.entries.splice(k..k + 1, replacement);
            });
            break;
        }
        Ok((extents, dup_bytes, i - start_i))
    }

    /// Deduplicates one file.
    fn process_file(&mut self, path: &str, data: &Bytes) -> EngineResult<()> {
        self.input_bytes += data.len() as u64;
        let chunks = chunk_and_hash(&self.chunker, data);
        let _timer = mhd_obs::span!("stage.dedup_ns");

        let mut builder = self.substrate.new_disk_chunk();
        let mut entries: Vec<ManifestEntry> = Vec::new();
        let mut fm = FileManifest::new();
        let mut buffer: VecDeque<HashedChunk> = VecDeque::with_capacity(2 * self.config.sd);
        // Extents for still-buffered chunks are deferred; this queue holds
        // dup extents that must follow the next buffer flush in file order.
        let mut i = 0usize;

        while i < chunks.len() {
            let c = chunks[i];
            match self.lookup(c.hash)? {
                None => {
                    buffer.push_back(c);
                    self.slice.on_nondup();
                    if buffer.len() == 2 * self.config.sd {
                        // SHM partial flush: the front SD chunks can no
                        // longer be backward-extended (BME reach is the
                        // buffer) and go to the DiskChunk.
                        self.flush_front(
                            &mut buffer,
                            self.config.sd,
                            data,
                            &mut builder,
                            &mut entries,
                            &mut fm,
                        );
                    }
                    i += 1;
                }
                Some((mid, hit_idx)) => {
                    let hit_entry = {
                        // lint: allow(unwrap): lookup_hash just resolved mid, so it is resident
                        let cached = self.cache.peek(mid).expect("resident");
                        cached.manifest().entries[hit_idx as usize]
                    };
                    debug_assert_eq!(hit_entry.size, c.len as u64, "hash hit with size mismatch");

                    let (bme_extents_rev, bme_bytes, bme_chunks) =
                        if self.config.mhd.backward_extension {
                            self.backward_extend(mid, hit_idx, &mut buffer, data)?
                        } else {
                            (Vec::new(), 0, 0)
                        };
                    if bme_chunks > 0 {
                        mhd_obs::counter!("mhd.bme_extensions").inc();
                        mhd_obs::counter!("mhd.bme_chunks").add(bme_chunks);
                        mhd_obs::counter!("mhd.bme_bytes").add(bme_bytes);
                        mhd_obs::trace(mhd_obs::TraceEvent::BmeExtend {
                            dir: mhd_obs::ExtendDir::Backward,
                            chunks: bme_chunks,
                        });
                    }
                    // Everything left in the buffer is confirmed
                    // non-duplicate; it precedes the dup region in file
                    // order, so flush it first.
                    let remaining = buffer.len();
                    if remaining > 0 {
                        self.flush_front(
                            &mut buffer,
                            remaining,
                            data,
                            &mut builder,
                            &mut entries,
                            &mut fm,
                        );
                    }
                    for ext in bme_extents_rev.into_iter().rev() {
                        fm.push(ext);
                    }
                    fm.push(Extent {
                        container: hit_entry.container,
                        offset: hit_entry.offset,
                        len: hit_entry.size,
                    });

                    // Recompute the hit position: BME's HHR may have
                    // changed entry indices before it.
                    let hit_idx_now = self
                        .cache
                        .peek(mid)
                        // lint: allow(unwrap): mid stayed resident across extend_backward (no eviction)
                        .expect("resident")
                        .find(&c.hash)
                        // lint: allow(unwrap): HHR only re-chunks non-hook entries; the hit hash survives
                        .expect("hit hash still present");

                    let (fme_extents, fme_bytes, consumed) = if self.config.mhd.forward_extension {
                        self.forward_extend(mid, hit_idx_now, &chunks, i + 1, data)?
                    } else {
                        (Vec::new(), 0, 0)
                    };
                    if consumed > 0 {
                        mhd_obs::counter!("mhd.fme_extensions").inc();
                        mhd_obs::counter!("mhd.fme_chunks").add(consumed as u64);
                        mhd_obs::counter!("mhd.fme_bytes").add(fme_bytes);
                        mhd_obs::trace(mhd_obs::TraceEvent::BmeExtend {
                            dir: mhd_obs::ExtendDir::Forward,
                            chunks: consumed as u64,
                        });
                    }
                    for ext in fme_extents {
                        fm.push(ext);
                    }

                    let slice_bytes = bme_bytes + c.len as u64 + fme_bytes;
                    let slice_chunks = bme_chunks + 1 + consumed as u64;
                    self.slice.on_dup(slice_bytes, slice_chunks);
                    i += 1 + consumed;
                }
            }
        }
        // Flush the buffer remainder and finalise the file.
        let remaining = buffer.len();
        if remaining > 0 {
            self.flush_front(&mut buffer, remaining, data, &mut builder, &mut entries, &mut fm);
        }
        self.slice.reset_run();

        if !builder.is_empty() {
            let container_len = builder.len();
            self.substrate.write_disk_chunk(builder)?;
            let mid = self.substrate.new_manifest_id();
            let manifest = Manifest { id: mid, format: ManifestFormat::HookFlags, entries };
            debug_assert_eq!(manifest.check_tiling(container_len), Ok(()));
            self.substrate.write_manifest(&manifest)?;
            for e in manifest.entries.iter().filter(|e| e.is_hook) {
                match self.config.mhd.hook_index {
                    HookIndex::Bloom => {
                        self.substrate.write_hook(e.hash, mid)?;
                        self.bloom.insert(&e.hash);
                    }
                    HookIndex::SparseIndex => {
                        // First mapping wins, like on-disk Hooks.
                        self.sparse_hooks.entry(e.hash).or_insert(mid);
                    }
                }
            }
            self.insert_into_cache(manifest)?;
            self.files += 1;
        }
        self.substrate.write_file_manifest(path, &fm)?;
        debug_assert_eq!(fm.total_len(), data.len() as u64, "file manifest must cover the file");
        Ok(())
    }
}

/// Serialisable snapshot of an [`MhdEngine`]'s session state (everything
/// except the Manifest cache, which is rebuilt on demand, and the backend
/// itself). Enables durable, resumable stores — see the `mhd` CLI.
#[derive(Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct MhdState {
    /// Substrate bookkeeping.
    pub substrate: mhd_store::SubstrateState,
    /// Serialised Bloom filter (BF-MHD).
    pub bloom: Vec<u8>,
    /// Sparse hook index (SI-MHD): hex hash → manifest id.
    pub sparse_hooks: Vec<(String, u64)>,
    /// Input bytes processed so far.
    pub input_bytes: u64,
    /// Duplicate slice tracker totals.
    pub dup_slices: u64,
    /// Duplicate bytes found so far.
    pub dup_bytes: u64,
    /// Duplicate chunks found so far.
    pub dup_chunks: u64,
    /// Files that produced manifests.
    pub files: u64,
    /// Stored chunk count.
    pub chunks_stored: u64,
    /// HHR operations so far.
    pub hhr_count: u64,
    /// Accumulated dedup seconds.
    pub dedup_seconds: f64,
}

/// Counter deltas of one staged commit: a fresh engine over a staging
/// substrate starts all counters at zero, so after `finish()` its
/// counters *are* the session's contribution, merged into the long-lived
/// shared engine by [`MhdEngine::absorb_delta`] when the staged objects
/// are spliced in. Only read-side [`IoStats`] travel in the delta — the
/// splice re-charges the write side through the shared substrate.
#[derive(Debug, Clone, Default)]
pub struct SessionDelta {
    /// Raw input bytes the session processed.
    pub input_bytes: u64,
    /// Duplicate slices found.
    pub dup_slices: u64,
    /// Duplicate bytes found.
    pub dup_bytes: u64,
    /// Duplicate chunks found.
    pub dup_chunks: u64,
    /// Files that produced recipes.
    pub files: u64,
    /// Chunks the session stored.
    pub chunks_stored: u64,
    /// HHR re-chunk operations.
    pub hhr_count: u64,
    /// Dedup wall-clock seconds.
    pub dedup_seconds: f64,
    /// The session's I/O counters (only read-side fields are absorbed).
    pub stats: IoStats,
}

impl<B: Backend> MhdEngine<B> {
    /// Exports this engine's counters as a session delta. Meaningful on a
    /// staging engine after [`Deduplicator::finish`], where every counter
    /// started from zero.
    pub fn export_delta(&self) -> SessionDelta {
        SessionDelta {
            input_bytes: self.input_bytes,
            dup_slices: self.slice.slices,
            dup_bytes: self.slice.dup_bytes,
            dup_chunks: self.slice.dup_chunks,
            files: self.files,
            chunks_stored: self.chunks_stored,
            hhr_count: self.hhr_count,
            dedup_seconds: self.dedup_seconds,
            stats: *self.substrate.stats(),
        }
    }

    /// Merges a staged session's counters into this engine and registers
    /// its published hook hashes in the Bloom filter — required so the
    /// persisted filter stays coherent with the on-disk hook set (batch
    /// CLI runs reopen the same store from `state.json`).
    pub fn absorb_delta(&mut self, delta: &SessionDelta, hook_hashes: &[ChunkHash]) {
        self.input_bytes += delta.input_bytes;
        self.slice.slices += delta.dup_slices;
        self.slice.dup_bytes += delta.dup_bytes;
        self.slice.dup_chunks += delta.dup_chunks;
        self.files += delta.files;
        self.chunks_stored += delta.chunks_stored;
        self.hhr_count += delta.hhr_count;
        self.dedup_seconds += delta.dedup_seconds;
        let stats = self.substrate.stats_mut();
        stats.chunk_input += delta.stats.chunk_input;
        stats.hook_input += delta.stats.hook_input;
        stats.manifest_input += delta.stats.manifest_input;
        stats.cache_hits += delta.stats.cache_hits;
        stats.bloom_suppressed += delta.stats.bloom_suppressed;
        for hash in hook_hashes {
            self.bloom.insert(hash);
        }
    }

    /// Exports the resumable session state. Call after
    /// [`Deduplicator::finish`] (so dirty manifests are flushed).
    pub fn export_state(&self) -> MhdState {
        MhdState {
            substrate: self.substrate.export_state(),
            bloom: self.bloom.to_bytes(),
            sparse_hooks: self.sparse_hooks.iter().map(|(h, m)| (h.to_hex(), m.0)).collect(),
            input_bytes: self.input_bytes,
            dup_slices: self.slice.slices,
            dup_bytes: self.slice.dup_bytes,
            dup_chunks: self.slice.dup_chunks,
            files: self.files,
            chunks_stored: self.chunks_stored,
            hhr_count: self.hhr_count,
            dedup_seconds: self.dedup_seconds,
        }
    }

    /// Restores a session exported by [`MhdEngine::export_state`]. The
    /// backend must be the same durable store.
    pub fn import_state(&mut self, state: MhdState) -> EngineResult<()> {
        self.substrate.import_state(state.substrate)?;
        self.bloom = BloomFilter::from_bytes(&state.bloom)
            .ok_or_else(|| EngineError::Config("corrupt bloom filter state".into()))?;
        self.sparse_hooks = state
            .sparse_hooks
            .into_iter()
            .map(|(h, m)| {
                ChunkHash::from_hex(&h)
                    .map(|hash| (hash, ManifestId(m)))
                    .map_err(|e| EngineError::Config(format!("corrupt hook state: {e}")))
            })
            .collect::<EngineResult<_>>()?;
        self.input_bytes = state.input_bytes;
        self.slice.slices = state.dup_slices;
        self.slice.dup_bytes = state.dup_bytes;
        self.slice.dup_chunks = state.dup_chunks;
        self.files = state.files;
        self.chunks_stored = state.chunks_stored;
        self.hhr_count = state.hhr_count;
        self.dedup_seconds = state.dedup_seconds;
        Ok(())
    }
}

impl<B: Backend> Deduplicator for MhdEngine<B> {
    fn name(&self) -> &'static str {
        match self.config.mhd.hook_index {
            HookIndex::Bloom => "bf-mhd",
            HookIndex::SparseIndex => "si-mhd",
        }
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        for file in &snapshot.files {
            self.process_file(&file.path, &file.data)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        let start = Instant::now();
        for (manifest, dirty) in self.cache.drain() {
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: self.hhr_count,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: match self.config.mhd.hook_index {
                HookIndex::Bloom => self.bloom.ram_bytes() as u64,
                // 20-byte hash + 8-byte manifest pointer per entry.
                HookIndex::SparseIndex => 28 * self.sparse_hooks.len() as u64,
            },
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;

    fn engine(ecs: usize, sd: usize) -> MhdEngine<MemBackend> {
        MhdEngine::new(MemBackend::new(), EngineConfig::new(ecs, sd)).unwrap()
    }

    fn snapshot_from(path_prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| mhd_workload::FileEntry {
                    path: format!("{path_prefix}/f{i}"),
                    data: Bytes::from(d),
                })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        // Small xorshift so tests need no rand dependency wiring here.
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    #[test]
    fn chunks_covering_suffix_alignment() {
        let mk = |lens: &[u32]| -> VecDeque<HashedChunk> {
            let mut off = 0u64;
            lens.iter()
                .map(|&len| {
                    let c = HashedChunk { offset: off, len, hash: sha1(&off.to_le_bytes()) };
                    off += len as u64;
                    c
                })
                .collect()
        };
        let buf = mk(&[100, 200, 300]);
        // Exact suffix coverings.
        assert_eq!(chunks_covering_suffix(&buf, 300), Some(1));
        assert_eq!(chunks_covering_suffix(&buf, 500), Some(2));
        assert_eq!(chunks_covering_suffix(&buf, 600), Some(3));
        // Misaligned or oversized.
        assert_eq!(chunks_covering_suffix(&buf, 250), None);
        assert_eq!(chunks_covering_suffix(&buf, 601), None);
        assert_eq!(chunks_covering_suffix(&mk(&[]), 1), None);
    }

    #[test]
    fn chunks_covering_prefix_alignment() {
        let mut off = 0u64;
        let chunks: Vec<HashedChunk> = [100u32, 200, 300]
            .iter()
            .map(|&len| {
                let c = HashedChunk { offset: off, len, hash: sha1(&off.to_le_bytes()) };
                off += len as u64;
                c
            })
            .collect();
        assert_eq!(chunks_covering_prefix(&chunks, 100), Some(1));
        assert_eq!(chunks_covering_prefix(&chunks, 300), Some(2));
        assert_eq!(chunks_covering_prefix(&chunks, 600), Some(3));
        assert_eq!(chunks_covering_prefix(&chunks, 150), None);
        assert_eq!(chunks_covering_prefix(&[], 1), None);
    }

    #[test]
    fn hhr_split_covers_entry_exactly() {
        // Whatever the direction/options, the split must tile the old
        // entry's byte range with no gaps or overlap.
        let mut e = engine(512, 8);
        let old = random(4096, 40);
        let entry = ManifestEntry {
            hash: sha1(&old),
            container: mhd_store::DiskChunkId(7),
            offset: 1000,
            size: 4096,
            is_hook: false,
        };
        let dup_chunks = [HashedChunk { offset: 0, len: 1024, hash: sha1(&old[3072..]) }];
        for backward in [true, false] {
            for edge_len in [0u64, 512, 10_000 /* clamped */] {
                let parts = e.hhr_split(entry, &old, 1024, &dup_chunks, edge_len, backward);
                assert!(parts.len() >= 2 && parts.len() <= 3, "{backward} {edge_len}");
                let mut cursor = entry.offset;
                for p in &parts {
                    assert_eq!(p.offset, cursor, "contiguous");
                    assert_eq!(p.container, entry.container);
                    assert!(!p.is_hook, "HHR never creates hooks");
                    cursor += p.size;
                }
                assert_eq!(cursor, entry.end(), "exact cover");
            }
        }
    }

    #[test]
    fn identical_second_file_is_fully_dup() {
        let mut e = engine(512, 8);
        let content = random(64 << 10, 1);
        e.process_snapshot(&snapshot_from("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot_from("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.input_bytes, 2 * (64 << 10));
        // Second file eliminated entirely: stored bytes equal one copy.
        assert_eq!(r.ledger.stored_data_bytes, 64 << 10);
        assert!(r.dup_bytes >= (64 << 10) - 4096, "dup bytes {}", r.dup_bytes);
        // Only the first file produced a DiskChunk + Manifest.
        assert_eq!(r.files, 1);
        assert_eq!(r.stats.chunk_output, 1);
    }

    #[test]
    fn mutation_in_middle_triggers_hhr() {
        let mut e = engine(512, 8);
        let original = random(64 << 10, 2);
        let mut edited = original.clone();
        // Overwrite 1 KiB in the middle.
        let patch = random(1024, 3);
        edited[30_000..31_024].copy_from_slice(&patch);

        e.process_snapshot(&snapshot_from("a", vec![original])).unwrap();
        e.process_snapshot(&snapshot_from("b", vec![edited])).unwrap();
        let r = e.finish().unwrap();
        // Must have found duplicates on both sides of the edit...
        assert!(r.dup_bytes > 48 << 10, "dup {}", r.dup_bytes);
        // ...via hysteresis re-chunking with byte reloads.
        assert!(r.hhr_count >= 1, "expected HHR, got {}", r.hhr_count);
        assert!(r.stats.chunk_input >= 1);
        // Manifest grew: updates happened at write-back.
        assert!(r.stats.manifest_output >= r.files);
    }

    #[test]
    fn hhr_bounded_by_2l() {
        let mut e = engine(512, 8);
        let base = random(128 << 10, 4);
        let mut day2 = base.clone();
        for site in [20_000usize, 60_000, 100_000] {
            let patch = random(600, site as u64);
            day2[site..site + 600].copy_from_slice(&patch);
        }
        e.process_snapshot(&snapshot_from("a", vec![base])).unwrap();
        e.process_snapshot(&snapshot_from("b", vec![day2])).unwrap();
        let r = e.finish().unwrap();
        // Paper bound: chunk reloads ≤ 2L.
        assert!(
            r.stats.chunk_input <= 2 * r.dup_slices,
            "reloads {} > 2L = {}",
            r.stats.chunk_input,
            2 * r.dup_slices
        );
    }

    #[test]
    fn manifest_entry_count_is_harnessed() {
        // SHM: a file of n chunks yields ~2·n/SD entries, not n.
        let sd = 8;
        let mut e = engine(512, sd);
        let content = random(256 << 10, 5); // ~512 chunks at ECS 512
        e.process_snapshot(&snapshot_from("a", vec![content])).unwrap();
        let r = e.finish().unwrap();
        let n = r.chunks_stored;
        // Entries ≈ 2·N/SD; allow slack for per-file rounding.
        let max_entries = 2 * n / sd as u64 + 4 * r.files;
        let measured_entries = (r.ledger.manifest_bytes.saturating_sub(13 * r.files)) / 37;
        assert!(
            measured_entries <= max_entries,
            "entries {measured_entries} exceed SHM bound {max_entries} (N={n})"
        );
    }

    #[test]
    fn hooks_are_sampled_not_per_chunk() {
        let sd = 8;
        let mut e = engine(512, sd);
        let content = random(128 << 10, 6);
        e.process_snapshot(&snapshot_from("a", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert!(r.ledger.inodes_hooks <= r.chunks_stored / sd as u64 + 2 * r.files);
        assert!(r.ledger.inodes_hooks >= r.files, "at least one hook per manifest");
    }

    #[test]
    fn empty_and_tiny_files() {
        let mut e = engine(512, 4);
        e.process_snapshot(&snapshot_from("a", vec![vec![], vec![1, 2, 3], random(100, 7)]))
            .unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.input_bytes, 103);
        // Empty file still gets a (zero-extent) FileManifest.
        assert_eq!(r.ledger.inodes_file_manifests, 3);
    }

    #[test]
    fn buffer_overflow_flushes_partially() {
        // More than 2·SD chunks in one file forces mid-file SHM flushes.
        let sd = 4;
        let mut e = engine(512, sd);
        let content = random(64 << 10, 8); // ~128 chunks >> 2·SD = 8
        e.process_snapshot(&snapshot_from("a", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.files, 1);
        assert_eq!(r.stats.chunk_output, 1, "still one DiskChunk per file");
        assert!(r.ledger.inodes_hooks > 2, "multiple SHM runs → multiple hooks");
    }

    #[test]
    fn si_mhd_uses_ram_not_hook_inodes() {
        let content = random(96 << 10, 20);
        let run = |index: crate::HookIndex| {
            let mut cfg = EngineConfig::new(512, 8);
            cfg.mhd.hook_index = index;
            let mut e = MhdEngine::new(MemBackend::new(), cfg).unwrap();
            e.process_snapshot(&snapshot_from("a", vec![content.clone()])).unwrap();
            e.process_snapshot(&snapshot_from("b", vec![content.clone()])).unwrap();
            e.finish().unwrap()
        };
        let bf = run(crate::HookIndex::Bloom);
        let si = run(crate::HookIndex::SparseIndex);
        // Same dedup outcome...
        assert_eq!(bf.dup_bytes, si.dup_bytes);
        assert_eq!(bf.ledger.stored_data_bytes, si.ledger.stored_data_bytes);
        // ...but SI keeps hooks in RAM: no hook inodes, no disk probes.
        assert!(bf.ledger.inodes_hooks > 0);
        assert_eq!(si.ledger.inodes_hooks, 0);
        assert_eq!(si.stats.hook_input, 0);
        assert!(si.ram_index_bytes > 0);
        assert_eq!(si.algorithm, "si-mhd");
        assert_eq!(bf.algorithm, "bf-mhd");
    }

    #[test]
    fn forward_only_ablation_finds_less() {
        let base = random(96 << 10, 9);
        let mut day2 = base.clone();
        let patch = random(700, 10);
        day2[40_000..40_700].copy_from_slice(&patch);

        let run = |opts: crate::MhdOptions| {
            let mut cfg = EngineConfig::new(512, 8);
            cfg.mhd = opts;
            let mut e = MhdEngine::new(MemBackend::new(), cfg).unwrap();
            e.process_snapshot(&snapshot_from("a", vec![base.clone()])).unwrap();
            e.process_snapshot(&snapshot_from("b", vec![day2.clone()])).unwrap();
            e.finish().unwrap()
        };
        let full = run(crate::MhdOptions::default());
        let fwd_only = run(crate::MhdOptions { backward_extension: false, ..Default::default() });
        assert!(full.dup_bytes >= fwd_only.dup_bytes);
    }
}
