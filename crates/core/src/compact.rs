//! Container compaction: reclaiming dead bytes *inside* live containers.
//!
//! [`crate::gc`] reclaims whole containers, but after stream retirements a
//! container often survives because a few of its blocks are still
//! referenced — the rest is dead weight. Compaction rewrites such
//! containers:
//!
//! 1. compute entry-level liveness (a Manifest entry is live when any
//!    recipe extent overlaps its byte range);
//! 2. for containers whose live fraction falls below a threshold, write
//!    the live entries' bytes (in order) into a fresh container;
//! 3. re-offset the Manifest's live entries (the MHD tiling invariant
//!    holds again over the new container) and re-target every recipe
//!    extent that pointed into the old container;
//! 4. delete the old container.
//!
//! Correctness rests on an alignment property checked in debug builds: a
//! recipe extent only ever overlaps *live* entries, and those entries are
//! contiguous in the old container, so the translation is a single offset
//! shift per extent. DiskChunk immutability is preserved — old containers
//! are deleted and new ones created, never edited.

use mhd_hash::FxHashMap;
use mhd_store::{
    Backend, DiskChunkId, Extent, FileKind, FileManifest, Manifest, ManifestId, StoreResult,
    Substrate,
};

/// What one compaction pass did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Containers rewritten.
    pub containers_compacted: u64,
    /// Bytes reclaimed (dead bytes dropped from rewritten containers).
    pub bytes_reclaimed: u64,
    /// Recipe extents re-targeted.
    pub extents_rewritten: u64,
    /// Containers inspected but left alone (healthy occupancy or no
    /// manifest describes them).
    pub containers_skipped: u64,
}

/// Compacts every single-manifest container whose live-byte fraction is
/// below `threshold` (e.g. `0.7`). Returns what changed.
///
/// Only containers described by exactly one Manifest are compacted (MHD,
/// CDC and Bimodal layouts — one manifest per container; SubChunk and
/// SparseIndexing manifests span containers and are skipped).
pub fn compact<B: Backend>(
    substrate: &mut Substrate<B>,
    threshold: f64,
) -> StoreResult<CompactReport> {
    assert!((0.0..=1.0).contains(&threshold), "threshold is a fraction");
    let mut report = CompactReport::default();

    // Load all manifests, grouped by the container(s) they describe.
    let mut manifests: Vec<Manifest> = Vec::new();
    for name in substrate.backend_mut().list(FileKind::Manifest) {
        let id = ManifestId(
            u64::from_str_radix(&name, 16)
                .map_err(|e| mhd_store::StoreError::Corrupt(format!("manifest name: {e}")))?,
        );
        let data = substrate.backend_mut().get(FileKind::Manifest, &name)?;
        manifests.push(Manifest::decode(id, &data)?);
    }
    let mut manifests_per_container: FxHashMap<DiskChunkId, u32> = FxHashMap::default();
    for m in &manifests {
        let mut seen = Vec::new();
        for e in &m.entries {
            if !seen.contains(&e.container) {
                seen.push(e.container);
                *manifests_per_container.entry(e.container).or_insert(0) += 1;
            }
        }
    }

    // Recipe extents per container.
    let recipe_names = substrate.list_file_manifests();
    let mut recipes: Vec<(String, FileManifest)> = Vec::with_capacity(recipe_names.len());
    let mut extents_per_container: FxHashMap<DiskChunkId, Vec<(u64, u64)>> = FxHashMap::default();
    for name in recipe_names {
        let fm = substrate.load_file_manifest(&name)?;
        for e in fm.extents() {
            extents_per_container.entry(e.container).or_default().push((e.offset, e.len));
        }
        recipes.push((name, fm));
    }

    // Per eligible manifest/container pair, decide and compact.
    for manifest in &mut manifests {
        let Some(first) = manifest.entries.first() else { continue };
        let container = first.container;
        if manifest.entries.iter().any(|e| e.container != container)
            || manifests_per_container.get(&container).copied().unwrap_or(0) != 1
        {
            report.containers_skipped += 1;
            continue;
        }
        let refs = extents_per_container.get(&container);

        // Entry-level liveness.
        let live: Vec<bool> = manifest
            .entries
            .iter()
            .map(|e| {
                refs.is_some_and(|ranges| {
                    ranges.iter().any(|&(off, len)| off < e.end() && off + len > e.offset)
                })
            })
            .collect();
        let total: u64 = manifest.entries.iter().map(|e| e.size).sum();
        let live_bytes: u64 =
            manifest.entries.iter().zip(&live).filter(|(_, &l)| l).map(|(e, _)| e.size).sum();
        if total == 0 || live_bytes == 0 || (live_bytes as f64 / total as f64) >= threshold {
            report.containers_skipped += 1;
            continue;
        }

        // Build the new container from live entries, recording the offset
        // shift for each surviving old range.
        let mut new_bytes = Vec::with_capacity(live_bytes as usize);
        // (old_start, old_end, new_start) per live entry.
        let mut moves: Vec<(u64, u64, u64)> = Vec::new();
        for (e, &is_live) in manifest.entries.iter().zip(&live) {
            if is_live {
                let new_start = new_bytes.len() as u64;
                let bytes = substrate.read_chunk_range(e.container, e.offset, e.size)?;
                new_bytes.extend_from_slice(&bytes);
                moves.push((e.offset, e.end(), new_start));
            }
        }
        let new_id = substrate.write_disk_chunk_bytes(&new_bytes)?;

        // Dead Hook entries lose their content: their on-disk Hook files
        // (when they point at this manifest) must go too, or they dangle.
        for (e, &is_live) in manifest.entries.iter().zip(&live) {
            if !is_live && e.is_hook {
                let name = e.hash.to_hex();
                if let Ok(payload) = substrate.backend_mut().get(FileKind::Hook, &name) {
                    if payload.len() == 20
                        && u64::from_le_bytes(payload[..8].try_into().expect("8 bytes"))
                            == manifest.id.0
                    {
                        substrate.delete_hook_by_name(&name)?;
                    }
                }
            }
        }

        // Re-offset the manifest (drop dead entries, shift live ones).
        let translate = |old_off: u64| -> Option<u64> {
            moves
                .iter()
                .find(|&&(start, end, _)| old_off >= start && old_off < end)
                .map(|&(start, _, new_start)| new_start + (old_off - start))
        };
        let mut new_entries = Vec::with_capacity(moves.len());
        for (e, &is_live) in manifest.entries.iter().zip(&live) {
            if is_live {
                let mut e = *e;
                e.offset = translate(e.offset).expect("live entry translates");
                e.container = new_id;
                new_entries.push(e);
            }
        }
        manifest.entries = new_entries;
        // Every Manifest needs an entry point: if compaction dropped all
        // Hook entries, promote the first survivor and persist its Hook.
        if !manifest.entries.iter().any(|e| e.is_hook) {
            if let Some(first) = manifest.entries.first_mut() {
                first.is_hook = true;
                let (hash, mid) = (first.hash, manifest.id);
                substrate.write_hook(hash, mid)?;
            }
        }
        debug_assert_eq!(manifest.check_tiling(new_bytes.len() as u64), Ok(()));
        substrate.update_manifest(manifest)?;

        // Re-target recipes.
        for (name, fm) in &mut recipes {
            let mut changed = false;
            let mut rebuilt = FileManifest::new();
            for e in fm.extents() {
                if e.container == container {
                    let new_off = translate(e.offset).unwrap_or_else(|| {
                        panic!("recipe {name} extent {e:?} overlaps a dead entry")
                    });
                    debug_assert!(
                        translate(e.offset + e.len - 1)
                            .is_some_and(|end| end == new_off + e.len - 1),
                        "extent must stay contiguous across compaction"
                    );
                    rebuilt.push(Extent { container: new_id, offset: new_off, len: e.len });
                    changed = true;
                    report.extents_rewritten += 1;
                } else {
                    rebuilt.push(*e);
                }
            }
            if changed {
                substrate.update_file_manifest(name, &rebuilt)?;
                *fm = rebuilt;
            }
        }

        substrate.delete_disk_chunk(container)?;
        report.containers_compacted += 1;
        report.bytes_reclaimed += total - live_bytes;
    }
    // Compaction is a commit point: rewritten containers, manifests and
    // recipes must be on disk before the pass reports success.
    substrate.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gc, Deduplicator, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    fn dedupped() -> (MhdEngine<MemBackend>, Corpus) {
        let corpus = Corpus::generate(CorpusSpec::tiny(601));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        (e, corpus)
    }

    #[test]
    fn fully_live_store_is_untouched() {
        let (mut e, _) = dedupped();
        let report = compact(e.substrate_mut(), 0.7).unwrap();
        assert_eq!(report.containers_compacted, 0);
        assert_eq!(report.bytes_reclaimed, 0);
    }

    #[test]
    fn compaction_reclaims_and_preserves_restore() {
        let (mut e, corpus) = dedupped();
        // Retire the first three days: day-3 recipes still reference
        // slices of old containers, leaving them partially live.
        for day in 0..3 {
            gc::delete_stream(e.substrate_mut(), &format!("m0/d{day}")).unwrap();
            gc::delete_stream(e.substrate_mut(), &format!("m1/d{day}")).unwrap();
            gc::delete_stream(e.substrate_mut(), &format!("m2/d{day}")).unwrap();
        }
        let before = e.substrate_mut().ledger().stored_data_bytes;
        let report = compact(e.substrate_mut(), 0.95).unwrap();
        assert!(report.containers_compacted > 0, "retirement must leave sparse containers");
        assert!(report.bytes_reclaimed > 0);
        let after = e.substrate_mut().ledger().stored_data_bytes;
        assert_eq!(after, before - report.bytes_reclaimed);

        // Remaining day restores byte-exactly and the store stays sound.
        for snapshot in corpus.snapshots.iter().filter(|s| s.day == 3) {
            for file in &snapshot.files {
                let restored = crate::restore::restore_file(e.substrate_mut(), &file.path).unwrap();
                assert_eq!(restored, file.data, "{}", file.path);
            }
        }
        let fsck = crate::fsck::check_store(e.substrate_mut());
        assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    }

    #[test]
    fn compaction_is_idempotent() {
        let (mut e, _) = dedupped();
        gc::delete_stream(e.substrate_mut(), "m0/d0").unwrap();
        gc::delete_stream(e.substrate_mut(), "m1/d0").unwrap();
        compact(e.substrate_mut(), 0.95).unwrap();
        let second = compact(e.substrate_mut(), 0.95).unwrap();
        assert_eq!(second.containers_compacted, 0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn threshold_must_be_fraction() {
        let (mut e, _) = dedupped();
        let _ = compact(e.substrate_mut(), 1.5);
    }
}
