//! The common engine interface and shared helpers.

use bytes::Bytes;
use mhd_chunking::Chunker;
use mhd_hash::{sha1, ChunkHash};
use mhd_store::{IoStats, MetadataLedger, StoreError};
use mhd_workload::Snapshot;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Result alias for engine operations.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced by the deduplication engines.
#[derive(Debug)]
pub enum EngineError {
    /// Storage substrate failure. Engines propagate these without
    /// committing partial per-file state.
    Store(StoreError),
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Store(e) => write!(f, "storage error: {e}"),
            EngineError::Config(msg) => write!(f, "configuration error: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Store(e) => Some(e),
            EngineError::Config(_) => None,
        }
    }
}

impl From<StoreError> for EngineError {
    fn from(e: StoreError) -> Self {
        EngineError::Store(e)
    }
}

/// A chunk of one input file, already hashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashedChunk {
    /// Byte offset within the file.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u32,
    /// SHA-1 of the chunk content.
    pub hash: ChunkHash,
}

impl HashedChunk {
    /// Exclusive end offset within the file.
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }

    /// The chunk's bytes within its file.
    pub fn slice<'a>(&self, file: &'a [u8]) -> &'a [u8] {
        &file[self.offset as usize..self.end() as usize]
    }
}

/// Chunks `data` and hashes every chunk, fanning the SHA-1 work out over
/// rayon (chunk boundaries are sequential by nature; hashing is not).
///
/// Takes the chunker as a trait object: every engine routes through here,
/// so any [`Chunker`] — Rabin, TTTD, fixed, FastCDC, AE — plugs into every
/// engine unchanged.
pub fn chunk_and_hash(chunker: &dyn Chunker, data: &Bytes) -> Vec<HashedChunk> {
    let spans = chunker.spans(data);
    let _timer = mhd_obs::span!("stage.hashing_ns");
    mhd_obs::counter!("hashing.chunks").add(spans.len() as u64);
    if mhd_obs::tracing() {
        for s in &spans {
            mhd_obs::trace(mhd_obs::TraceEvent::ChunkEmitted { bytes: s.len as u64 });
        }
    }
    spans
        .par_iter()
        .map(|s| HashedChunk {
            offset: s.offset as u64,
            len: s.len as u32,
            hash: sha1(&data[s.offset..s.end()]),
        })
        .collect()
}

/// Final accounting of one deduplication run, the measured counterpart of
/// the paper's symbols: `N` (stored chunks), `D` (duplicate chunks), `L`
/// (duplicate slices), `F` (files producing manifests).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DedupReport {
    /// Engine name ("bf-mhd", "cdc", "bimodal", "subchunk",
    /// "sparse-indexing").
    pub algorithm: String,
    /// Total input bytes processed.
    pub input_bytes: u64,
    /// Bytes eliminated as duplicates.
    pub dup_bytes: u64,
    /// Number of detected duplicate data slices (`L`).
    pub dup_slices: u64,
    /// Files that produced a Manifest (`F`; fully-duplicate files do not).
    pub files: u64,
    /// Stored (non-duplicate) chunks before any merging (`N`).
    pub chunks_stored: u64,
    /// Duplicate chunks eliminated (`D`).
    pub chunks_dup: u64,
    /// HHR operations performed (MHD only; zero elsewhere).
    pub hhr_count: u64,
    /// Disk-access counters (Table II measured).
    pub stats: IoStats,
    /// Metadata bytes/inodes (Table I measured).
    pub ledger: MetadataLedger,
    /// RAM held by in-memory index structures: the Bloom filter, or the
    /// sparse index for SparseIndexing (Table III measured).
    pub ram_index_bytes: u64,
    /// Wall-clock seconds spent inside `process_snapshot` calls.
    pub dedup_seconds: f64,
}

impl DedupReport {
    /// Fraction of input bytes identified as duplicate.
    pub fn dup_fraction(&self) -> f64 {
        self.dup_bytes as f64 / self.input_bytes.max(1) as f64
    }
}

/// An external oracle answering "does the store already have a Hook for
/// this hash?" without touching the engine's own Bloom filter. The
/// daemon's shared hook index implements this so concurrent staging
/// engines can probe the whole store's hook population lock-free while
/// their Bloom filters cover only session-local hooks.
pub trait HookPresence: Send + Sync {
    /// Whether a hook for `hash` is (claimed to be) present. May run
    /// ahead of durable state — callers must tolerate a subsequent
    /// on-disk lookup missing.
    fn contains(&self, hash: &ChunkHash) -> bool;
}

/// A deduplication engine processing backup streams in order.
///
/// Call [`Deduplicator::process_snapshot`] for each stream (the engines
/// time themselves), then [`Deduplicator::finish`] to flush dirty state
/// (cached Manifests written back) and collect the cumulative report.
/// `finish` is also a safe maintenance point: garbage collection and
/// compaction require a flushed store, and processing may resume
/// afterwards (the caches simply start cold).
pub trait Deduplicator {
    /// Engine name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Deduplicates one backup stream (all of its files, in order).
    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()>;

    /// Flushes dirty manifests and returns the cumulative report. May be
    /// called between batches; see the trait docs.
    fn finish(&mut self) -> EngineResult<DedupReport>;
}

/// Tracks duplicate-slice runs: a slice is a maximal run of consecutive
/// duplicate chunks in the input stream (the paper's `L`).
#[derive(Debug, Default, Clone, Copy)]
pub struct SliceTracker {
    in_slice: bool,
    /// Completed plus open slices.
    pub slices: u64,
    /// Total duplicate bytes.
    pub dup_bytes: u64,
    /// Total duplicate chunks (`D`).
    pub dup_chunks: u64,
}

impl SliceTracker {
    /// Records `len` duplicate bytes continuing or starting a slice.
    pub fn on_dup(&mut self, len: u64, chunks: u64) {
        if !self.in_slice {
            self.in_slice = true;
            self.slices += 1;
        }
        self.dup_bytes += len;
        self.dup_chunks += chunks;
    }

    /// Records a non-duplicate position, terminating any open slice.
    pub fn on_nondup(&mut self) {
        self.in_slice = false;
    }

    /// Terminates any open slice (file/stream boundary).
    pub fn reset_run(&mut self) {
        self.in_slice = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_chunking::RabinChunker;

    #[test]
    fn chunk_and_hash_matches_sequential() {
        let chunker = RabinChunker::with_avg(256).unwrap();
        let data = Bytes::from((0..20_000u32).flat_map(|i| i.to_le_bytes()).collect::<Vec<u8>>());
        let chunks = chunk_and_hash(&chunker, &data);
        assert!(!chunks.is_empty());
        let mut cursor = 0u64;
        for c in &chunks {
            assert_eq!(c.offset, cursor);
            assert_eq!(c.hash, sha1(c.slice(&data)));
            cursor = c.end();
        }
        assert_eq!(cursor, data.len() as u64);
    }

    #[test]
    fn slice_tracker_counts_runs() {
        let mut t = SliceTracker::default();
        t.on_dup(100, 1);
        t.on_dup(50, 1); // same slice
        t.on_nondup();
        t.on_dup(10, 1); // new slice
        t.reset_run();
        t.on_dup(10, 1); // new slice after boundary
        assert_eq!(t.slices, 3);
        assert_eq!(t.dup_bytes, 170);
        assert_eq!(t.dup_chunks, 4);
    }
}
