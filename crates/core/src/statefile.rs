//! Shared on-disk layout of a store's `session/` state files.
//!
//! Both the CLI (`mhd backup` and friends) and the daemon (`mhd serve`)
//! persist engine state under `<store>/session/`, and each must open
//! what the other wrote: a stopped daemon store is a plain CLI store and
//! vice versa. This module owns the split between the JSON document and
//! its binary sidecars so the two front ends cannot drift:
//!
//! * `state.json` — the [`MhdState`] counters, ledger and watermarks,
//!   minus the two O(store) payloads below.
//! * `bloom.bin` — the raw Bloom filter bits ([`MhdState::bloom`]).
//! * `idmaps.bin` — the substrate's per-manifest size and per-chunk
//!   hash maps in a fixed-width binary record format.
//!
//! The sidecars exist because serde_json renders a megabyte Bloom
//! filter as roughly one JSON node per byte and the id maps as one node
//! per entry. The daemon rewrites the state on every commit, so inlining
//! them made each commit's serialized publish phase O(store) in JSON
//! nodes — by far its widest part. As raw bytes both payloads serialize
//! by memcpy.
//!
//! [`detach_sidecars`] writes the sidecars and strips the fields from
//! the in-memory state; the caller then serializes the slim remainder to
//! `state.json`. Writing the sidecars *first* is deliberate: a crash
//! between the writes pairs *newer* sidecars with *older* counters,
//! which is benign — a superset Bloom filter only costs false "maybe"
//! probes, and map entries above the persisted watermark describe real
//! on-disk objects that recovery already treats as unreferenced garbage
//! (their entries are overwritten when the ids are re-allocated).
//!
//! Stores written before the sidecars existed inline everything in
//! `state.json`; [`attach_sidecars`] only consults the sidecar files
//! when the corresponding state fields are empty, so legacy stores open
//! unchanged.

use std::io;
use std::path::{Path, PathBuf};

use crate::MhdState;

/// Magic + version tag for the `session/idmaps.bin` sidecar.
const IDMAPS_MAGIC: &[u8; 8] = b"MHDIDMP1";

/// Path of the Bloom filter sidecar under the store root.
pub fn bloom_path(root: &Path) -> PathBuf {
    root.join("session/bloom.bin")
}

/// Path of the id-map sidecar under the store root.
pub fn idmaps_path(root: &Path) -> PathBuf {
    root.join("session/idmaps.bin")
}

/// Writes `data` through a hidden tmp sibling + atomic rename so the
/// sidecars can never be observed half-written; errors name the path.
fn write_atomic(path: &Path, data: &[u8]) -> io::Result<()> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| invalid(format!("{}: not a file path", path.display())))?;
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    std::fs::write(&tmp, data)
        .map_err(|e| io::Error::new(e.kind(), format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| io::Error::new(e.kind(), format!("rename to {}: {e}", path.display())))?;
    Ok(())
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Encodes the substrate's id maps as the compact binary sidecar format:
/// magic, two LE counts, then fixed-width entries (`id:u64, size:u64`
/// and `id:u64, hash:40 hex bytes`).
fn encode_idmaps(
    manifest_sizes: &[(u64, u64)],
    chunk_hashes: &[(u64, String)],
) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(24 + manifest_sizes.len() * 16 + chunk_hashes.len() * 48);
    out.extend_from_slice(IDMAPS_MAGIC);
    out.extend_from_slice(&(manifest_sizes.len() as u64).to_le_bytes());
    out.extend_from_slice(&(chunk_hashes.len() as u64).to_le_bytes());
    for (id, size) in manifest_sizes {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&size.to_le_bytes());
    }
    for (id, hex) in chunk_hashes {
        if hex.len() != 40 || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return Err(invalid(format!("chunk {id}: malformed hash {hex:?}")));
        }
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(hex.as_bytes());
    }
    Ok(out)
}

/// Decodes [`encode_idmaps`] output; errors describe the corruption
/// rather than panicking, since the sidecar is read at store open.
#[allow(clippy::type_complexity)]
fn decode_idmaps(raw: &[u8]) -> io::Result<(Vec<(u64, u64)>, Vec<(u64, String)>)> {
    let take = |raw: &[u8], at: &mut usize, n: usize| -> io::Result<Vec<u8>> {
        let end = at
            .checked_add(n)
            .filter(|&e| e <= raw.len())
            .ok_or_else(|| invalid("truncated sidecar".into()))?;
        let bytes = raw[*at..end].to_vec();
        *at = end;
        Ok(bytes)
    };
    let u64_at = |raw: &[u8], at: &mut usize| -> io::Result<u64> {
        let bytes = take(raw, at, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))) // lint: allow(expect): length fixed by take(8)
    };
    let mut at = 0usize;
    if take(raw, &mut at, 8)? != IDMAPS_MAGIC {
        return Err(invalid("bad idmaps magic".into()));
    }
    let manifests = u64_at(raw, &mut at)? as usize;
    let chunks = u64_at(raw, &mut at)? as usize;
    let need = manifests
        .checked_mul(16)
        .and_then(|m| chunks.checked_mul(48).map(|c| m + c))
        .ok_or_else(|| invalid("idmaps counts overflow".into()))?;
    if raw.len() - at != need {
        return Err(invalid(format!("idmaps length {} != expected {need}", raw.len() - at)));
    }
    let mut manifest_sizes = Vec::with_capacity(manifests);
    for _ in 0..manifests {
        let id = u64_at(raw, &mut at)?;
        let size = u64_at(raw, &mut at)?;
        manifest_sizes.push((id, size));
    }
    let mut chunk_hashes = Vec::with_capacity(chunks);
    for _ in 0..chunks {
        let id = u64_at(raw, &mut at)?;
        let hex = String::from_utf8(take(raw, &mut at, 40)?)
            .map_err(|_| invalid(format!("chunk {id}: non-UTF-8 hash")))?;
        chunk_hashes.push((id, hex));
    }
    Ok((manifest_sizes, chunk_hashes))
}

/// Moves the O(store) payloads of `state` into binary sidecars under
/// `root`, leaving a slim state the caller serializes to `state.json`.
///
/// Must run *before* the state JSON is written — see the module docs for
/// the crash-ordering argument.
pub fn detach_sidecars(state: &mut MhdState, root: &Path) -> io::Result<()> {
    let bloom = std::mem::take(&mut state.bloom);
    write_atomic(&bloom_path(root), &bloom)?;
    let manifest_sizes = std::mem::take(&mut state.substrate.manifest_sizes);
    let chunk_hashes = std::mem::take(&mut state.substrate.chunk_hashes);
    let idmaps = encode_idmaps(&manifest_sizes, &chunk_hashes)?;
    write_atomic(&idmaps_path(root), &idmaps)?;
    Ok(())
}

/// Loads the sidecar payloads back into a `state` parsed from
/// `state.json`. States from legacy stores (payloads inlined in the
/// JSON) are left untouched; sidecar files simply missing beside an
/// empty field are treated as an empty payload.
pub fn attach_sidecars(state: &mut MhdState, root: &Path) -> io::Result<()> {
    let bloom = bloom_path(root);
    if state.bloom.is_empty() && bloom.exists() {
        state.bloom = std::fs::read(&bloom)
            .map_err(|e| io::Error::new(e.kind(), format!("read {}: {e}", bloom.display())))?;
    }
    let idmaps = idmaps_path(root);
    if state.substrate.chunk_hashes.is_empty()
        && state.substrate.manifest_sizes.is_empty()
        && idmaps.exists()
    {
        let raw = std::fs::read(&idmaps)
            .map_err(|e| io::Error::new(e.kind(), format!("read {}: {e}", idmaps.display())))?;
        let (manifest_sizes, chunk_hashes) =
            decode_idmaps(&raw).map_err(|e| invalid(format!("{}: {e}", idmaps.display())))?;
        state.substrate.manifest_sizes = manifest_sizes;
        state.substrate.chunk_hashes = chunk_hashes;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn sample_maps() -> (Vec<(u64, u64)>, Vec<(u64, String)>) {
        let manifest_sizes = vec![(1, 512), (7, 40_960)];
        let chunk_hashes =
            vec![(3, "0123456789abcdef0123456789abcdef01234567".to_string()), (9, "f".repeat(40))];
        (manifest_sizes, chunk_hashes)
    }

    #[test]
    fn idmaps_round_trip() {
        let (sizes, hashes) = sample_maps();
        let raw = encode_idmaps(&sizes, &hashes).unwrap();
        let (sizes2, hashes2) = decode_idmaps(&raw).unwrap();
        assert_eq!(sizes, sizes2);
        assert_eq!(hashes, hashes2);
    }

    #[test]
    fn idmaps_rejects_malformed_hash() {
        let err = encode_idmaps(&[], &[(1, "not-hex".into())]).unwrap_err();
        assert!(err.to_string().contains("malformed hash"), "{err}");
    }

    #[test]
    fn idmaps_rejects_truncation_and_bad_magic() {
        let (sizes, hashes) = sample_maps();
        let raw = encode_idmaps(&sizes, &hashes).unwrap();
        assert!(decode_idmaps(&raw[..raw.len() - 1]).is_err());
        let mut bad = raw.clone();
        bad[0] ^= 0xff;
        assert!(decode_idmaps(&bad).is_err());
    }

    #[test]
    fn detach_then_attach_restores_state() {
        let root =
            std::env::temp_dir().join(format!("mhd-statefile-{}-{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("session")).unwrap();

        let (sizes, hashes) = sample_maps();
        let mut state = MhdState { bloom: vec![0xAB; 4096], ..Default::default() };
        state.substrate.manifest_sizes = sizes.clone();
        state.substrate.chunk_hashes = hashes.clone();
        let full = state.clone();

        detach_sidecars(&mut state, &root).unwrap();
        assert!(state.bloom.is_empty());
        assert!(state.substrate.chunk_hashes.is_empty());
        assert!(bloom_path(&root).exists());
        assert!(idmaps_path(&root).exists());

        attach_sidecars(&mut state, &root).unwrap();
        assert_eq!(state.bloom, full.bloom);
        assert_eq!(state.substrate.manifest_sizes, sizes);
        assert_eq!(state.substrate.chunk_hashes, hashes);

        std::fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn attach_leaves_legacy_inline_state_untouched() {
        let root =
            std::env::temp_dir().join(format!("mhd-statefile-{}-{}", std::process::id(), line!()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(root.join("session")).unwrap();
        // A stale sidecar beside an inline state must not override it.
        std::fs::write(bloom_path(&root), vec![0u8; 8]).unwrap();

        let mut state = MhdState { bloom: vec![0xCD; 16], ..Default::default() };
        attach_sidecars(&mut state, &root).unwrap();
        assert_eq!(state.bloom, vec![0xCD; 16]);

        std::fs::remove_dir_all(&root).unwrap();
    }
}
