//! Byte-exact reconstruction of the original files from FileManifests —
//! the correctness proof for every engine (a deduplicator that cannot
//! restore its input has eliminated the wrong bytes).

use bytes::Bytes;
use mhd_store::{Backend, FileManifest, StoreResult, Substrate};
use mhd_workload::Corpus;

/// Reconstructs one file by concatenating its recipe's extents.
pub fn restore_file<B: Backend>(substrate: &mut Substrate<B>, name: &str) -> StoreResult<Vec<u8>> {
    let fm = substrate.load_file_manifest(name)?;
    let mut out = Vec::with_capacity(fm.total_len() as usize);
    for extent in fm.extents() {
        let bytes = substrate.read_chunk_range(extent.container, extent.offset, extent.len)?;
        out.extend_from_slice(&bytes);
    }
    Ok(out)
}

/// Restores every file of `corpus` and compares against the original
/// bytes. Returns the number of files verified, or a description of the
/// first mismatch.
pub fn verify_corpus<B: Backend>(
    substrate: &mut Substrate<B>,
    corpus: &Corpus,
) -> Result<usize, String> {
    let mut verified = 0usize;
    for snapshot in &corpus.snapshots {
        for file in &snapshot.files {
            let restored = restore_file(substrate, &file.path)
                .map_err(|e| format!("restoring {}: {e}", file.path))?;
            if restored != file.data {
                let diverge = restored
                    .iter()
                    .zip(file.data.iter())
                    .position(|(a, b)| a != b)
                    .unwrap_or(restored.len().min(file.data.len()));
                return Err(format!(
                    "{}: restored {} bytes vs original {} (first divergence at {diverge})",
                    file.path,
                    restored.len(),
                    file.data.len()
                ));
            }
            verified += 1;
        }
    }
    Ok(verified)
}

/// A bounded-memory streaming reader over a deduplicated file: extents are
/// fetched lazily, one at a time, so restoring a multi-gigabyte file never
/// materialises it (implements [`std::io::Read`]).
pub struct RestoreReader<'a, B: Backend> {
    substrate: &'a mut Substrate<B>,
    recipe: FileManifest,
    /// Next extent to fetch.
    next_extent: usize,
    /// Unconsumed bytes of the current extent.
    current: Bytes,
}

impl<'a, B: Backend> RestoreReader<'a, B> {
    /// Opens `name` for streaming restore.
    pub fn open(substrate: &'a mut Substrate<B>, name: &str) -> StoreResult<Self> {
        let recipe = substrate.load_file_manifest(name)?;
        Ok(RestoreReader { substrate, recipe, next_extent: 0, current: Bytes::new() })
    }

    /// Total bytes this reader will produce.
    pub fn len(&self) -> u64 {
        self.recipe.total_len()
    }

    /// True for empty files.
    pub fn is_empty(&self) -> bool {
        self.recipe.total_len() == 0
    }
}

impl<B: Backend> std::io::Read for RestoreReader<'_, B> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        while self.current.is_empty() {
            let Some(extent) = self.recipe.extents().get(self.next_extent).copied() else {
                return Ok(0); // end of file
            };
            self.next_extent += 1;
            self.current = self
                .substrate
                .read_chunk_range(extent.container, extent.offset, extent.len)
                .map_err(std::io::Error::other)?;
        }
        let n = buf.len().min(self.current.len());
        buf[..n].copy_from_slice(&self.current[..n]);
        self.current = self.current.slice(n..);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use crate::{CdcEngine, Deduplicator, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    #[test]
    fn cdc_restores_tiny_corpus_exactly() {
        let corpus = Corpus::generate(CorpusSpec::tiny(31));
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        let n = super::verify_corpus(e.substrate_mut(), &corpus).unwrap();
        assert_eq!(n as u64, corpus.snapshots.iter().map(|s| s.files.len() as u64).sum::<u64>());
    }

    #[test]
    fn streaming_reader_matches_eager_restore() {
        use std::io::Read;
        let corpus = Corpus::generate(CorpusSpec::tiny(33));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        let target = &corpus.snapshots.last().unwrap().files[0];
        let eager = super::restore_file(e.substrate_mut(), &target.path).unwrap();

        let mut reader = super::RestoreReader::open(e.substrate_mut(), &target.path).unwrap();
        assert_eq!(reader.len(), target.data.len() as u64);
        // Tiny read buffer exercises extent paging.
        let mut streamed = Vec::new();
        let mut buf = [0u8; 113];
        loop {
            let n = reader.read(&mut buf).unwrap();
            if n == 0 {
                break;
            }
            streamed.extend_from_slice(&buf[..n]);
        }
        assert_eq!(streamed, eager);
        assert_eq!(streamed, target.data);
    }

    #[test]
    fn mhd_restores_tiny_corpus_exactly() {
        let corpus = Corpus::generate(CorpusSpec::tiny(32));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        assert!(super::verify_corpus(e.substrate_mut(), &corpus).unwrap() > 0);
    }
}
