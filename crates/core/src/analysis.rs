//! Closed-form models of §IV: Table I (metadata size) and Table II (disk
//! accesses) as functions of the paper's symbols.
//!
//! Symbols (for a fixed `ECS`): `N` non-duplicate chunks, `D` duplicate
//! chunks, `L` duplicate data slices, `F` files that are not completely
//! duplicate, `SD` the sample distance. Constants: 256 bytes/inode,
//! 20 bytes/Hook, 36 bytes/Manifest entry (+1 Hook flag in MHD,
//! +28/container group in SubChunk).
//!
//! These functions are the paper's formulas verbatim; experiments evaluate
//! them with the measured `N, D, L, F` and compare against the measured
//! ledgers (`table1`/`table2` binaries) — the models are worst-case in a
//! few places (e.g. MHD chunk reloads ≤ 2L) so the measured values may sit
//! below them.

use serde::{Deserialize, Serialize};

/// The algorithms of Tables I–II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Metadata Harnessing Deduplication (this paper).
    Mhd,
    /// Anchor-driven subchunk deduplication.
    SubChunk,
    /// Bimodal content-defined chunking.
    Bimodal,
    /// Flat content-defined chunking with a full index.
    Cdc,
}

impl Algorithm {
    /// All modelled algorithms, in the tables' column order.
    pub const ALL: [Algorithm; 4] =
        [Algorithm::Mhd, Algorithm::SubChunk, Algorithm::Bimodal, Algorithm::Cdc];

    /// Display name matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Mhd => "MHD",
            Algorithm::SubChunk => "SubChunk",
            Algorithm::Bimodal => "Bimodal",
            Algorithm::Cdc => "CDC",
        }
    }
}

/// The paper's workload symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Symbols {
    /// Final number of non-duplicate chunks.
    pub n: u64,
    /// Final number of duplicate chunks.
    pub d: u64,
    /// Number of detected duplicate data slices.
    pub l: u64,
    /// Files that are not completely duplicate (= number of Manifests).
    pub f: u64,
    /// Sample distance (≥ 2).
    pub sd: u64,
}

/// Bytes charged per inode in the model.
pub const INODE: u64 = 256;

/// Table I evaluated for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetadataModel {
    /// Inodes for DiskChunks.
    pub inodes_disk_chunks: u64,
    /// Inodes for Hooks.
    pub inodes_hooks: u64,
    /// Hook payload bytes (20 per hook).
    pub hook_bytes: u64,
    /// Inodes for Manifests.
    pub inodes_manifests: u64,
    /// Manifest payload bytes.
    pub manifest_bytes: u64,
}

impl MetadataModel {
    /// Total metadata bytes: all inodes at 256 bytes plus payloads.
    pub fn total_bytes(&self) -> u64 {
        (self.inodes_disk_chunks + self.inodes_hooks + self.inodes_manifests) * INODE
            + self.hook_bytes
            + self.manifest_bytes
    }
}

/// Table I ("Metadata Size Comparison", SD ≥ 2).
pub fn metadata_model(algo: Algorithm, s: Symbols) -> MetadataModel {
    assert!(s.sd >= 2, "Table I assumes SD >= 2");
    let Symbols { n, l, f, sd, .. } = s;
    match algo {
        Algorithm::Mhd => {
            let hooks = n / sd;
            MetadataModel {
                inodes_disk_chunks: f,
                inodes_hooks: hooks,
                hook_bytes: 20 * hooks,
                inodes_manifests: f,
                // 2N/SD entries at 37 bytes each (= 74N/SD), plus at most
                // 4 new 37-byte entries per duplicate slice from HHR
                // (= 148L).
                manifest_bytes: 74 * n / sd + 148 * l,
            }
        }
        Algorithm::SubChunk => {
            let hooks = f;
            MetadataModel {
                inodes_disk_chunks: n / sd,
                inodes_hooks: hooks,
                hook_bytes: 20 * hooks,
                inodes_manifests: f,
                // 36 bytes per small chunk + 28 per container group.
                manifest_bytes: 36 * n + 28 * n / sd,
            }
        }
        Algorithm::Bimodal => {
            // N/SD - 2L big chunks survive; each duplicate slice re-chunks
            // up to two flanking big chunks into ~SD small chunks each.
            let hooks = n / sd + 2 * l * (sd - 1);
            MetadataModel {
                inodes_disk_chunks: f,
                inodes_hooks: hooks,
                hook_bytes: 20 * hooks,
                inodes_manifests: f,
                manifest_bytes: 36 * n / sd + 72 * l * (sd - 1),
            }
        }
        Algorithm::Cdc => MetadataModel {
            inodes_disk_chunks: f,
            inodes_hooks: n,
            hook_bytes: 20 * n,
            inodes_manifests: f,
            manifest_bytes: 36 * n,
        },
    }
}

/// Table II evaluated for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoModel {
    /// Chunk Output Times.
    pub chunk_output: u64,
    /// Chunk Input Times.
    pub chunk_input: u64,
    /// Hook Output Times.
    pub hook_output: u64,
    /// Hook Input Times.
    pub hook_input: u64,
    /// Manifest Output Times.
    pub manifest_output: u64,
    /// Manifest Input Times.
    pub manifest_input: u64,
    /// Big Chunk Query Times.
    pub big_chunk_query: u64,
    /// Small Chunk Query Times.
    pub small_chunk_query: u64,
}

impl IoModel {
    /// "Summary without Bloom Filter": every category counts.
    pub fn total_without_bloom(&self) -> u64 {
        self.chunk_output
            + self.chunk_input
            + self.hook_output
            + self.hook_input
            + self.manifest_output
            + self.manifest_input
            + self.big_chunk_query
            + self.small_chunk_query
    }

    /// "Summary with Bloom Filter": queries for non-duplicate hash values
    /// are assumed eliminated (the `suppressed` argument of
    /// [`io_model`] already reflects this in `small_chunk_query` /
    /// `big_chunk_query`).
    pub fn total_with_bloom(&self, suppressed_small: u64, suppressed_big: u64) -> u64 {
        self.total_without_bloom().saturating_sub(suppressed_small).saturating_sub(suppressed_big)
    }
}

/// Table II ("Disk Accessing Times Comparison").
pub fn io_model(algo: Algorithm, s: Symbols) -> IoModel {
    let Symbols { n, d, l, f, sd } = s;
    match algo {
        Algorithm::Mhd => IoModel {
            chunk_output: f,
            chunk_input: 2 * l,
            hook_output: n / sd,
            hook_input: l,
            manifest_output: f + l,
            manifest_input: l,
            big_chunk_query: 0,
            small_chunk_query: n + l,
        },
        Algorithm::SubChunk => IoModel {
            chunk_output: n / sd,
            chunk_input: 0,
            hook_output: f,
            hook_input: l,
            manifest_output: f,
            manifest_input: l,
            big_chunk_query: (n + d) / sd,
            small_chunk_query: n + l,
        },
        Algorithm::Bimodal => IoModel {
            chunk_output: f,
            chunk_input: 0,
            hook_output: n / sd + 2 * (sd - 1) * l,
            hook_input: l,
            manifest_output: f,
            manifest_input: l,
            big_chunk_query: n / sd,
            small_chunk_query: (2 * sd + 1) * l,
        },
        Algorithm::Cdc => IoModel {
            chunk_output: f,
            chunk_input: 0,
            hook_output: n,
            hook_input: l,
            manifest_output: f,
            manifest_input: l,
            big_chunk_query: 0,
            small_chunk_query: n + l,
        },
    }
}

/// The bloom filter eliminates the `N` non-duplicate small-chunk queries
/// (§IV); big-chunk queries for non-duplicates are similarly suppressed in
/// SubChunk.
pub fn bloom_suppressed(algo: Algorithm, s: Symbols) -> (u64, u64) {
    match algo {
        Algorithm::Mhd | Algorithm::Cdc => (s.n, 0),
        Algorithm::SubChunk => (s.n, s.n / s.sd),
        // Bimodal: the ~2SD·L re-chunked small chunks are assumed
        // non-duplicate (paper worst case) and suppressed, as are the
        // N/SD non-duplicate big-chunk queries — leaving the paper's
        // with-bloom summary 2F + (2SD+1)L + N/SD.
        Algorithm::Bimodal => (2 * s.sd * s.l, s.n / s.sd),
    }
}

/// The paper's headline inequality (§IV): with the Bloom filter active,
/// MHD performs fewer disk accesses than the other algorithms whenever
/// `3L < D/SD`.
pub fn mhd_wins_on_io(s: Symbols) -> bool {
    3 * s.l < s.d / s.sd
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym() -> Symbols {
        Symbols { n: 100_000, d: 300_000, l: 500, f: 200, sd: 100 }
    }

    #[test]
    fn table1_summaries_match_paper_structure() {
        let s = sym();
        // CDC summary: 512F + 312N (= 256F·2 + (256+20+36)N).
        let cdc = metadata_model(Algorithm::Cdc, s);
        assert_eq!(cdc.total_bytes(), 512 * s.f + 312 * s.n);
        // MHD summary: 512F + (256+20+74)·N/SD + 148L = 512F + 350N/SD + 148L.
        let mhd = metadata_model(Algorithm::Mhd, s);
        assert_eq!(mhd.total_bytes(), 512 * s.f + 350 * (s.n / s.sd) + 148 * s.l);
        // SubChunk: 512F + 20F + 256N/SD + 36N + 28N/SD.
        let sub = metadata_model(Algorithm::SubChunk, s);
        assert_eq!(sub.total_bytes(), 532 * s.f + 284 * (s.n / s.sd) + 36 * s.n);
        // Bimodal: 512F + 276·hooks + 36N/SD + 72L(SD-1).
        let bim = metadata_model(Algorithm::Bimodal, s);
        let hooks = s.n / s.sd + 2 * s.l * (s.sd - 1);
        assert_eq!(
            bim.total_bytes(),
            512 * s.f + 276 * hooks + 36 * (s.n / s.sd) + 72 * s.l * (s.sd - 1)
        );
    }

    #[test]
    fn mhd_has_least_metadata_at_high_sd() {
        let s = sym();
        let totals: Vec<u64> =
            Algorithm::ALL.iter().map(|&a| metadata_model(a, s).total_bytes()).collect();
        let mhd = totals[0];
        for (i, &t) in totals.iter().enumerate().skip(1) {
            assert!(mhd < t, "MHD {mhd} not below {:?} {t}", Algorithm::ALL[i]);
        }
    }

    #[test]
    fn table2_summaries_match_paper() {
        let s = sym();
        // MHD without bloom: 2F + 6L + N + N/SD.
        let mhd = io_model(Algorithm::Mhd, s);
        assert_eq!(mhd.total_without_bloom(), 2 * s.f + 6 * s.l + s.n + s.n / s.sd);
        // CDC without bloom: 2F + 3L + 2N.
        let cdc = io_model(Algorithm::Cdc, s);
        assert_eq!(cdc.total_without_bloom(), 2 * s.f + 3 * s.l + 2 * s.n);
        // SubChunk without bloom: 2F + 3L + N + (2N+D)/SD ... per the row
        // sums (N/SD chunk-out + F hook-out + L hook-in + F manifest-out +
        // L manifest-in + (N+D)/SD big + (N+L) small).
        let sub = io_model(Algorithm::SubChunk, s);
        assert_eq!(
            sub.total_without_bloom(),
            s.n / s.sd + s.f + s.l + s.f + s.l + (s.n + s.d) / s.sd + s.n + s.l
        );
        // Bimodal without bloom: 2F + (4SD+1)L + 2N/SD... row sum check.
        let bim = io_model(Algorithm::Bimodal, s);
        assert_eq!(
            bim.total_without_bloom(),
            s.f + (s.n / s.sd + 2 * (s.sd - 1) * s.l)
                + s.l
                + s.f
                + s.l
                + s.n / s.sd
                + (2 * s.sd + 1) * s.l
        );
    }

    #[test]
    fn with_bloom_mhd_beats_others_when_inequality_holds() {
        let s = sym();
        assert!(mhd_wins_on_io(s), "test symbols chosen so 3L < D/SD");
        let totals: Vec<u64> = Algorithm::ALL
            .iter()
            .map(|&a| {
                let (sm, bg) = bloom_suppressed(a, s);
                io_model(a, s).total_with_bloom(sm, bg)
            })
            .collect();
        let mhd = totals[0];
        for (i, &t) in totals.iter().enumerate().skip(1) {
            assert!(mhd < t, "MHD {mhd} not below {:?} {t}", Algorithm::ALL[i]);
        }
    }

    #[test]
    #[should_panic(expected = "SD >= 2")]
    fn table1_rejects_sd_one() {
        let _ = metadata_model(Algorithm::Mhd, Symbols { n: 1, d: 1, l: 1, f: 1, sd: 1 });
    }
}
