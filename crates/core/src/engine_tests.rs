//! Additional cross-cutting engine tests: mixed workload shapes, config
//! edges, and accounting invariants that every engine must satisfy.

use bytes::Bytes;
use mhd_store::MemBackend;
use mhd_workload::{FileEntry, Snapshot};

use crate::{
    BimodalEngine, CdcEngine, DedupReport, Deduplicator, EngineConfig, MhdEngine,
    SparseIndexEngine, SubChunkEngine,
};

fn random(len: usize, seed: u64) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
    Snapshot {
        machine: 0,
        day: 0,
        files: datas
            .into_iter()
            .enumerate()
            .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
            .collect(),
    }
}

fn run_all(snapshots: &[Snapshot], config: EngineConfig) -> Vec<DedupReport> {
    macro_rules! drive {
        ($engine:expr) => {{
            let mut e = $engine.unwrap();
            for s in snapshots {
                e.process_snapshot(s).unwrap();
            }
            e.finish().unwrap()
        }};
    }
    vec![
        drive!(MhdEngine::new(MemBackend::new(), config)),
        drive!(CdcEngine::new(MemBackend::new(), config)),
        drive!(BimodalEngine::new(MemBackend::new(), config)),
        drive!(SubChunkEngine::new(MemBackend::new(), config)),
        drive!(SparseIndexEngine::new(MemBackend::new(), config)),
    ]
}

#[test]
fn all_engines_reject_invalid_config() {
    let bad = EngineConfig::new(1000, 8); // not a power of two
    assert!(MhdEngine::new(MemBackend::new(), bad).is_err());
    assert!(CdcEngine::new(MemBackend::new(), bad).is_err());
    assert!(BimodalEngine::new(MemBackend::new(), bad).is_err());
    assert!(SubChunkEngine::new(MemBackend::new(), bad).is_err());
    assert!(SparseIndexEngine::new(MemBackend::new(), bad).is_err());
}

#[test]
fn empty_snapshot_is_a_noop() {
    let empty = Snapshot { machine: 0, day: 0, files: vec![] };
    for report in run_all(&[empty], EngineConfig::new(512, 4)) {
        assert_eq!(report.input_bytes, 0, "{}", report.algorithm);
        assert_eq!(report.ledger.stored_data_bytes, 0, "{}", report.algorithm);
        assert_eq!(report.dup_slices, 0, "{}", report.algorithm);
    }
}

#[test]
fn single_byte_files() {
    let snap = snapshot("tiny", vec![vec![7], vec![7], vec![8]]);
    for report in run_all(&[snap], EngineConfig::new(512, 4)) {
        assert_eq!(report.input_bytes, 3, "{}", report.algorithm);
        assert_eq!(report.ledger.stored_data_bytes + report.dup_bytes, 3, "{}", report.algorithm);
    }
}

#[test]
fn low_entropy_runs_do_not_break_accounting() {
    // Long zero runs hit the max-chunk-size path everywhere and create
    // massive intra-stream duplication.
    let zeros = vec![0u8; 96 << 10];
    let snap = snapshot("zeros", vec![zeros.clone(), zeros]);
    for report in run_all(&[snap], EngineConfig::new(512, 4)) {
        assert_eq!(
            report.ledger.stored_data_bytes + report.dup_bytes,
            report.input_bytes,
            "{}",
            report.algorithm
        );
        // At least the second file's worth must dedup.
        assert!(report.dup_bytes >= 90 << 10, "{}: {}", report.algorithm, report.dup_bytes);
    }
}

#[test]
fn interleaved_dup_and_fresh_regions() {
    // file = [A][fresh][B][fresh][A] where A and B repeat.
    let a = random(20 << 10, 1);
    let b = random(20 << 10, 2);
    let mut first = Vec::new();
    first.extend_from_slice(&a);
    first.extend_from_slice(&b);
    let mut second = Vec::new();
    second.extend_from_slice(&a);
    second.extend_from_slice(&random(8 << 10, 3));
    second.extend_from_slice(&b);
    second.extend_from_slice(&random(8 << 10, 4));
    second.extend_from_slice(&a);

    for report in run_all(
        &[snapshot("s1", vec![first]), snapshot("s2", vec![second])],
        EngineConfig::new(512, 4),
    ) {
        assert_eq!(
            report.ledger.stored_data_bytes + report.dup_bytes,
            report.input_bytes,
            "{}",
            report.algorithm
        );
        // MHD and CDC must find most of the repeated A/B content.
        if report.algorithm == "bf-mhd" || report.algorithm == "cdc" {
            assert!(
                report.dup_bytes > 48 << 10,
                "{}: only {} dup",
                report.algorithm,
                report.dup_bytes
            );
            assert!(report.dup_slices >= 2, "{}", report.algorithm);
        }
    }
}

#[test]
fn growing_file_day_over_day() {
    // Append-only growth (log files): every next day is a superset.
    let mut content = random(32 << 10, 9);
    let mut snapshots = Vec::new();
    for day in 0..4 {
        snapshots.push(Snapshot {
            machine: 0,
            day,
            files: vec![FileEntry {
                path: format!("log/d{day}"),
                data: Bytes::from(content.clone()),
            }],
        });
        content.extend_from_slice(&random(8 << 10, 10 + day as u64));
    }
    for report in run_all(&snapshots, EngineConfig::new(512, 4)) {
        // Day d is fully contained in day d+1: most of the input dedups.
        let unique = (32 << 10) + 3 * (8 << 10);
        assert!(
            report.ledger.stored_data_bytes < 2 * unique,
            "{} stored {} vs unique {unique}",
            report.algorithm,
            report.ledger.stored_data_bytes
        );
    }
}

#[test]
fn mhd_buffer_boundary_sizes() {
    // Exercise files whose chunk counts land exactly on SD and 2·SD
    // boundaries (off-by-one hazards in the SHM flush logic).
    for kib in [1usize, 2, 4, 8, 16, 32] {
        let snap = snapshot("b", vec![random(kib << 10, kib as u64)]);
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 4)).unwrap();
        e.process_snapshot(&snap).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.stored_data_bytes, (kib << 10) as u64, "{kib} KiB");
        let restored = crate::restore::restore_file(e.substrate_mut(), "b/f0").unwrap();
        assert_eq!(restored.len(), kib << 10);
    }
}

#[test]
fn duplicate_detection_is_order_sensitive_but_complete() {
    // Processing streams in the opposite order stores the same total
    // bytes (who stores is swapped, what is stored is not).
    let x = random(64 << 10, 21);
    let y = {
        let mut y = x.clone();
        let patch = random(2 << 10, 22);
        y[30_000..32_048].copy_from_slice(&patch);
        y
    };
    let forward = run_all(
        &[snapshot("a", vec![x.clone()]), snapshot("b", vec![y.clone()])],
        EngineConfig::new(512, 4),
    );
    let backward =
        run_all(&[snapshot("a", vec![y]), snapshot("b", vec![x])], EngineConfig::new(512, 4));
    for (f, b) in forward.iter().zip(&backward) {
        let diff = f.ledger.stored_data_bytes.abs_diff(b.ledger.stored_data_bytes);
        assert!(
            diff < 8 << 10,
            "{}: forward stored {} vs backward {}",
            f.algorithm,
            f.ledger.stored_data_bytes,
            b.ledger.stored_data_bytes
        );
    }
}
