//! Garbage collection: stream deletion and container reclamation.
//!
//! Backup systems retire old streams (retention policies), but containers
//! are shared — a DiskChunk may hold bytes that dozens of later recipes
//! still reference. Reclamation is therefore mark-and-sweep over the
//! recipes:
//!
//! 1. **mark** — walk every live FileManifest and collect the set of
//!    referenced containers;
//! 2. **sweep** — delete DiskChunks no recipe references, the Manifests
//!    that describe only dead containers, and the Hooks pointing at
//!    deleted Manifests.
//!
//! DiskChunks are immutable, so reclamation is whole-container: a
//! container stays alive while any byte of it is referenced (the classic
//! dedup fragmentation-vs-space trade-off; compaction is out of scope).
//! The ledger is adjusted so post-GC metrics stay truthful.

use mhd_hash::FxHashSet;
use mhd_store::{Backend, DiskChunkId, FileKind, Manifest, ManifestId, StoreResult, Substrate};

/// What one collection pass freed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// FileManifests deleted (by [`delete_stream`]).
    pub recipes_deleted: u64,
    /// DiskChunks reclaimed.
    pub containers_deleted: u64,
    /// Data bytes reclaimed.
    pub data_bytes_freed: u64,
    /// Manifests deleted.
    pub manifests_deleted: u64,
    /// Hooks deleted.
    pub hooks_deleted: u64,
    /// Containers still alive (for occupancy reporting).
    pub containers_live: u64,
    /// Containers spared by the protection cutoff (unreferenced *now*,
    /// but written at or after an in-progress session's watermark — their
    /// recipes may not have landed yet). Always `0` for [`collect`].
    pub containers_protected: u64,
}

/// Deletes every FileManifest whose name starts with `prefix` (e.g. one
/// backup label), then runs [`collect`]. Returns the combined report.
pub fn delete_stream<B: Backend>(
    substrate: &mut Substrate<B>,
    prefix: &str,
) -> StoreResult<GcReport> {
    let victims: Vec<String> = substrate
        .list_file_manifests()
        .into_iter()
        .filter(|name| name.starts_with(prefix))
        .collect();
    let mut deleted = 0u64;
    for name in victims {
        substrate.delete_file_manifest(&name)?;
        deleted += 1;
    }
    let mut report = collect(substrate)?;
    report.recipes_deleted = deleted;
    Ok(report)
}

/// Mark-and-sweep reclamation of unreferenced containers and their
/// metadata.
///
/// Safe only when no session is writing concurrently (the CLI runs it on
/// an otherwise-idle store). Under concurrent writers use
/// [`collect_protected`] with the oldest in-progress session's chunk-id
/// watermark as the cutoff.
pub fn collect<B: Backend>(substrate: &mut Substrate<B>) -> StoreResult<GcReport> {
    collect_protected(substrate, u64::MAX)
}

/// Mark-and-sweep reclamation that never touches DiskChunks with
/// `id >= cutoff` — the *protected set* of in-progress sessions.
///
/// Chunk ids are allocated monotonically
/// ([`Substrate::chunk_id_watermark`]), which gives concurrent GC a
/// session-protection protocol without per-chunk reference counting:
///
/// 1. every writing session records the watermark at the moment it
///    *opened* (before it wrote anything);
/// 2. a GC pass computes `cutoff = min(watermark at GC start, min over
///    registered sessions' watermarks)`;
/// 3. the sweep deletes an unreferenced chunk only when `id < cutoff`.
///
/// Any chunk a live session has written — or will write — has an id at
/// or above that session's watermark, hence at or above the cutoff, so
/// the sweep can never collect a chunk whose recipe merely has not
/// landed yet. Chunks below the cutoff belong to sessions that finished
/// (their recipes are on disk and participate in the mark) or died
/// (their intent records were rolled back at recovery), so for them the
/// classic mark result is authoritative. The interleaving argument is
/// model-checked exhaustively by `mhd-lint`'s `gc-protect` model.
///
/// `cutoff = u64::MAX` protects nothing and degenerates to [`collect`].
pub fn collect_protected<B: Backend>(
    substrate: &mut Substrate<B>,
    cutoff: u64,
) -> StoreResult<GcReport> {
    let mut report = GcReport::default();

    // Mark: containers referenced by any live recipe.
    let mut live: FxHashSet<DiskChunkId> = FxHashSet::default();
    for name in substrate.list_file_manifests() {
        let fm = substrate.load_file_manifest(&name)?;
        for e in fm.extents() {
            live.insert(e.container);
        }
    }

    // Sweep containers.
    let chunk_names = substrate.backend_mut().list(FileKind::DiskChunk);
    let mut dead: FxHashSet<DiskChunkId> = FxHashSet::default();
    for name in chunk_names {
        let id = DiskChunkId(
            u64::from_str_radix(&name, 16)
                .map_err(|e| mhd_store::StoreError::Corrupt(format!("chunk name: {e}")))?,
        );
        if live.contains(&id) {
            report.containers_live += 1;
        } else if id.0 >= cutoff {
            // Written at or after a registered session's watermark: its
            // recipe may still be in flight. Spared this pass; a later
            // pass (after the session commits or is rolled back) decides.
            report.containers_protected += 1;
        } else {
            report.data_bytes_freed += substrate.disk_chunk_len(id)?;
            substrate.delete_disk_chunk(id)?;
            dead.insert(id);
            report.containers_deleted += 1;
        }
    }

    // Sweep manifests: delete those describing only dead containers, and
    // prune dead entries from manifests that span both (SubChunk and
    // SparseIndexing manifests reference many containers).
    let mut dead_manifests: FxHashSet<ManifestId> = FxHashSet::default();
    // Hashes whose entries were pruned, per manifest (their hooks dangle).
    let mut pruned: FxHashSet<(mhd_hash::ChunkHash, ManifestId)> = FxHashSet::default();
    for name in substrate.backend_mut().list(FileKind::Manifest) {
        let id = ManifestId(
            u64::from_str_radix(&name, 16)
                .map_err(|e| mhd_store::StoreError::Corrupt(format!("manifest name: {e}")))?,
        );
        let data = substrate.backend_mut().get(FileKind::Manifest, &name)?;
        let mut manifest = Manifest::decode(id, &data)?;
        let dead_count = manifest.entries.iter().filter(|e| dead.contains(&e.container)).count();
        if dead_count == 0 {
            continue;
        }
        if dead_count == manifest.entries.len() {
            substrate.delete_manifest(id)?;
            dead_manifests.insert(id);
            report.manifests_deleted += 1;
        } else {
            for e in manifest.entries.iter().filter(|e| dead.contains(&e.container)) {
                pruned.insert((e.hash, id));
            }
            manifest.entries.retain(|e| !dead.contains(&e.container));
            // A hash can repeat in segment manifests: keep it referencable
            // if any surviving entry still carries it.
            for e in &manifest.entries {
                pruned.remove(&(e.hash, id));
            }
            substrate.update_manifest(&manifest)?;
        }
    }

    // Sweep hooks pointing at deleted manifests or pruned entries.
    for name in substrate.backend_mut().list(FileKind::Hook) {
        let payload = substrate.backend_mut().get(FileKind::Hook, &name)?;
        if payload.len() != 20 {
            continue; // fsck's job, not GC's
        }
        let mid = ManifestId(u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")));
        let hash_hex = name.split('-').next().unwrap_or(&name);
        let dangling = dead_manifests.contains(&mid)
            || mhd_hash::ChunkHash::from_hex(hash_hex)
                .map(|h| pruned.contains(&(h, mid)))
                .unwrap_or(false);
        if dangling {
            substrate.delete_hook_by_name(&name)?;
            report.hooks_deleted += 1;
        }
    }

    // GC is a commit point: the pruned-manifest rewrites must be on disk
    // before the pass reports success.
    substrate.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deduplicator, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    fn dedupped() -> (MhdEngine<MemBackend>, Corpus) {
        let corpus = Corpus::generate(CorpusSpec::tiny(501));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        (e, corpus)
    }

    #[test]
    fn collect_on_fully_live_store_frees_nothing() {
        let (mut e, _) = dedupped();
        let before = *e.substrate_mut().ledger();
        let report = collect(e.substrate_mut()).unwrap();
        assert_eq!(report.containers_deleted, 0);
        assert_eq!(report.manifests_deleted, 0);
        assert_eq!(report.hooks_deleted, 0);
        assert!(report.containers_live > 0);
        assert_eq!(*e.substrate_mut().ledger(), before);
    }

    #[test]
    fn deleting_all_streams_reclaims_everything() {
        let (mut e, _) = dedupped();
        let report = delete_stream(e.substrate_mut(), "m").unwrap();
        assert!(report.recipes_deleted > 0);
        assert!(report.containers_deleted > 0);
        assert_eq!(report.containers_live, 0);
        let ledger = e.substrate_mut().ledger();
        assert_eq!(ledger.stored_data_bytes, 0);
        assert_eq!(ledger.inodes_disk_chunks, 0);
        assert_eq!(ledger.inodes_manifests, 0);
        assert_eq!(ledger.inodes_hooks, 0);
        assert_eq!(ledger.manifest_bytes, 0);
        assert_eq!(ledger.hook_bytes, 0);
    }

    #[test]
    fn deleting_one_day_keeps_shared_containers() {
        let (mut e, corpus) = dedupped();
        let before_data = e.substrate_mut().ledger().stored_data_bytes;
        // Delete day 0 of every machine: later days reference much of the
        // same content (their recipes point into day-0 containers), so
        // most containers must survive.
        let report = delete_stream(e.substrate_mut(), "m0/d0").unwrap();
        assert!(report.recipes_deleted > 0);
        assert!(report.containers_live > 0);
        assert!(
            report.data_bytes_freed < before_data / 2,
            "freed {} of {} despite shared references",
            report.data_bytes_freed,
            before_data
        );
        // Remaining streams must still restore byte-exactly.
        for snapshot in &corpus.snapshots {
            for file in &snapshot.files {
                if file.path.starts_with("m0/d0") {
                    continue;
                }
                let restored = crate::restore::restore_file(e.substrate_mut(), &file.path).unwrap();
                assert_eq!(restored, file.data, "{}", file.path);
            }
        }
        // And the store stays structurally sound.
        let fsck = crate::fsck::check_store(e.substrate_mut());
        assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    }

    #[test]
    fn protected_cutoff_spares_unreferenced_chunks_above_it() {
        let (mut e, _) = dedupped();
        // Delete every recipe *without* sweeping, then collect with a
        // cutoff of 0: every chunk is unreferenced but protected.
        let victims = e.substrate_mut().list_file_manifests();
        for name in victims {
            e.substrate_mut().delete_file_manifest(&name).unwrap();
        }
        let spared = collect_protected(e.substrate_mut(), 0).unwrap();
        assert_eq!(spared.containers_deleted, 0);
        assert!(spared.containers_protected > 0);
        assert_eq!(spared.containers_live, 0);

        // Raising the cutoff past the watermark reclaims everything —
        // exactly what collect() does.
        let watermark = e.substrate_mut().chunk_id_watermark();
        let swept = collect_protected(e.substrate_mut(), watermark).unwrap();
        assert_eq!(swept.containers_protected, 0);
        assert_eq!(swept.containers_deleted, spared.containers_protected);
        assert_eq!(e.substrate_mut().ledger().stored_data_bytes, 0);
    }

    #[test]
    fn protection_never_deletes_what_a_later_recipe_references() {
        // The daemon scenario: session S records watermark W, GC runs
        // while S's chunks are on disk but its recipe is not. Modelled by
        // writing chunks directly, collecting with cutoff = W, then
        // asserting the chunks survive to be referenced.
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        let watermark = e.substrate_mut().chunk_id_watermark();
        let id = e.substrate_mut().write_disk_chunk_bytes(b"session-data").unwrap();
        let report = collect_protected(e.substrate_mut(), watermark).unwrap();
        assert_eq!(report.containers_deleted, 0, "in-flight chunk must be spared");
        assert_eq!(report.containers_protected, 1);
        assert_eq!(&e.substrate_mut().read_chunk_range(id, 0, 12).unwrap()[..], b"session-data");
    }

    #[test]
    fn gc_is_idempotent() {
        let (mut e, _) = dedupped();
        delete_stream(e.substrate_mut(), "m0/d0").unwrap();
        let second = collect(e.substrate_mut()).unwrap();
        assert_eq!(second.containers_deleted, 0);
        assert_eq!(second.manifests_deleted, 0);
    }
}
