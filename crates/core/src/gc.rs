//! Garbage collection: stream deletion and container reclamation.
//!
//! Backup systems retire old streams (retention policies), but containers
//! are shared — a DiskChunk may hold bytes that dozens of later recipes
//! still reference. Reclamation is therefore mark-and-sweep over the
//! recipes:
//!
//! 1. **mark** — walk every live FileManifest and collect the set of
//!    referenced containers;
//! 2. **sweep** — delete DiskChunks no recipe references, the Manifests
//!    that describe only dead containers, and the Hooks pointing at
//!    deleted Manifests.
//!
//! DiskChunks are immutable, so reclamation is whole-container: a
//! container stays alive while any byte of it is referenced (the classic
//! dedup fragmentation-vs-space trade-off; compaction is out of scope).
//! The ledger is adjusted so post-GC metrics stay truthful.

use mhd_hash::FxHashSet;
use mhd_store::{Backend, DiskChunkId, FileKind, Manifest, ManifestId, StoreResult, Substrate};

/// What one collection pass freed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GcReport {
    /// FileManifests deleted (by [`delete_stream`]).
    pub recipes_deleted: u64,
    /// DiskChunks reclaimed.
    pub containers_deleted: u64,
    /// Data bytes reclaimed.
    pub data_bytes_freed: u64,
    /// Manifests deleted.
    pub manifests_deleted: u64,
    /// Hooks deleted.
    pub hooks_deleted: u64,
    /// Containers still alive (for occupancy reporting).
    pub containers_live: u64,
}

/// Deletes every FileManifest whose name starts with `prefix` (e.g. one
/// backup label), then runs [`collect`]. Returns the combined report.
pub fn delete_stream<B: Backend>(
    substrate: &mut Substrate<B>,
    prefix: &str,
) -> StoreResult<GcReport> {
    let victims: Vec<String> = substrate
        .list_file_manifests()
        .into_iter()
        .filter(|name| name.starts_with(prefix))
        .collect();
    let mut deleted = 0u64;
    for name in victims {
        substrate.delete_file_manifest(&name)?;
        deleted += 1;
    }
    let mut report = collect(substrate)?;
    report.recipes_deleted = deleted;
    Ok(report)
}

/// Mark-and-sweep reclamation of unreferenced containers and their
/// metadata.
pub fn collect<B: Backend>(substrate: &mut Substrate<B>) -> StoreResult<GcReport> {
    let mut report = GcReport::default();

    // Mark: containers referenced by any live recipe.
    let mut live: FxHashSet<DiskChunkId> = FxHashSet::default();
    for name in substrate.list_file_manifests() {
        let fm = substrate.load_file_manifest(&name)?;
        for e in fm.extents() {
            live.insert(e.container);
        }
    }

    // Sweep containers.
    let chunk_names = substrate.backend_mut().list(FileKind::DiskChunk);
    let mut dead: FxHashSet<DiskChunkId> = FxHashSet::default();
    for name in chunk_names {
        let id = DiskChunkId(
            u64::from_str_radix(&name, 16)
                .map_err(|e| mhd_store::StoreError::Corrupt(format!("chunk name: {e}")))?,
        );
        if live.contains(&id) {
            report.containers_live += 1;
        } else {
            report.data_bytes_freed += substrate.disk_chunk_len(id)?;
            substrate.delete_disk_chunk(id)?;
            dead.insert(id);
            report.containers_deleted += 1;
        }
    }

    // Sweep manifests: delete those describing only dead containers, and
    // prune dead entries from manifests that span both (SubChunk and
    // SparseIndexing manifests reference many containers).
    let mut dead_manifests: FxHashSet<ManifestId> = FxHashSet::default();
    // Hashes whose entries were pruned, per manifest (their hooks dangle).
    let mut pruned: FxHashSet<(mhd_hash::ChunkHash, ManifestId)> = FxHashSet::default();
    for name in substrate.backend_mut().list(FileKind::Manifest) {
        let id = ManifestId(
            u64::from_str_radix(&name, 16)
                .map_err(|e| mhd_store::StoreError::Corrupt(format!("manifest name: {e}")))?,
        );
        let data = substrate.backend_mut().get(FileKind::Manifest, &name)?;
        let mut manifest = Manifest::decode(id, &data)?;
        let dead_count = manifest.entries.iter().filter(|e| dead.contains(&e.container)).count();
        if dead_count == 0 {
            continue;
        }
        if dead_count == manifest.entries.len() {
            substrate.delete_manifest(id)?;
            dead_manifests.insert(id);
            report.manifests_deleted += 1;
        } else {
            for e in manifest.entries.iter().filter(|e| dead.contains(&e.container)) {
                pruned.insert((e.hash, id));
            }
            manifest.entries.retain(|e| !dead.contains(&e.container));
            // A hash can repeat in segment manifests: keep it referencable
            // if any surviving entry still carries it.
            for e in &manifest.entries {
                pruned.remove(&(e.hash, id));
            }
            substrate.update_manifest(&manifest)?;
        }
    }

    // Sweep hooks pointing at deleted manifests or pruned entries.
    for name in substrate.backend_mut().list(FileKind::Hook) {
        let payload = substrate.backend_mut().get(FileKind::Hook, &name)?;
        if payload.len() != 20 {
            continue; // fsck's job, not GC's
        }
        let mid = ManifestId(u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")));
        let hash_hex = name.split('-').next().unwrap_or(&name);
        let dangling = dead_manifests.contains(&mid)
            || mhd_hash::ChunkHash::from_hex(hash_hex)
                .map(|h| pruned.contains(&(h, mid)))
                .unwrap_or(false);
        if dangling {
            substrate.delete_hook_by_name(&name)?;
            report.hooks_deleted += 1;
        }
    }

    // GC is a commit point: the pruned-manifest rewrites must be on disk
    // before the pass reports success.
    substrate.flush()?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deduplicator, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    fn dedupped() -> (MhdEngine<MemBackend>, Corpus) {
        let corpus = Corpus::generate(CorpusSpec::tiny(501));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        (e, corpus)
    }

    #[test]
    fn collect_on_fully_live_store_frees_nothing() {
        let (mut e, _) = dedupped();
        let before = *e.substrate_mut().ledger();
        let report = collect(e.substrate_mut()).unwrap();
        assert_eq!(report.containers_deleted, 0);
        assert_eq!(report.manifests_deleted, 0);
        assert_eq!(report.hooks_deleted, 0);
        assert!(report.containers_live > 0);
        assert_eq!(*e.substrate_mut().ledger(), before);
    }

    #[test]
    fn deleting_all_streams_reclaims_everything() {
        let (mut e, _) = dedupped();
        let report = delete_stream(e.substrate_mut(), "m").unwrap();
        assert!(report.recipes_deleted > 0);
        assert!(report.containers_deleted > 0);
        assert_eq!(report.containers_live, 0);
        let ledger = e.substrate_mut().ledger();
        assert_eq!(ledger.stored_data_bytes, 0);
        assert_eq!(ledger.inodes_disk_chunks, 0);
        assert_eq!(ledger.inodes_manifests, 0);
        assert_eq!(ledger.inodes_hooks, 0);
        assert_eq!(ledger.manifest_bytes, 0);
        assert_eq!(ledger.hook_bytes, 0);
    }

    #[test]
    fn deleting_one_day_keeps_shared_containers() {
        let (mut e, corpus) = dedupped();
        let before_data = e.substrate_mut().ledger().stored_data_bytes;
        // Delete day 0 of every machine: later days reference much of the
        // same content (their recipes point into day-0 containers), so
        // most containers must survive.
        let report = delete_stream(e.substrate_mut(), "m0/d0").unwrap();
        assert!(report.recipes_deleted > 0);
        assert!(report.containers_live > 0);
        assert!(
            report.data_bytes_freed < before_data / 2,
            "freed {} of {} despite shared references",
            report.data_bytes_freed,
            before_data
        );
        // Remaining streams must still restore byte-exactly.
        for snapshot in &corpus.snapshots {
            for file in &snapshot.files {
                if file.path.starts_with("m0/d0") {
                    continue;
                }
                let restored = crate::restore::restore_file(e.substrate_mut(), &file.path).unwrap();
                assert_eq!(restored, file.data, "{}", file.path);
            }
        }
        // And the store stays structurally sound.
        let fsck = crate::fsck::check_store(e.substrate_mut());
        assert!(fsck.is_healthy(), "{:?}", fsck.problems);
    }

    #[test]
    fn gc_is_idempotent() {
        let (mut e, _) = dedupped();
        delete_stream(e.substrate_mut(), "m0/d0").unwrap();
        let second = collect(e.substrate_mut()).unwrap();
        assert_eq!(second.containers_deleted, 0);
        assert_eq!(second.manifests_deleted, 0);
    }
}
