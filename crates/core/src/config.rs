//! Engine configuration.

use mhd_chunking::ChunkerKind;
use serde::{Deserialize, Serialize};

/// How HHR represents the duplicate region it discovers inside a merged
/// chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HhrDupGranularity {
    /// One hash for the whole duplicate region — the paper's layout
    /// ("one hash representing the duplicate chunk(s)"). Minimal metadata;
    /// a recurrence of the same slice re-verifies by byte comparison.
    Single,
    /// One hash per matched small chunk. Slightly more metadata, but a
    /// recurring slice then matches entirely by hash with no reload —
    /// the ablation counterpart benchmarked in `ablation.rs`.
    PerChunk,
}

/// How MHD indexes its Hooks globally (§V: "the MHD algorithm can also be
/// implemented in conjunction with the sparse index data structure ...
/// we denote the bloom filter based implementation ... BF-MHD").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HookIndex {
    /// BF-MHD: Hooks are tiny on-disk files gated by an in-RAM Bloom
    /// filter (an inode + 20 bytes each; one disk probe per positive).
    Bloom,
    /// SI-MHD: Hooks are buffered in an in-RAM sparse index — no Hook
    /// inodes or disk probes, more RAM.
    SparseIndex,
}

/// MHD-specific switches, exposed for the ablation benches of DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MhdOptions {
    /// Hook index implementation (BF-MHD vs SI-MHD).
    pub hook_index: HookIndex,
    /// Duplicate-region representation after HHR.
    pub hhr_dup: HhrDupGranularity,
    /// Create the EdgeHash entry on HHR (paper behaviour). Disabling merges
    /// the edge block into the remainder hash, so the same duplicate slice
    /// keeps re-triggering byte reloads.
    pub edge_hash: bool,
    /// Perform backward match extension (disabling leaves forward-only, an
    /// ablation of the bi-directional mechanism).
    pub backward_extension: bool,
    /// Perform forward match extension.
    pub forward_extension: bool,
}

impl Default for MhdOptions {
    fn default() -> Self {
        MhdOptions {
            hook_index: HookIndex::Bloom,
            hhr_dup: HhrDupGranularity::Single,
            edge_hash: true,
            backward_extension: true,
            forward_extension: true,
        }
    }
}

/// Parameters shared by every engine, mirroring the paper's experimental
/// setup (§V): the expected small chunk size `ECS`, the sample distance
/// `SD`, a Bloom filter, and an LRU Manifest cache.
///
/// Derived parameters follow the paper exactly: Bimodal/SubChunk use big
/// chunks of expected size `ECS × SD`; SparseIndexing uses segments of
/// `ECS × SD × 5`, at most 10 champions, and at most 5 manifests per hook.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Expected (small) chunk size in bytes; must be a power of two.
    pub ecs: usize,
    /// Sample distance in hashes.
    ///
    /// The paper runs SD ∈ {250, 500, 1000} against 1.0 TB; experiments
    /// here default to proportionally smaller values (the corpus is ~5000×
    /// smaller) so that `ECS × SD` stays well below a backup stream.
    pub sd: usize,
    /// Bloom filter size in bytes (the paper uses 100 MB for 1 TB; scale
    /// with your corpus).
    pub bloom_bytes: usize,
    /// Manifest cache capacity (number of resident manifests).
    pub cache_manifests: usize,
    /// Chunking algorithm used for the small-chunk stream (and, scaled to
    /// `ECS × SD`, for Bimodal/SubChunk/FBC big chunks). Persisted in store
    /// metadata so re-backups keep cutting the boundaries the store's
    /// existing chunks were built with.
    pub chunker: ChunkerKind,
    /// MHD-specific options.
    pub mhd: MhdOptions,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            ecs: 4096,
            sd: 32,
            bloom_bytes: 1 << 20,
            cache_manifests: 256,
            chunker: ChunkerKind::Rabin,
            mhd: MhdOptions::default(),
        }
    }
}

impl EngineConfig {
    /// Config with the given `ECS` and `SD`, other fields default.
    pub fn new(ecs: usize, sd: usize) -> Self {
        EngineConfig { ecs, sd, ..Default::default() }
    }

    /// Same config with a different chunking algorithm.
    pub fn with_chunker(self, chunker: ChunkerKind) -> Self {
        EngineConfig { chunker, ..self }
    }

    /// Expected big chunk size for Bimodal/SubChunk: `ECS × SD`.
    pub fn big_chunk_size(&self) -> usize {
        self.ecs * self.sd
    }

    /// SparseIndexing segment size: `ECS × SD × 5` (paper §V).
    pub fn segment_bytes(&self) -> usize {
        self.ecs * self.sd * 5
    }

    /// SparseIndexing champion budget per segment (paper §V).
    pub fn max_champions(&self) -> usize {
        10
    }

    /// SparseIndexing: manifests retained per hook (paper §V).
    pub fn manifests_per_hook(&self) -> usize {
        5
    }

    /// Validates parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        if !self.ecs.is_power_of_two() {
            return Err(format!("ECS {} must be a power of two", self.ecs));
        }
        if self.sd < 2 {
            return Err("SD must be at least 2 (SHM merges SD-1 hashes)".into());
        }
        if self.bloom_bytes == 0 {
            return Err("bloom filter needs at least one byte".into());
        }
        if self.cache_manifests == 0 {
            return Err("manifest cache needs capacity".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_parameters_follow_paper() {
        let c = EngineConfig::new(2048, 64);
        assert_eq!(c.big_chunk_size(), 2048 * 64);
        assert_eq!(c.segment_bytes(), 2048 * 64 * 5);
        assert_eq!(c.max_champions(), 10);
        assert_eq!(c.manifests_per_hook(), 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_catches_bad_params() {
        assert!(EngineConfig::new(3000, 32).validate().is_err());
        assert!(EngineConfig::new(4096, 1).validate().is_err());
        assert!(EngineConfig { bloom_bytes: 0, ..Default::default() }.validate().is_err());
        assert!(EngineConfig { cache_manifests: 0, ..Default::default() }.validate().is_err());
    }

    #[test]
    fn default_mhd_options_match_paper() {
        let o = MhdOptions::default();
        assert_eq!(o.hhr_dup, HhrDupGranularity::Single);
        assert!(o.edge_hash && o.backward_extension && o.forward_extension);
    }
}
