//! Deduplication engines: MHD and the paper's baselines.
//!
//! This crate implements the paper's contribution — **Metadata Harnessing
//! Deduplication** ([`MhdEngine`]): Sampling-and-Hash-Merging (SHM),
//! Bi-Directional Match Extension (BME/FME), and Hysteresis Hash
//! Re-chunking (HHR) — together with the four comparison systems of its
//! evaluation:
//!
//! * [`CdcEngine`] — flat content-defined chunking with a full per-chunk
//!   hook index (the "CDC" column of Tables I–II),
//! * [`BimodalEngine`] — big-chunk-first dedup, re-chunking non-duplicate
//!   big chunks adjacent to duplicates (transition points),
//! * [`SubChunkEngine`] — big-chunk-first dedup re-chunking *every*
//!   non-duplicate big chunk, coalescing its small chunks into one
//!   container,
//! * [`SparseIndexEngine`] — segment-based dedup against champion
//!   manifests chosen by a RAM sparse index, and
//! * [`FbcEngine`] — frequency-based chunking (count-min-sketch-driven
//!   selective re-chunking), the third big-chunk algorithm the paper's
//!   §I–II discuss.
//!
//! All engines run against the same [`mhd_store::Substrate`], so their
//! [`IoStats`](mhd_store::IoStats) and
//! [`MetadataLedger`](mhd_store::MetadataLedger) are directly comparable —
//! the measured analogue of the paper's Tables I and II. [`metrics`]
//! derives the evaluation's figures of merit (data-only DER, real DER,
//! MetaDataRatio, ThroughputRatio, DAD) and [`analysis`] provides the
//! closed-form models of §IV for cross-checking.
//!
//! # Example
//!
//! ```
//! use mhd_core::{Deduplicator, EngineConfig, MhdEngine, restore};
//! use mhd_store::MemBackend;
//! use mhd_workload::{Corpus, CorpusSpec};
//!
//! let corpus = Corpus::generate(CorpusSpec::tiny(1));
//! let mut engine = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8))?;
//! for snapshot in &corpus.snapshots {
//!     engine.process_snapshot(snapshot)?;
//! }
//! let report = engine.finish()?;
//! assert!(report.dup_bytes > 0);
//! // Everything restores byte-exactly.
//! let files = restore::verify_corpus(engine.substrate_mut(), &corpus).unwrap();
//! assert!(files > 0);
//! # Ok::<(), mhd_core::EngineError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod compact;
pub mod fsck;
pub mod gc;
pub mod metrics;
pub mod pipeline;
pub mod restore;
pub mod shard;
pub mod statefile;

mod bimodal;
mod cdc_engine;
mod config;
mod engine;
#[cfg(test)]
mod engine_tests;
mod fbc;
mod mhd;
mod sparse_index;
mod subchunk;

pub use bimodal::BimodalEngine;
pub use cdc_engine::CdcEngine;
pub use config::{EngineConfig, HhrDupGranularity, HookIndex, MhdOptions};
pub use engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, HashedChunk, HookPresence,
};
pub use fbc::FbcEngine;
pub use mhd::{MhdEngine, MhdState, SessionDelta};
pub use sparse_index::SparseIndexEngine;
pub use subchunk::SubChunkEngine;
