//! Store integrity checking (`fsck` for the dedup store).
//!
//! Walks every object in a substrate and verifies the structural
//! invariants the engines maintain:
//!
//! * every Manifest decodes, references existing DiskChunks, and its
//!   entries stay in-bounds of their containers;
//! * MHD-format (HookFlags) Manifests exactly tile their DiskChunk — the
//!   invariant HHR re-chunking must preserve — and contain at least one
//!   Hook entry;
//! * every Hook points at an existing Manifest that still carries the
//!   hooked hash (Hooks are immutable and HHR never re-chunks Hook
//!   entries, so a dangling Hook means corruption);
//! * every FileManifest decodes and its extents stay in-bounds.
//!
//! Used by the `mhd verify` CLI command and the integration tests, which
//! run it after every engine (a deduplicator that corrupts its own
//! invariants usually still restores *today* — fsck catches the latent
//! damage).

use mhd_hash::{sha1, ChunkHash};
use mhd_store::{
    Backend, DiskChunkId, FileKind, FileManifest, Manifest, ManifestFormat, ManifestId,
    RecoveryReport, StoreResult, Substrate,
};

/// Outcome of an integrity walk.
#[derive(Debug, Default)]
pub struct IntegrityReport {
    /// Manifests inspected.
    pub manifests: usize,
    /// Manifest entries inspected.
    pub entries: usize,
    /// Hooks inspected.
    pub hooks: usize,
    /// FileManifests inspected.
    pub file_manifests: usize,
    /// Human-readable problems found (empty == healthy).
    pub problems: Vec<String>,
}

impl IntegrityReport {
    /// True when no problems were found.
    pub fn is_healthy(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Crash-recovery pass: asks the backend to detect and roll back
/// mutations that were in flight when the store was last open — torn
/// `.*.tmp` files (the write never committed; the target still holds its
/// previous content) and unresolved overwrite intents (the rename either
/// committed or the tmp was rolled back, so clearing the intent completes
/// the operation either way). Run this *before* [`check_store`] on a store
/// that may have been interrupted; on a clean store it is a no-op.
pub fn recover_store<B: Backend>(substrate: &mut Substrate<B>) -> StoreResult<RecoveryReport> {
    substrate.recover()
}

/// Walks the whole store. Reads go straight to the backend (no Table II
/// counters are charged — fsck is maintenance, not deduplication).
pub fn check_store<B: Backend>(substrate: &mut Substrate<B>) -> IntegrityReport {
    let mut report = IntegrityReport::default();
    let backend = substrate.backend_mut();

    // Container sizes, for bounds checks.
    let chunk_names = backend.list(FileKind::DiskChunk);
    let mut chunk_sizes = std::collections::BTreeMap::new();
    for name in &chunk_names {
        match backend.size_of(FileKind::DiskChunk, name) {
            Ok(size) => {
                chunk_sizes.insert(name.clone(), size);
            }
            Err(e) => report.problems.push(format!("chunk {name}: unreadable size: {e}")),
        }
    }

    // Manifests.
    let mut manifests = std::collections::BTreeMap::new();
    for name in backend.list(FileKind::Manifest) {
        let Ok(id_num) = u64::from_str_radix(&name, 16) else {
            report.problems.push(format!("manifest {name}: non-hex name"));
            continue;
        };
        let id = ManifestId(id_num);
        let data = match backend.get(FileKind::Manifest, &name) {
            Ok(d) => d,
            Err(e) => {
                report.problems.push(format!("manifest {name}: unreadable: {e}"));
                continue;
            }
        };
        let manifest = match Manifest::decode(id, &data) {
            Ok(m) => m,
            Err(e) => {
                report.problems.push(format!("manifest {name}: corrupt: {e}"));
                continue;
            }
        };
        report.manifests += 1;
        report.entries += manifest.entries.len();

        for (i, e) in manifest.entries.iter().enumerate() {
            match chunk_sizes.get(&e.container.name()) {
                None => {
                    report.problems.push(format!("manifest {name} entry {i}: missing container"))
                }
                Some(&size) if e.end() > size => report.problems.push(format!(
                    "manifest {name} entry {i}: range {}..{} exceeds container size {size}",
                    e.offset,
                    e.end()
                )),
                Some(_) => {}
            }
        }
        if manifest.format == ManifestFormat::HookFlags {
            if let Some(first) = manifest.entries.first() {
                let container_len = chunk_sizes.get(&first.container.name()).copied().unwrap_or(0);
                if let Err(e) = manifest.check_tiling(container_len) {
                    report.problems.push(format!("manifest {name}: tiling violated: {e}"));
                }
                if !manifest.entries.iter().any(|e| e.is_hook) {
                    report.problems.push(format!("manifest {name}: no Hook entry"));
                }
            }
        }
        manifests.insert(id, manifest);
    }

    // Hooks.
    for name in backend.list(FileKind::Hook) {
        report.hooks += 1;
        let payload = match backend.get(FileKind::Hook, &name) {
            Ok(p) => p,
            Err(e) => {
                report.problems.push(format!("hook {name}: unreadable: {e}"));
                continue;
            }
        };
        if payload.len() != 20 {
            report.problems.push(format!("hook {name}: payload {} != 20 bytes", payload.len()));
            continue;
        }
        // lint: allow(unwrap): payload length was checked to be 20 just above
        let mid = ManifestId(u64::from_le_bytes(payload[..8].try_into().expect("8 bytes")));
        // SparseIndexing occurrence hooks are named `hash-manifest`.
        let hash_hex = name.split('-').next().unwrap_or(&name);
        let Ok(hash) = ChunkHash::from_hex(hash_hex) else {
            report.problems.push(format!("hook {name}: non-hex hash name"));
            continue;
        };
        match manifests.get(&mid) {
            None => report.problems.push(format!("hook {name}: dangling manifest {mid:?}")),
            Some(m) => {
                if !m.entries.iter().any(|e| e.hash == hash) {
                    report.problems.push(format!("hook {name}: hash absent from manifest {mid:?}"));
                }
            }
        }
    }

    // FileManifests.
    for name in backend.list(FileKind::FileManifest) {
        let data = match backend.get(FileKind::FileManifest, &name) {
            Ok(d) => d,
            Err(e) => {
                report.problems.push(format!("recipe {name}: unreadable: {e}"));
                continue;
            }
        };
        let fm = match FileManifest::decode(&data) {
            Ok(fm) => fm,
            Err(e) => {
                report.problems.push(format!("recipe {name}: corrupt: {e}"));
                continue;
            }
        };
        report.file_manifests += 1;
        for (i, e) in fm.extents().iter().enumerate() {
            match chunk_sizes.get(&e.container.name()) {
                None => {
                    report.problems.push(format!("recipe {name} extent {i}: missing container"))
                }
                Some(&size) if e.offset + e.len > size => report.problems.push(format!(
                    "recipe {name} extent {i}: out of bounds ({}+{} > {size})",
                    e.offset, e.len
                )),
                Some(_) => {}
            }
        }
    }

    report
}

/// Deep scrub: recomputes the SHA-1 of every DiskChunk and compares it to
/// the content address recorded when the container was sealed (bit-rot
/// detection on durable backends). Containers sealed before the current
/// session whose hash is unknown (state not imported) are reported as
/// unverifiable, not unhealthy.
pub fn scrub<B: Backend>(substrate: &mut Substrate<B>) -> IntegrityReport {
    let mut report = IntegrityReport::default();
    let names = substrate.backend_mut().list(FileKind::DiskChunk);
    for name in names {
        let Ok(id_num) = u64::from_str_radix(&name, 16) else {
            report.problems.push(format!("chunk {name}: non-hex name"));
            continue;
        };
        let id = DiskChunkId(id_num);
        let Some(expected) = substrate.disk_chunk_hash(id) else {
            continue; // sealed in an earlier session without imported state
        };
        let data = match substrate.backend_mut().get(FileKind::DiskChunk, &name) {
            Ok(d) => d,
            Err(e) => {
                report.problems.push(format!("chunk {name}: unreadable: {e}"));
                continue;
            }
        };
        if sha1(&data) != expected {
            report
                .problems
                .push(format!("chunk {name}: content hash mismatch (expected {expected})"));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Deduplicator, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    fn dedupped_store() -> MhdEngine<MemBackend> {
        let corpus = Corpus::generate(CorpusSpec::tiny(71));
        let mut e = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            e.process_snapshot(s).unwrap();
        }
        e.finish().unwrap();
        e
    }

    #[test]
    fn healthy_store_passes() {
        let mut e = dedupped_store();
        let report = check_store(e.substrate_mut());
        assert!(report.is_healthy(), "problems: {:?}", report.problems);
        assert!(report.manifests > 0);
        assert!(report.entries > 0);
        assert!(report.hooks > 0);
        assert!(report.file_manifests > 0);
    }

    #[test]
    fn scrub_passes_clean_and_catches_rot() {
        let mut e = dedupped_store();
        assert!(scrub(e.substrate_mut()).is_healthy());

        // Flip a byte in one container: hash-addressed content no longer
        // matches its address.
        let backend = e.substrate_mut().backend_mut();
        let name = backend.list(FileKind::DiskChunk)[0].clone();
        let mut data = backend.get(FileKind::DiskChunk, &name).unwrap().to_vec();
        data[0] ^= 0xFF;
        backend.update(FileKind::DiskChunk, &name, &data).unwrap();
        let report = scrub(e.substrate_mut());
        assert!(report.problems.iter().any(|p| p.contains("content hash mismatch")));
    }

    #[test]
    fn detects_truncated_manifest() {
        let mut e = dedupped_store();
        let backend = e.substrate_mut().backend_mut();
        let name = backend.list(FileKind::Manifest)[0].clone();
        let data = backend.get(FileKind::Manifest, &name).unwrap();
        backend.update(FileKind::Manifest, &name, &data[..data.len() - 3]).unwrap();
        let report = check_store(e.substrate_mut());
        assert!(!report.is_healthy());
        assert!(report.problems.iter().any(|p| p.contains("corrupt")));
    }

    #[test]
    fn detects_dangling_hook() {
        let mut e = dedupped_store();
        let backend = e.substrate_mut().backend_mut();
        let hook = backend.list(FileKind::Hook)[0].clone();
        let mut payload = [0u8; 20];
        payload[..8].copy_from_slice(&u64::MAX.to_le_bytes());
        backend.update(FileKind::Hook, &hook, &payload).unwrap();
        let report = check_store(e.substrate_mut());
        assert!(report.problems.iter().any(|p| p.contains("dangling")));
    }

    #[test]
    fn detects_bad_hook_payload_size() {
        let mut e = dedupped_store();
        let backend = e.substrate_mut().backend_mut();
        let hook = backend.list(FileKind::Hook)[0].clone();
        backend.update(FileKind::Hook, &hook, &[1, 2, 3]).unwrap();
        let report = check_store(e.substrate_mut());
        assert!(report.problems.iter().any(|p| p.contains("!= 20 bytes")));
    }
}
