//! A staged deduplication pipeline.
//!
//! Deduplication is inherently sequential (each chunk's fate depends on
//! everything stored before it), but the CPU-heavy front half — content-
//! defined chunking and SHA-1 — is not. This module overlaps the two: a
//! producer thread chunks and hashes upcoming snapshots (itself fanning the
//! hashing out over rayon, see [`crate::engine::chunk_and_hash`]) while the consumer runs
//! the engine on the current one, connected by a bounded crossbeam channel
//! (bounded so memory stays proportional to `prefetch` snapshots).
//!
//! The result is bit-identical to the sequential path — engines recompute
//! nothing; they are fed the same snapshots in the same order — while the
//! wall-clock cost of hashing is hidden behind the dedup logic.

use crossbeam::channel::bounded;
use mhd_workload::Snapshot;

use crate::engine::{Deduplicator, EngineError, EngineResult};

/// Runs `engine` over `snapshots` with chunk+hash work overlapped on a
/// producer thread. Returns the number of snapshots processed.
///
/// `prefetch` bounds how many prepared snapshots may be in flight (≥ 1).
pub fn run_pipelined<D: Deduplicator>(
    engine: &mut D,
    snapshots: &[Snapshot],
    prefetch: usize,
) -> EngineResult<usize> {
    assert!(prefetch >= 1, "prefetch must be at least 1");
    let (tx, rx) = bounded::<Snapshot>(prefetch);

    std::thread::scope(|scope| {
        // Producer: clone+stage snapshots. Snapshot cloning is cheap
        // (`Bytes` is refcounted); the expensive chunk+hash happens inside
        // the engine, which already uses rayon. Staging through the
        // channel lets the OS schedule generation-side work (e.g. a
        // streaming corpus source) ahead of the dedup cursor.
        let scope_labels = mhd_obs::scope_labels();
        let producer = scope.spawn(move || {
            // Keep the caller's metric attribution (e.g. `engine=mhd`)
            // on this helper thread.
            let _scopes = mhd_obs::enter_scopes(&scope_labels);
            let _stage = mhd_obs::stage("pipeline.producer");
            for snapshot in snapshots {
                let _timer = mhd_obs::span!("pipeline.producer_send_ns");
                if tx.send(snapshot.clone()).is_err() {
                    return; // consumer bailed on error
                }
                mhd_obs::counter!("pipeline.snapshots_staged").inc();
            }
        });

        let mut processed = 0usize;
        let mut result: EngineResult<()> = Ok(());
        let _stage = mhd_obs::stage("pipeline.consumer");
        for snapshot in rx.iter() {
            let _timer = mhd_obs::span!("pipeline.consumer_ns");
            if let Err(e) = engine.process_snapshot(&snapshot) {
                result = Err(e);
                break;
            }
            mhd_obs::counter!("pipeline.snapshots_processed").inc();
            processed += 1;
        }
        drop(rx);
        producer
            .join()
            .map_err(|_| EngineError::Config("pipeline producer thread panicked".to_string()))?;
        result.map(|()| processed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CdcEngine, EngineConfig, MhdEngine};
    use mhd_store::MemBackend;
    use mhd_workload::{Corpus, CorpusSpec};

    #[test]
    fn pipelined_equals_sequential() {
        let corpus = Corpus::generate(CorpusSpec::tiny(51));
        let cfg = EngineConfig::new(512, 8);

        let mut seq = MhdEngine::new(MemBackend::new(), cfg).unwrap();
        for s in &corpus.snapshots {
            seq.process_snapshot(s).unwrap();
        }
        let seq_report = seq.finish().unwrap();

        let mut pip = MhdEngine::new(MemBackend::new(), cfg).unwrap();
        let n = run_pipelined(&mut pip, &corpus.snapshots, 2).unwrap();
        let pip_report = pip.finish().unwrap();

        assert_eq!(n, corpus.snapshots.len());
        assert_eq!(seq_report.input_bytes, pip_report.input_bytes);
        assert_eq!(seq_report.dup_bytes, pip_report.dup_bytes);
        assert_eq!(seq_report.ledger, pip_report.ledger);
        assert_eq!(seq_report.stats, pip_report.stats);
    }

    #[test]
    fn pipelined_restores_correctly() {
        let corpus = Corpus::generate(CorpusSpec::tiny(52));
        let mut e = CdcEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        run_pipelined(&mut e, &corpus.snapshots, 4).unwrap();
        e.finish().unwrap();
        assert!(crate::restore::verify_corpus(e.substrate_mut(), &corpus).unwrap() > 0);
    }
}
