//! Sharded parallel deduplication.
//!
//! The paper motivates MHD with "distributed systems related applications
//! such as large scale data backup" (§I): at fleet scale one dedup node
//! cannot absorb every stream, so backup systems shard. This module
//! provides the standard machine-affinity sharding: each machine's streams
//! always route to the same shard (an independent [`MhdEngine`] with its
//! own substrate), so day-over-day duplication — the dominant component —
//! stays within a shard, while shards run on parallel threads.
//!
//! Cross-shard duplication (the OS base images shared by machines that
//! landed on different shards) is deliberately forfeited; that is the real
//! trade-off sharded dedup makes, and
//! `tests/sharding.rs::sharding_costs_cross_machine_dup` quantifies it.
//! The `mhd-daemon` crate takes the complementary point in that design
//! space: **one** shared store behind a lock, with concurrency recovered
//! through a sharded in-memory hook index (`SharedHookIndex`) instead of
//! sharded substrates — cross-tenant dedup is kept, and only index
//! access parallelises. DESIGN.md §10 compares the two.

use mhd_store::{Backend, MemBackend};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{DedupReport, Deduplicator, EngineError, EngineResult};
use crate::mhd::MhdEngine;

/// A fleet of independent MHD shards with machine-affinity routing.
pub struct ShardedMhd<B: Backend> {
    shards: Vec<MhdEngine<B>>,
}

impl ShardedMhd<MemBackend> {
    /// Creates `shards` in-memory engines sharing one configuration.
    pub fn new_in_memory(shards: usize, config: EngineConfig) -> EngineResult<Self> {
        if shards == 0 {
            return Err(EngineError::Config("need at least one shard".into()));
        }
        let shards = (0..shards)
            .map(|_| MhdEngine::new(MemBackend::new(), config))
            .collect::<EngineResult<Vec<_>>>()?;
        Ok(ShardedMhd { shards })
    }
}

impl<B: Backend + Send> ShardedMhd<B> {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a machine routes to.
    pub fn route(&self, machine: usize) -> usize {
        machine % self.shards.len()
    }

    /// Deduplicates a batch of streams, fanning the shards out over scoped
    /// threads. Streams for one shard are processed in the order given
    /// (dedup is order-sensitive; the batch is typically one backup day).
    pub fn process_batch(&mut self, snapshots: &[Snapshot]) -> EngineResult<()> {
        let n = self.shards.len();
        // Partition indices by shard, preserving order.
        let mut work: Vec<Vec<&Snapshot>> = (0..n).map(|_| Vec::new()).collect();
        for s in snapshots {
            work[s.machine % n].push(s);
        }
        let scope_labels = mhd_obs::scope_labels();
        let results: Vec<EngineResult<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter_mut()
                .zip(work)
                .enumerate()
                .map(|(idx, (shard, streams))| {
                    let scope_labels = scope_labels.clone();
                    scope.spawn(move || {
                        // Parent attribution first (e.g. `engine=mhd`),
                        // then this shard's own label, so per-shard
                        // occupancy and queue imbalance are visible in
                        // the snapshot's scope section.
                        let _parent = mhd_obs::enter_scopes(&scope_labels);
                        let _scope = mhd_obs::scope!("shard={idx}");
                        let _stage = mhd_obs::stage(format!("shard={idx}"));
                        let _timer = mhd_obs::span!("shard.batch_ns");
                        mhd_obs::histogram!("shard.batch_streams").record(streams.len() as u64);
                        for s in streams {
                            shard.process_snapshot(s)?;
                        }
                        Ok(())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| {
                        Err(EngineError::Config("shard thread panicked".into()))
                    })
                })
                .collect()
        });
        for r in results {
            r?;
        }
        Ok(())
    }

    /// Finishes every shard and returns the merged fleet report plus the
    /// per-shard reports.
    pub fn finish(&mut self) -> EngineResult<(DedupReport, Vec<DedupReport>)> {
        let mut reports = Vec::with_capacity(self.shards.len());
        for shard in &mut self.shards {
            reports.push(shard.finish()?);
        }
        let mut merged = reports[0].clone();
        merged.algorithm = format!("bf-mhd x{}", reports.len());
        for r in &reports[1..] {
            merged.input_bytes += r.input_bytes;
            merged.dup_bytes += r.dup_bytes;
            merged.dup_slices += r.dup_slices;
            merged.files += r.files;
            merged.chunks_stored += r.chunks_stored;
            merged.chunks_dup += r.chunks_dup;
            merged.hhr_count += r.hhr_count;
            merged.stats = merged.stats.merge(&r.stats);
            merged.ledger.inodes_disk_chunks += r.ledger.inodes_disk_chunks;
            merged.ledger.inodes_hooks += r.ledger.inodes_hooks;
            merged.ledger.inodes_manifests += r.ledger.inodes_manifests;
            merged.ledger.inodes_file_manifests += r.ledger.inodes_file_manifests;
            merged.ledger.hook_bytes += r.ledger.hook_bytes;
            merged.ledger.manifest_bytes += r.ledger.manifest_bytes;
            merged.ledger.file_manifest_bytes += r.ledger.file_manifest_bytes;
            merged.ledger.stored_data_bytes += r.ledger.stored_data_bytes;
            merged.ram_index_bytes += r.ram_index_bytes;
            // Shards run concurrently: fleet wall-clock is the slowest
            // shard, not the sum.
            merged.dedup_seconds = merged.dedup_seconds.max(r.dedup_seconds);
        }
        Ok((merged, reports))
    }

    /// Access to one shard's engine (restore, fsck).
    pub fn shard_mut(&mut self, idx: usize) -> &mut MhdEngine<B> {
        &mut self.shards[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_workload::{Corpus, CorpusSpec};

    #[test]
    fn sharded_processes_everything_and_restores() {
        let corpus = Corpus::generate(CorpusSpec::tiny(301));
        let mut fleet = ShardedMhd::new_in_memory(3, EngineConfig::new(512, 8)).unwrap();
        let machines = corpus.spec().machines;
        for day in corpus.snapshots.chunks(machines) {
            fleet.process_batch(day).unwrap();
        }
        let (merged, per_shard) = fleet.finish().unwrap();
        assert_eq!(merged.input_bytes, corpus.total_bytes());
        assert_eq!(per_shard.len(), 3);
        assert_eq!(merged.ledger.stored_data_bytes + merged.dup_bytes, merged.input_bytes);

        // Every file restores from its machine's shard.
        for snapshot in &corpus.snapshots {
            let shard = fleet.route(snapshot.machine);
            for file in &snapshot.files {
                let restored = crate::restore::restore_file(
                    fleet.shard_mut(shard).substrate_mut(),
                    &file.path,
                )
                .unwrap();
                assert_eq!(restored, file.data, "{}", file.path);
            }
        }
    }

    #[test]
    fn machine_affinity_preserves_temporal_dedup() {
        // With affinity routing, day-over-day dedup must be close to the
        // single-engine result.
        let corpus = Corpus::generate(CorpusSpec::tiny(302));
        let machines = corpus.spec().machines;

        let mut single = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            single.process_snapshot(s).unwrap();
        }
        let single_report = single.finish().unwrap();

        let mut fleet = ShardedMhd::new_in_memory(3, EngineConfig::new(512, 8)).unwrap();
        for day in corpus.snapshots.chunks(machines) {
            fleet.process_batch(day).unwrap();
        }
        let (merged, _) = fleet.finish().unwrap();

        // The fleet loses only the cross-machine (base image) dedup that
        // crosses shard boundaries.
        assert!(merged.dup_bytes >= single_report.dup_bytes / 2);
        assert!(merged.dup_bytes <= single_report.dup_bytes);
    }

    #[test]
    fn zero_shards_rejected() {
        assert!(ShardedMhd::new_in_memory(0, EngineConfig::new(512, 8)).is_err());
    }

    #[test]
    fn single_shard_equals_plain_engine() {
        let corpus = Corpus::generate(CorpusSpec::tiny(303));
        let machines = corpus.spec().machines;
        let mut single = MhdEngine::new(MemBackend::new(), EngineConfig::new(512, 8)).unwrap();
        for s in &corpus.snapshots {
            single.process_snapshot(s).unwrap();
        }
        let expect = single.finish().unwrap();

        let mut fleet = ShardedMhd::new_in_memory(1, EngineConfig::new(512, 8)).unwrap();
        for day in corpus.snapshots.chunks(machines) {
            fleet.process_batch(day).unwrap();
        }
        let (merged, _) = fleet.finish().unwrap();
        assert_eq!(merged.ledger, expect.ledger);
        assert_eq!(merged.dup_bytes, expect.dup_bytes);
    }
}
