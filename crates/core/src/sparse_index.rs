//! The SparseIndexing baseline (Lillibridge et al., FAST'09, with the
//! parameters the paper uses in §V).
//!
//! The incoming stream is divided into large *segments* (`ECS × SD × 5`
//! bytes). A sample of each segment's chunk hashes (1-in-`SD`, chosen by a
//! hash mask) are its *hooks*; an in-RAM **sparse index** maps each hook to
//! at most 5 segment manifests. An incoming segment is deduplicated only
//! against its *champions* — the ≤ 10 manifests its hooks vote for —
//! loaded from disk. The segment manifest records *every* chunk of the
//! segment (duplicates included, "one hash may be recorded multiple times
//! if the corresponding chunk appears multiple times in the stream"), which
//! is why its manifest volume is the largest in Fig. 7(b); hook occurrences
//! are also persisted per manifest, giving the highest inode count in
//! Fig. 7(a).

use std::time::Instant;

use bytes::Bytes;
use mhd_cache::ManifestCache;
use mhd_chunking::AnyChunker;
use mhd_hash::{ChunkHash, FxHashMap};
use mhd_store::{
    Backend, Extent, FileManifest, Manifest, ManifestEntry, ManifestFormat, ManifestId, Substrate,
};
use mhd_workload::Snapshot;

use crate::config::EngineConfig;
use crate::engine::{
    chunk_and_hash, DedupReport, Deduplicator, EngineError, EngineResult, HashedChunk, SliceTracker,
};

/// One chunk queued into the current segment, tagged with its source file.
struct SegChunk {
    file_idx: usize,
    chunk: HashedChunk,
}

/// Segment-and-champion deduplicator with a RAM sparse index.
pub struct SparseIndexEngine<B: Backend> {
    config: EngineConfig,
    chunker: AnyChunker,
    substrate: Substrate<B>,
    cache: ManifestCache,
    /// hook hash → up to `manifests_per_hook` manifest ids, most recent
    /// first.
    sparse_index: FxHashMap<ChunkHash, Vec<ManifestId>>,
    slice: SliceTracker,
    input_bytes: u64,
    files: u64,
    chunks_stored: u64,
    dedup_seconds: f64,
}

impl<B: Backend> SparseIndexEngine<B> {
    /// Creates an engine over `backend`.
    pub fn new(backend: B, config: EngineConfig) -> EngineResult<Self> {
        config.validate().map_err(EngineError::Config)?;
        let chunker =
            config.chunker.build(config.ecs).map_err(|e| EngineError::Config(e.to_string()))?;
        Ok(SparseIndexEngine {
            chunker,
            substrate: Substrate::new(backend),
            cache: ManifestCache::new(config.cache_manifests),
            sparse_index: FxHashMap::default(),
            slice: SliceTracker::default(),
            input_bytes: 0,
            files: 0,
            chunks_stored: 0,
            dedup_seconds: 0.0,
            config,
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The storage substrate (counters, ledger, restore access).
    pub fn substrate_mut(&mut self) -> &mut Substrate<B> {
        &mut self.substrate
    }

    /// RAM held by the sparse index (Table III): per entry, the 20-byte
    /// hook hash plus 8 bytes per manifest pointer.
    pub fn sparse_index_ram_bytes(&self) -> u64 {
        self.sparse_index.values().map(|v| 20 + 8 * v.len() as u64).sum()
    }

    fn is_hook(&self, hash: &ChunkHash) -> bool {
        hash.prefix_u64() % self.config.sd as u64 == 0
    }

    /// Deduplicates one accumulated segment and writes its manifest.
    fn flush_segment(
        &mut self,
        seg: &mut Vec<SegChunk>,
        files: &[Bytes],
        fms: &mut [FileManifest],
    ) -> EngineResult<()> {
        if seg.is_empty() {
            return Ok(());
        }
        // 1. Champions: manifests voted for by this segment's hooks.
        let mut votes: FxHashMap<ManifestId, u32> = FxHashMap::default();
        for sc in seg.iter() {
            if self.is_hook(&sc.chunk.hash) {
                if let Some(mids) = self.sparse_index.get(&sc.chunk.hash) {
                    for &mid in mids {
                        *votes.entry(mid).or_insert(0) += 1;
                    }
                }
            }
        }
        let mut ranked: Vec<(ManifestId, u32)> = votes.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(b.0 .0.cmp(&a.0 .0)));
        ranked.truncate(self.config.max_champions());

        // 2. Load champions (cache-aware) and build the dedup map.
        let mut dedup: FxHashMap<ChunkHash, Extent> = FxHashMap::default();
        for (mid, _) in &ranked {
            if self.cache.contains(*mid) {
                self.substrate.stats_mut().cache_hits += 1;
                self.cache.get(*mid); // touch
            } else {
                let manifest = self.substrate.load_manifest(*mid)?;
                if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
                    debug_assert!(!dirty);
                    if dirty {
                        self.substrate.update_manifest(&evicted)?;
                    }
                }
            }
            let cached = self.cache.peek(*mid).expect("champion resident");
            for e in &cached.manifest().entries {
                dedup.entry(e.hash).or_insert(Extent {
                    container: e.container,
                    offset: e.offset,
                    len: e.size,
                });
            }
        }

        // 3. Dedup each chunk against the champions (and earlier chunks of
        // this segment), store the rest in the segment container.
        let mut builder = self.substrate.new_disk_chunk();
        let mut entries: Vec<ManifestEntry> = Vec::with_capacity(seg.len());
        for sc in seg.iter() {
            let data = &files[sc.file_idx];
            let c = &sc.chunk;
            let extent = if let Some(e) = dedup.get(&c.hash) {
                debug_assert_eq!(e.len, c.len as u64);
                self.slice.on_dup(e.len, 1);
                *e
            } else {
                self.slice.on_nondup();
                let offset = builder.append(c.slice(data));
                let e = Extent { container: builder.id(), offset, len: c.len as u64 };
                dedup.insert(c.hash, e); // intra-segment duplicates
                self.chunks_stored += 1;
                e
            };
            entries.push(ManifestEntry {
                hash: c.hash,
                container: extent.container,
                offset: extent.offset,
                size: extent.len,
                is_hook: false,
            });
            fms[sc.file_idx].push(extent);
        }
        self.substrate.write_disk_chunk(builder)?;

        // 4. Segment manifest (every chunk, dup or not) + hook persistence
        // + sparse index update.
        let mid = self.substrate.new_manifest_id();
        let manifest = Manifest { id: mid, format: ManifestFormat::PerEntryContainer, entries };
        self.substrate.write_manifest(&manifest)?;
        self.files += 1;
        let mut seen_hooks: Vec<ChunkHash> = Vec::new();
        for e in &manifest.entries {
            if self.is_hook(&e.hash) && !seen_hooks.contains(&e.hash) {
                seen_hooks.push(e.hash);
                self.substrate.write_hook_occurrence(e.hash, mid)?;
                let mids = self.sparse_index.entry(e.hash).or_default();
                mids.insert(0, mid);
                mids.truncate(self.config.manifests_per_hook());
            }
        }
        if let Some((evicted, dirty)) = self.cache.insert(manifest, false) {
            debug_assert!(!dirty);
            if dirty {
                self.substrate.update_manifest(&evicted)?;
            }
        }
        seg.clear();
        Ok(())
    }
}

impl<B: Backend> Deduplicator for SparseIndexEngine<B> {
    fn name(&self) -> &'static str {
        "sparse-indexing"
    }

    fn process_snapshot(&mut self, snapshot: &Snapshot) -> EngineResult<()> {
        let start = Instant::now();
        let files: Vec<Bytes> = snapshot.files.iter().map(|f| f.data.clone()).collect();
        let mut fms: Vec<FileManifest> =
            snapshot.files.iter().map(|_| FileManifest::new()).collect();

        let mut seg: Vec<SegChunk> = Vec::new();
        let mut seg_bytes = 0usize;
        for (file_idx, data) in files.iter().enumerate() {
            self.input_bytes += data.len() as u64;
            for chunk in chunk_and_hash(&self.chunker, data) {
                seg_bytes += chunk.len as usize;
                seg.push(SegChunk { file_idx, chunk });
                if seg_bytes >= self.config.segment_bytes() {
                    self.flush_segment(&mut seg, &files, &mut fms)?;
                    seg_bytes = 0;
                }
            }
        }
        self.flush_segment(&mut seg, &files, &mut fms)?;
        self.slice.reset_run();

        for (file, fm) in snapshot.files.iter().zip(&fms) {
            debug_assert_eq!(fm.total_len(), file.data.len() as u64);
            self.substrate.write_file_manifest(&file.path, fm)?;
        }
        self.dedup_seconds += start.elapsed().as_secs_f64();
        Ok(())
    }

    fn finish(&mut self) -> EngineResult<DedupReport> {
        for (manifest, dirty) in self.cache.drain() {
            debug_assert!(!dirty);
            if dirty {
                self.substrate.update_manifest(&manifest)?;
            }
        }
        self.substrate.flush()?;
        Ok(DedupReport {
            algorithm: self.name().to_string(),
            input_bytes: self.input_bytes,
            dup_bytes: self.slice.dup_bytes,
            dup_slices: self.slice.slices,
            files: self.files,
            chunks_stored: self.chunks_stored,
            chunks_dup: self.slice.dup_chunks,
            hhr_count: 0,
            stats: *self.substrate.stats(),
            ledger: *self.substrate.ledger(),
            ram_index_bytes: self.sparse_index_ram_bytes(),
            dedup_seconds: self.dedup_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mhd_store::MemBackend;
    use mhd_workload::FileEntry;

    fn snapshot(prefix: &str, datas: Vec<Vec<u8>>) -> Snapshot {
        Snapshot {
            machine: 0,
            day: 0,
            files: datas
                .into_iter()
                .enumerate()
                .map(|(i, d)| FileEntry { path: format!("{prefix}/f{i}"), data: Bytes::from(d) })
                .collect(),
        }
    }

    fn random(len: usize, seed: u64) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 24) as u8
            })
            .collect()
    }

    fn engine(ecs: usize, sd: usize) -> SparseIndexEngine<MemBackend> {
        SparseIndexEngine::new(MemBackend::new(), EngineConfig::new(ecs, sd)).unwrap()
    }

    #[test]
    fn identical_stream_dedups_via_champions() {
        let mut e = engine(512, 8);
        let content = random(128 << 10, 1);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.ledger.stored_data_bytes, 128 << 10);
        assert_eq!(r.dup_bytes, 128 << 10);
        // Champions resolved from disk or from the manifest cache.
        assert!(r.stats.manifest_input + r.stats.cache_hits > 0, "champions must be consulted");
    }

    #[test]
    fn manifest_records_every_chunk_including_dups() {
        let mut e = engine(512, 8);
        let content = random(64 << 10, 2);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        let after_first = e.substrate.ledger().manifest_bytes;
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        // The second, fully-duplicate stream still grows manifests by
        // roughly the same amount (locality-preserving recording).
        let second_growth = r.ledger.manifest_bytes - after_first;
        assert!(
            second_growth * 10 >= after_first * 7,
            "second stream only grew manifests by {second_growth} vs {after_first}"
        );
    }

    #[test]
    fn sparse_index_ram_is_small_fraction_of_input() {
        let mut e = engine(512, 8);
        for day in 0..3u64 {
            e.process_snapshot(&snapshot(&format!("d{day}"), vec![random(256 << 10, day)]))
                .unwrap();
        }
        let r = e.finish().unwrap();
        assert!(r.ram_index_bytes > 0);
        // Sampled at 1/SD: a small fraction of input (paper: ~0.01%; here
        // the corpus is tiny so allow a loose bound).
        assert!(r.ram_index_bytes < r.input_bytes / 20);
    }

    #[test]
    fn hook_occurrences_accumulate_per_manifest() {
        let mut e = engine(512, 4);
        let content = random(128 << 10, 3);
        e.process_snapshot(&snapshot("a", vec![content.clone()])).unwrap();
        let hooks_after_first = e.substrate.ledger().inodes_hooks;
        e.process_snapshot(&snapshot("b", vec![content])).unwrap();
        let r = e.finish().unwrap();
        // The duplicate stream re-persists its hook occurrences (sampling
        // is over the input, not over unique data).
        assert!(r.ledger.inodes_hooks >= hooks_after_first * 2 - 2);
    }

    #[test]
    fn no_bloom_filter_in_sparse_indexing() {
        let mut e = engine(512, 8);
        e.process_snapshot(&snapshot("a", vec![random(64 << 10, 4)])).unwrap();
        let r = e.finish().unwrap();
        assert_eq!(r.stats.bloom_suppressed, 0);
        assert_eq!(r.stats.hook_input, 0, "hooks are consulted in RAM, not on disk");
    }
}
