//! A durable, resumable MHD session over a directory store.
//!
//! The store layout is the paper's four hash-addressable namespaces (via
//! [`BatchedDirBackend`]) plus a `session/` directory holding the
//! serialised engine state: `state.json` (counters, ledger and
//! watermarks), the binary sidecars `bloom.bin` / `idmaps.bin` holding
//! the O(store) payloads (see [`mhd_core::statefile`]), and `meta.json`
//! (the store's chunking parameters and stream count). All files are
//! rewritten through a tmp sibling + atomic rename, so a crash mid-close
//! leaves the previous consistent state in place. Stores written before
//! the sidecars existed inline everything in `state.json` and still
//! open.
//!
//! The same layout is shared with `mhd serve` (the `mhd-daemon` crate):
//! a stopped daemon store opens as a plain CLI session and vice versa.

use std::path::{Path, PathBuf};

use bytes::Bytes;
use mhd_chunking::ChunkerKind;
use mhd_core::{DedupReport, Deduplicator, EngineConfig, MhdEngine, MhdState};
use mhd_store::{Backend, BatchedDirBackend, IoConfig, RecoveryReport};
use mhd_workload::{FileEntry, Snapshot};
use serde::{Deserialize, Serialize};

/// Session metadata persisted beside the engine state.
#[derive(Serialize, Deserialize)]
struct SessionMeta {
    ecs: usize,
    sd: usize,
    streams: u64,
    /// Chunking algorithm the store's chunks were cut with, spelled as the
    /// CLI spelling (`rabin`, `tttd`, …). A store keeps its chunker for
    /// life: re-backing up with a different one would cut boundaries the
    /// existing chunks can never match.
    chunker: String,
}

/// The pre-chunker `meta.json` layout; deserialising it recovers stores
/// written before the chunker was persisted (those are always Rabin).
#[derive(Deserialize)]
struct LegacySessionMeta {
    ecs: usize,
    sd: usize,
    streams: u64,
}

impl SessionMeta {
    /// Parses `meta.json` bytes, accepting the legacy (chunker-less)
    /// layout and defaulting it to Rabin.
    fn parse(data: &[u8]) -> Result<Self, Box<dyn std::error::Error>> {
        if let Ok(meta) = serde_json::from_slice::<SessionMeta>(data) {
            return Ok(meta);
        }
        let legacy: LegacySessionMeta = serde_json::from_slice(data)?;
        Ok(SessionMeta {
            ecs: legacy.ecs,
            sd: legacy.sd,
            streams: legacy.streams,
            chunker: ChunkerKind::Rabin.as_str().to_string(),
        })
    }

    /// The persisted chunker, parsed back into a [`ChunkerKind`].
    fn kind(&self) -> Result<ChunkerKind, Box<dyn std::error::Error>> {
        Ok(self.chunker.parse::<ChunkerKind>().map_err(|e| e.to_string())?)
    }
}

/// An open store: engine + persisted configuration.
pub struct Session {
    engine: MhdEngine<BatchedDirBackend>,
    meta: SessionMeta,
    root: PathBuf,
    recovery: RecoveryReport,
}

/// Writes `data` to `path` through a hidden tmp sibling + atomic rename,
/// so session state files can never be observed half-written; errors name
/// the path involved.
fn write_atomic(path: &Path, data: &[u8]) -> Result<(), Box<dyn std::error::Error>> {
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| format!("{}: not a file path", path.display()))?;
    let tmp = path.with_file_name(format!(".{file_name}.tmp"));
    std::fs::write(&tmp, data).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path).map_err(|e| format!("rename to {}: {e}", path.display()))?;
    Ok(())
}

impl Session {
    fn paths(root: &Path) -> (PathBuf, PathBuf) {
        (root.join("session/state.json"), root.join("session/meta.json"))
    }

    /// Opens (or initialises) the store at `root` for backup, with default
    /// I/O tuning and the paper's base chunker (Rabin). Test convenience;
    /// the CLI always routes through [`Session::open_with`].
    #[cfg(test)]
    pub fn open(root: &Path, ecs: usize, sd: usize) -> Result<Self, Box<dyn std::error::Error>> {
        Self::open_with(root, ecs, sd, ChunkerKind::Rabin, IoConfig::default())
    }

    /// Opens (or initialises) the store at `root` for backup.
    ///
    /// `ecs`/`sd`/`chunker` apply only when the store is new; an existing
    /// store keeps its original parameters (changing the chunking of a live
    /// store would silently break deduplication against old data). `io`
    /// tunes the batched backend (worker threads, batch sizes, durability)
    /// and applies per invocation.
    ///
    /// Opening always runs the backend's crash-recovery pass first: any
    /// write that was in flight when a previous process died is rolled
    /// back before the engine reads a byte.
    pub fn open_with(
        root: &Path,
        ecs: usize,
        sd: usize,
        chunker: ChunkerKind,
        io: IoConfig,
    ) -> Result<Self, Box<dyn std::error::Error>> {
        std::fs::create_dir_all(root.join("session"))
            .map_err(|e| format!("create {}: {e}", root.join("session").display()))?;
        let (state_path, meta_path) = Self::paths(root);

        let meta: SessionMeta = if meta_path.exists() {
            let meta = SessionMeta::parse(&std::fs::read(&meta_path)?)?;
            if meta.ecs != ecs || meta.sd != sd || meta.kind()? != chunker {
                eprintln!(
                    "note: store was created with --ecs {} --sd {} --chunker {}; keeping those",
                    meta.ecs, meta.sd, meta.chunker
                );
            }
            meta
        } else {
            SessionMeta { ecs, sd, streams: 0, chunker: chunker.as_str().to_string() }
        };

        let mut backend = BatchedDirBackend::create_with(root, io)?;
        let recovery = backend.recover()?;
        if !recovery.is_clean() {
            eprintln!(
                "note: recovered store: removed {} torn tmp file(s), resolved {} write intent(s)",
                recovery.tmp_files_removed, recovery.intents_resolved
            );
        }
        let config = EngineConfig::new(meta.ecs, meta.sd).with_chunker(meta.kind()?);
        let mut engine = MhdEngine::new(backend, config)?;
        if state_path.exists() {
            let mut state: MhdState = serde_json::from_slice(&std::fs::read(&state_path)?)?;
            mhd_core::statefile::attach_sidecars(&mut state, root)?;
            engine.import_state(state)?;
        }
        Ok(Session { engine, meta, root: root.to_path_buf(), recovery })
    }

    /// What the crash-recovery pass found when this session opened.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Opens an existing store for read-only operations (no state needed
    /// for restore, but stats come from the persisted state).
    pub fn open_readonly(root: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        if !root.join("session").exists() {
            return Err(format!("{} is not an mhd store", root.display()).into());
        }
        // ecs/sd/chunker don't matter for reads; pass the stored values so
        // no spurious mismatch note is printed.
        let (_, meta_path) = Self::paths(root);
        let meta = SessionMeta::parse(&std::fs::read(meta_path)?)?;
        let kind = meta.kind()?;
        Self::open_with(root, meta.ecs, meta.sd, kind, IoConfig::default())
    }

    /// Index for the next backup stream (for default labels).
    pub fn next_stream_index(&self) -> u64 {
        self.meta.streams
    }

    /// Current total output (data + metadata) bytes.
    pub fn ledger_output_bytes(&self) -> u64 {
        self.engine.substrate().ledger().total_output_bytes()
    }

    /// Deduplicates one snapshot into the store.
    pub fn backup(&mut self, snapshot: &Snapshot) -> Result<(), Box<dyn std::error::Error>> {
        self.engine.process_snapshot(snapshot)?;
        self.meta.streams += 1;
        Ok(())
    }

    /// Flushes dirty state and persists the session.
    pub fn close(mut self) -> Result<(), Box<dyn std::error::Error>> {
        // finish() drains the cache (writing back dirty manifests); the
        // report is merely informational here.
        let _ = self.engine.finish()?;
        let (state_path, meta_path) = Self::paths(&self.root);
        // The O(store) payloads go to binary sidecars, written before the
        // slim JSON — mhd_core::statefile documents the crash ordering.
        let mut state = self.engine.export_state();
        mhd_core::statefile::detach_sidecars(&mut state, &self.root)?;
        write_atomic(&state_path, &serde_json::to_vec(&state)?)?;
        write_atomic(&meta_path, &serde_json::to_vec(&self.meta)?)?;
        // Persist this process's internal metrics so `mhd stats
        // --internals` can show what the last mutating run did.
        let snap = mhd_obs::snapshot();
        if !snap.is_empty() {
            write_atomic(
                &self.root.join("session/internals.json"),
                serde_json::to_string_pretty(&snap)?.as_bytes(),
            )?;
        }
        // Likewise the trace (when `--trace` armed it), for `mhd trace`.
        let records = mhd_obs::trace_drain();
        if !records.is_empty() {
            write_atomic(
                &self.root.join("session/trace.jsonl"),
                mhd_obs::trace_to_jsonl(&records).as_bytes(),
            )?;
        }
        Ok(())
    }

    /// The `mhd-obs` snapshot persisted by the last mutating command
    /// (`None` when no such command has run against this store).
    pub fn load_internals(&self) -> Option<mhd_obs::Snapshot> {
        let data = std::fs::read(self.root.join("session/internals.json")).ok()?;
        serde_json::from_slice(&data).ok()
    }

    /// The trace persisted by the last `backup --trace` run (`None` when
    /// no traced command has run against this store).
    pub fn load_trace(&self) -> Option<Vec<mhd_obs::TraceRecord>> {
        let data = std::fs::read_to_string(self.root.join("session/trace.jsonl")).ok()?;
        mhd_obs::trace_from_jsonl(&data).ok()
    }

    /// Restores one file by recipe name.
    pub fn restore(&mut self, name: &str) -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        Ok(mhd_core::restore::restore_file(self.engine.substrate_mut(), name)?)
    }

    /// Lists stored file recipes.
    pub fn list_files(&mut self) -> Vec<String> {
        self.engine.substrate_mut().list_file_manifests()
    }

    /// Runs the store integrity checker.
    pub fn fsck(&mut self) -> mhd_core::fsck::IntegrityReport {
        mhd_core::fsck::check_store(self.engine.substrate_mut())
    }

    /// Recomputes container content hashes (bit-rot scrub).
    pub fn scrub(&mut self) -> mhd_core::fsck::IntegrityReport {
        mhd_core::fsck::scrub(self.engine.substrate_mut())
    }

    /// Deletes every recipe starting with `prefix` and reclaims space.
    pub fn delete_stream(
        &mut self,
        prefix: &str,
    ) -> Result<mhd_core::gc::GcReport, Box<dyn std::error::Error>> {
        Ok(mhd_core::gc::delete_stream(self.engine.substrate_mut(), prefix)?)
    }

    /// Reclaims unreferenced containers.
    pub fn gc(&mut self) -> Result<mhd_core::gc::GcReport, Box<dyn std::error::Error>> {
        Ok(mhd_core::gc::collect(self.engine.substrate_mut())?)
    }

    /// Rewrites containers whose live fraction is below `threshold`.
    pub fn compact(
        &mut self,
        threshold: f64,
    ) -> Result<mhd_core::compact::CompactReport, Box<dyn std::error::Error>> {
        Ok(mhd_core::compact::compact(self.engine.substrate_mut(), threshold)?)
    }

    /// A report over everything processed so far (without finishing the
    /// session).
    pub fn report(&self) -> DedupReport {
        DedupReport {
            algorithm: "bf-mhd".into(),
            input_bytes: 0, // filled below from state
            dup_bytes: 0,
            dup_slices: 0,
            files: 0,
            chunks_stored: 0,
            chunks_dup: 0,
            hhr_count: 0,
            stats: *self.engine.substrate().stats(),
            ledger: *self.engine.substrate().ledger(),
            ram_index_bytes: 0,
            dedup_seconds: 0.0,
        }
        .with_session(&self.engine.export_state())
    }
}

trait WithSession {
    fn with_session(self, state: &MhdState) -> Self;
}

impl WithSession for DedupReport {
    fn with_session(mut self, state: &MhdState) -> Self {
        self.input_bytes = state.input_bytes;
        self.dup_bytes = state.dup_bytes;
        self.dup_slices = state.dup_slices;
        self.files = state.files;
        self.chunks_stored = state.chunks_stored;
        self.hhr_count = state.hhr_count;
        self
    }
}

/// Builds a backup stream from a real directory: files are read in sorted
/// order, paths become recipe names under `label/`.
pub fn snapshot_from_dir(dir: &Path, label: &str) -> Result<Snapshot, Box<dyn std::error::Error>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_files(dir, &mut paths)?;
    paths.sort();
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let rel = path.strip_prefix(dir).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        files.push(FileEntry {
            path: format!("{label}/{rel}"),
            data: Bytes::from(std::fs::read(&path)?),
        });
    }
    if files.is_empty() {
        return Err(format!("{} contains no files", dir.display()).into());
    }
    Ok(Snapshot { machine: 0, day: 0, files })
}

fn collect_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect_files(&path, out)?;
        } else if ty.is_file() {
            out.push(path);
        } // symlinks and specials are skipped
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn temp_root(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!("mhd-cli-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&p);
        p
    }

    fn write_tree(root: &Path, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        std::fs::create_dir_all(root.join("sub")).unwrap();
        for (name, len) in [("a.bin", 40_000usize), ("sub/b.bin", 25_000), ("c.txt", 100)] {
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            std::fs::write(root.join(name), data).unwrap();
        }
    }

    #[test]
    fn backup_restore_round_trip_with_resume() {
        let src = temp_root("src");
        let store = temp_root("store");
        write_tree(&src, 1);

        // First backup session.
        let mut s = Session::open(&store, 512, 8).unwrap();
        let snap = snapshot_from_dir(&src, "day0").unwrap();
        s.backup(&snap).unwrap();
        s.close().unwrap();

        // Second session (fresh process simulation): same content again —
        // the store must grow only marginally.
        let mut s = Session::open(&store, 512, 8).unwrap();
        let before = s.ledger_output_bytes();
        let snap2 = snapshot_from_dir(&src, "day1").unwrap();
        let input: u64 = snap2.files.iter().map(|f| f.data.len() as u64).sum();
        s.backup(&snap2).unwrap();
        s.close().unwrap();

        let mut s = Session::open_readonly(&store).unwrap();
        let growth = s.ledger_output_bytes() - before;
        assert!(
            growth < input / 5,
            "resumed session must dedup against persisted state (grew {growth} of {input})"
        );

        // Restore both days byte-exactly.
        for label in ["day0", "day1"] {
            let restored = s.restore(&format!("{label}/a.bin")).unwrap();
            assert_eq!(restored, std::fs::read(src.join("a.bin")).unwrap());
        }
        let names = s.list_files();
        assert!(names.iter().any(|n| n.contains("day0") && n.contains("c.txt")));

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn report_reflects_persisted_state() {
        let src = temp_root("src2");
        let store = temp_root("store2");
        write_tree(&src, 2);
        let mut s = Session::open(&store, 512, 8).unwrap();
        s.backup(&snapshot_from_dir(&src, "d").unwrap()).unwrap();
        s.close().unwrap();

        let s = Session::open_readonly(&store).unwrap();
        let report = s.report();
        assert!(report.input_bytes > 60_000);
        assert!(report.ledger.stored_data_bytes > 0);

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn legacy_inline_state_still_opens() {
        let src = temp_root("src3");
        let store = temp_root("store3");
        write_tree(&src, 3);
        let mut s = Session::open(&store, 512, 8).unwrap();
        s.backup(&snapshot_from_dir(&src, "day0").unwrap()).unwrap();
        s.close().unwrap();

        // Rewrite the store in the pre-sidecar format: inline the
        // payloads into state.json and delete the sidecar files.
        let state_path = store.join("session/state.json");
        let mut state: MhdState =
            serde_json::from_slice(&std::fs::read(&state_path).unwrap()).unwrap();
        mhd_core::statefile::attach_sidecars(&mut state, &store).unwrap();
        assert!(!state.bloom.is_empty(), "sidecar bloom should have loaded");
        std::fs::write(&state_path, serde_json::to_vec(&state).unwrap()).unwrap();
        std::fs::remove_file(store.join("session/bloom.bin")).unwrap();
        std::fs::remove_file(store.join("session/idmaps.bin")).unwrap();

        // The inline-format store must open and keep deduplicating.
        let mut s = Session::open(&store, 512, 8).unwrap();
        let before = s.ledger_output_bytes();
        let snap = snapshot_from_dir(&src, "day1").unwrap();
        let input: u64 = snap.files.iter().map(|f| f.data.len() as u64).sum();
        s.backup(&snap).unwrap();
        s.close().unwrap();
        let s = Session::open_readonly(&store).unwrap();
        let growth = s.ledger_output_bytes() - before;
        assert!(
            growth < input / 5,
            "legacy-format store must still dedup (grew {growth} of {input})"
        );

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn chunker_choice_persists_across_sessions() {
        let src = temp_root("src4");
        let store = temp_root("store4");
        write_tree(&src, 4);

        // Create the store with FastCDC.
        let mut s =
            Session::open_with(&store, 512, 8, ChunkerKind::FastCdc, IoConfig::default()).unwrap();
        s.backup(&snapshot_from_dir(&src, "day0").unwrap()).unwrap();
        s.close().unwrap();

        // Reopen with the Rabin default: the store must keep FastCDC and
        // still dedup the identical content.
        let mut s = Session::open(&store, 512, 8).unwrap();
        assert_eq!(s.meta.kind().unwrap(), ChunkerKind::FastCdc);
        let before = s.ledger_output_bytes();
        let snap = snapshot_from_dir(&src, "day1").unwrap();
        let input: u64 = snap.files.iter().map(|f| f.data.len() as u64).sum();
        s.backup(&snap).unwrap();
        s.close().unwrap();

        let mut s = Session::open_readonly(&store).unwrap();
        assert_eq!(s.meta.kind().unwrap(), ChunkerKind::FastCdc);
        let growth = s.ledger_output_bytes() - before;
        assert!(growth < input / 5, "re-backup must dedup (grew {growth} of {input})");
        let restored = s.restore("day1/a.bin").unwrap();
        assert_eq!(restored, std::fs::read(src.join("a.bin")).unwrap());

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn legacy_meta_without_chunker_opens_as_rabin() {
        let src = temp_root("src5");
        let store = temp_root("store5");
        write_tree(&src, 5);
        let mut s = Session::open(&store, 512, 8).unwrap();
        s.backup(&snapshot_from_dir(&src, "day0").unwrap()).unwrap();
        s.close().unwrap();

        // Rewrite meta.json in the pre-chunker layout.
        let meta_path = store.join("session/meta.json");
        let meta = SessionMeta::parse(&std::fs::read(&meta_path).unwrap()).unwrap();
        std::fs::write(
            &meta_path,
            format!("{{\"ecs\":{},\"sd\":{},\"streams\":{}}}", meta.ecs, meta.sd, meta.streams),
        )
        .unwrap();

        let s = Session::open_readonly(&store).unwrap();
        assert_eq!(s.meta.kind().unwrap(), ChunkerKind::Rabin);

        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&store).unwrap();
    }

    #[test]
    fn snapshot_from_dir_requires_files() {
        let empty = temp_root("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(snapshot_from_dir(&empty, "x").is_err());
        std::fs::remove_dir_all(&empty).unwrap();
    }
}
