//! `mhd` — deduplicate real directories with Metadata Harnessing
//! Deduplication into a durable on-disk store.
//!
//! ```text
//! mhd backup  <dir>  --store <store> [--label NAME] [--ecs N] [--sd N]
//!                    [--chunker rabin|tttd|fixed|fastcdc|ae]
//!                    [--io-threads N] [--durability none|rename|fsync] [--trace]
//! mhd restore <name> --store <store> -o <path>
//! mhd ls             --store <store>
//! mhd stats          --store <store> [--internals [--pretty]]
//! mhd trace          --store <store> [--format chrome|jsonl] [-o <path>]
//! mhd trace analyze  <file.jsonl> | --store <store>  [--json] [--buckets N]
//! mhd compare        <a.json> <b.json> [--fail-on <pct>] [--include-timings] [--json]
//! mhd fsck           --store <store> [--deep]
//! mhd serve          --store <store> --socket <path> [tuning flags]
//! mhd client <verb>  --socket <path> [--tenant T] […]
//! ```
//!
//! Each `backup` run is one backup stream (like one of the paper's daily
//! disk images); repeated runs of the same directory deduplicate against
//! everything stored before — the session state (Bloom filter, counters,
//! manifest sizes) persists next to the store and is reloaded on every
//! invocation.
//!
//! `serve` keeps one store open for many concurrent clients: each
//! `client backup` is an isolated tenant session against the shared
//! deduplicated store (see the `mhd-daemon` crate and OPERATIONS.md).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

mod daemon_cmd;
mod session;

use session::Session;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mhd backup  <dir>  --store <store> [--label NAME] [--ecs N] [--sd N]\n                     [--chunker rabin|tttd|fixed|fastcdc|ae]\n                     [--io-threads N] [--durability none|rename|fsync] [--trace]\n  mhd restore <name> --store <store> -o <path>\n  mhd ls             --store <store>\n  mhd stats          --store <store> [--internals [--pretty]]\n  mhd trace          --store <store> [--format chrome|jsonl] [-o <path>]\n  mhd trace analyze  <file.jsonl> | --store <store>  [--json] [--buckets N]\n  mhd compare        <a.json> <b.json> [--fail-on <pct>] [--include-timings] [--json]\n  mhd verify         --store <store> [--deep]\n  mhd fsck           --store <store> [--deep]   (crash recovery + verify)\n  mhd rm <prefix>    --store <store>   (delete recipes, then gc)\n  mhd gc             --store <store>\n  mhd compact        --store <store> [--threshold 0.7]\n  mhd serve          --store <store> --socket <path> [--ecs N] [--sd N]\n                     [--chunker rabin|tttd|fixed|fastcdc|ae]\n                     [--io-threads N] [--durability none|rename|fsync] [--shards N]\n  mhd client backup <dir>   --socket <path> --tenant T [--label NAME]\n  mhd client restore <name> --socket <path> --tenant T -o <path>\n  mhd client ls             --socket <path> --tenant T\n  mhd client gc|fsck|stats|ping|shutdown   --socket <path>"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    let result = match command.as_str() {
        "backup" => cmd_backup(&args[1..]),
        "restore" => cmd_restore(&args[1..]),
        "ls" => cmd_ls(&args[1..]),
        "stats" => cmd_stats(&args[1..]),
        "trace" if args.get(1).is_some_and(|a| a == "analyze") => cmd_trace_analyze(&args[2..]),
        "trace" => cmd_trace(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        "fsck" => cmd_fsck(&args[1..]),
        "rm" => cmd_rm(&args[1..]),
        "gc" => cmd_gc(&args[1..]),
        "compact" => cmd_compact(&args[1..]),
        "serve" => daemon_cmd::cmd_serve(&args[1..]),
        "client" => daemon_cmd::cmd_client(&args[1..]),
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage()
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("mhd: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn store_path(args: &[String]) -> Result<PathBuf, Box<dyn std::error::Error>> {
    flag_value(args, "--store").map(PathBuf::from).ok_or_else(|| "--store is required".into())
}

/// Builds the batched-backend tuning from `--io-threads` / `--durability`.
fn io_config(args: &[String]) -> Result<mhd_store::IoConfig, Box<dyn std::error::Error>> {
    let mut io = mhd_store::IoConfig::default();
    if let Some(threads) = flag_value(args, "--io-threads") {
        io.threads = threads.parse()?;
    }
    if let Some(level) = flag_value(args, "--durability") {
        io.durability = mhd_store::Durability::parse(&level)
            .ok_or_else(|| format!("unknown durability level {level:?} (none|rename|fsync)"))?;
    }
    Ok(io)
}

fn cmd_backup(args: &[String]) -> CliResult {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("backup needs a source directory".into());
    };
    let store = store_path(args)?;
    let ecs = flag_value(args, "--ecs").map(|v| v.parse()).transpose()?.unwrap_or(4096);
    let sd = flag_value(args, "--sd").map(|v| v.parse()).transpose()?.unwrap_or(16);
    let chunker = flag_value(args, "--chunker")
        .map(|v| v.parse::<mhd_chunking::ChunkerKind>())
        .transpose()
        .map_err(|e| e.to_string())?
        .unwrap_or_default();
    let label = flag_value(args, "--label").unwrap_or_else(|| {
        // Default label: one per invocation, numbered from existing state.
        String::from("snapshot")
    });

    if args.iter().any(|a| a == "--trace") {
        mhd_obs::trace_start(mhd_obs::DEFAULT_TRACE_CAPACITY);
    }

    let mut session = Session::open_with(&store, ecs, sd, chunker, io_config(args)?)?;
    let stream = session.next_stream_index();
    let snapshot = session::snapshot_from_dir(Path::new(dir), &format!("{label}-{stream}"))?;
    let files = snapshot.files.len();
    let bytes: u64 = snapshot.files.iter().map(|f| f.data.len() as u64).sum();

    let before = session.ledger_output_bytes();
    {
        let _scope = mhd_obs::scope!("cmd=backup");
        let _stage = mhd_obs::stage("backup");
        session.backup(&snapshot)?;
    }
    let after = session.ledger_output_bytes();
    session.close()?;

    println!(
        "backed up {files} files ({bytes} B) as {label}-{stream}: store grew by {} B ({:.1}% of input)",
        after - before,
        (after - before) as f64 / bytes.max(1) as f64 * 100.0
    );
    Ok(())
}

fn cmd_restore(args: &[String]) -> CliResult {
    let Some(name) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("restore needs a file-manifest name (see `mhd ls`)".into());
    };
    let store = store_path(args)?;
    let out = flag_value(args, "-o").or_else(|| flag_value(args, "--output"));
    let Some(out) = out else { return Err("-o <path> is required".into()) };

    let mut session = Session::open_readonly(&store)?;
    let data = session.restore(name)?;
    if let Some(parent) = Path::new(&out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(&out, &data)?;
    println!("restored {name} -> {out} ({} B)", data.len());
    Ok(())
}

fn cmd_ls(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let mut session = Session::open_readonly(&store)?;
    for name in session.list_files() {
        println!("{name}");
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let deep = args.iter().any(|a| a == "--deep");
    let mut session = Session::open_readonly(&store)?;
    let mut report = session.fsck();
    println!(
        "checked {} manifests ({} entries), {} hooks, {} file recipes",
        report.manifests, report.entries, report.hooks, report.file_manifests
    );
    if deep {
        let scrub = session.scrub();
        println!("scrubbed container content hashes");
        report.problems.extend(scrub.problems);
    }
    if report.is_healthy() {
        println!("store is healthy");
        Ok(())
    } else {
        for p in &report.problems {
            eprintln!("PROBLEM: {p}");
        }
        Err(format!("{} integrity problems found", report.problems.len()).into())
    }
}

/// `mhd fsck`: crash recovery plus the integrity walk. Opening the session
/// runs the backend's recovery pass (rolling back torn tmp files and
/// resolving write-ahead intents from an interrupted run); this command
/// reports what that pass found, then verifies every structural invariant.
fn cmd_fsck(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let deep = args.iter().any(|a| a == "--deep");
    let mut session = Session::open_readonly(&store)?;
    let recovery = session.recovery_report().clone();
    if recovery.is_clean() {
        println!("recovery: store was clean (no interrupted writes)");
    } else {
        println!(
            "recovery: removed {} torn tmp file(s), resolved {} write intent(s)",
            recovery.tmp_files_removed, recovery.intents_resolved
        );
    }
    let mut report = session.fsck();
    println!(
        "checked {} manifests ({} entries), {} hooks, {} file recipes",
        report.manifests, report.entries, report.hooks, report.file_manifests
    );
    if deep {
        let scrub = session.scrub();
        println!("scrubbed container content hashes");
        report.problems.extend(scrub.problems);
    }
    if report.is_healthy() {
        println!("store is consistent");
        Ok(())
    } else {
        for p in &report.problems {
            eprintln!("PROBLEM: {p}");
        }
        Err(format!("{} integrity problems found", report.problems.len()).into())
    }
}

fn cmd_rm(args: &[String]) -> CliResult {
    let Some(prefix) = args.first().filter(|a| !a.starts_with("--")) else {
        return Err("rm needs a recipe-name prefix (see `mhd ls`)".into());
    };
    let store = store_path(args)?;
    let mut session = Session::open_readonly(&store)?;
    let report = session.delete_stream(prefix)?;
    session.close()?;
    println!(
        "deleted {} recipes; reclaimed {} containers ({} B), {} manifests, {} hooks; {} containers live",
        report.recipes_deleted,
        report.containers_deleted,
        report.data_bytes_freed,
        report.manifests_deleted,
        report.hooks_deleted,
        report.containers_live,
    );
    Ok(())
}

fn cmd_gc(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let mut session = Session::open_readonly(&store)?;
    let report = session.gc()?;
    session.close()?;
    println!(
        "reclaimed {} containers ({} B), {} manifests, {} hooks; {} containers live",
        report.containers_deleted,
        report.data_bytes_freed,
        report.manifests_deleted,
        report.hooks_deleted,
        report.containers_live,
    );
    Ok(())
}

fn cmd_compact(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let threshold: f64 =
        flag_value(args, "--threshold").map(|v| v.parse()).transpose()?.unwrap_or(0.7);
    let mut session = Session::open_readonly(&store)?;
    let report = session.compact(threshold)?;
    session.close()?;
    println!(
        "compacted {} containers, reclaimed {} B, re-targeted {} extents ({} skipped)",
        report.containers_compacted,
        report.bytes_reclaimed,
        report.extents_rewritten,
        report.containers_skipped,
    );
    Ok(())
}

/// `mhd stats --internals`: dump the `mhd-obs` metrics snapshot persisted
/// by the last mutating command (backup/rm/gc/compact) as JSON, or as
/// aligned human-readable tables with `--pretty`. Metrics are
/// process-local, so a read-only `stats` invocation has none of its own —
/// the persisted snapshot is the interesting one.
fn print_internals(session: &Session, pretty: bool) -> CliResult {
    let Some(snapshot) = session.load_internals() else {
        return Err(
            "no internals snapshot in this store yet; run a mutating command (e.g. `mhd backup`) first"
                .into(),
        );
    };
    if pretty {
        print_snapshot_tables(&snapshot, "");
        for (label, sub) in &snapshot.scopes {
            println!("\nscope {label}");
            print_snapshot_tables(sub, "  ");
        }
    } else {
        println!("{}", serde_json::to_string_pretty(&snapshot)?);
    }
    Ok(())
}

/// Prints one snapshot section (counters, then histograms with
/// bucket-estimated percentiles) as aligned tables.
fn print_snapshot_tables(snap: &mhd_obs::Snapshot, indent: &str) {
    if !snap.counters.is_empty() {
        let width = snap.counters.iter().map(|c| c.name.len()).max().unwrap_or(0);
        println!("{indent}counters:");
        for c in &snap.counters {
            println!("{indent}  {:<width$}  {:>14}", c.name, c.value);
        }
    }
    if !snap.histograms.is_empty() {
        let width =
            snap.histograms.iter().map(|h| h.name.len()).max().unwrap_or(0).max("name".len());
        println!("{indent}histograms:");
        println!(
            "{indent}  {:<width$}  {:>10} {:>14} {:>12} {:>12} {:>12} {:>12} {:>14}",
            "name", "count", "mean", "p50", "p90", "p99", "min", "max"
        );
        for h in &snap.histograms {
            println!(
                "{indent}  {:<width$}  {:>10} {:>14.1} {:>12.1} {:>12.1} {:>12.1} {:>12} {:>14}",
                h.name,
                h.count,
                h.mean(),
                h.p50(),
                h.p90(),
                h.p99(),
                h.min,
                h.max
            );
        }
    }
    if snap.counters.is_empty() && snap.histograms.is_empty() {
        println!("{indent}(no metrics)");
    }
}

/// `mhd trace`: export the trace persisted by the last `backup --trace`
/// run, as Chrome `trace_event` JSON (default; loadable in
/// `about:tracing`/Perfetto) or as the raw JSONL.
fn cmd_trace(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let format = flag_value(args, "--format").unwrap_or_else(|| "chrome".to_string());
    let out = flag_value(args, "-o").or_else(|| flag_value(args, "--output"));
    let session = Session::open_readonly(&store)?;
    let Some(records) = session.load_trace() else {
        return Err("no trace in this store yet; run `mhd backup <dir> --trace` first".into());
    };
    let rendered = match format.as_str() {
        "chrome" => mhd_obs::trace_to_chrome(&records),
        "jsonl" => mhd_obs::trace_to_jsonl(&records),
        other => return Err(format!("unknown trace format {other:?} (chrome|jsonl)").into()),
    };
    match out {
        Some(path) => {
            std::fs::write(&path, &rendered)?;
            println!("wrote {} trace events ({format}) to {path}", records.len());
        }
        None => {
            print!("{rendered}");
            if !rendered.ends_with('\n') {
                println!();
            }
        }
    }
    Ok(())
}

/// `mhd trace analyze`: derive per-stage wall time, thread utilization,
/// stage overlap, stall intervals and event-rate timelines from a JSONL
/// trace file (or the trace persisted in a store). Parsing is lenient —
/// blank and garbage lines are skipped with a warning, and truncated
/// traces (ring drops, guards outliving `trace_stop`) are reported, not
/// fatal.
fn cmd_trace_analyze(args: &[String]) -> CliResult {
    let records = match args.first().filter(|a| !a.starts_with("--")) {
        Some(file) => {
            let input =
                std::fs::read_to_string(file).map_err(|e| format!("read trace {file}: {e}"))?;
            let (records, skipped) = mhd_obs::trace_from_jsonl_lossy(&input);
            if skipped > 0 {
                eprintln!("warning: skipped {skipped} unparseable line(s) in {file}");
            }
            records
        }
        None => {
            let store = store_path(args).map_err(|_| {
                "trace analyze needs a <file.jsonl> argument or --store <store>".to_string()
            })?;
            let session = Session::open_readonly(&store)?;
            session.load_trace().ok_or_else(|| {
                "no trace in this store yet; run `mhd backup <dir> --trace` first".to_string()
            })?
        }
    };
    let mut opts = mhd_obs::analysis::AnalyzeOptions::default();
    if let Some(buckets) = flag_value(args, "--buckets") {
        opts.rate_buckets = buckets.parse()?;
    }
    let analysis = mhd_obs::analysis::analyze(&records, &opts);
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&analysis)?);
    } else {
        print!("{}", analysis.render());
    }
    Ok(())
}

/// `mhd compare`: align two `--internals` snapshots (counters, histograms
/// and per-scope sub-snapshots) and report every drifted metric facet.
/// Exits nonzero when any aligned facet moved past the threshold, so CI
/// can gate on it.
fn cmd_compare(args: &[String]) -> CliResult {
    let positional: Vec<&String> = {
        // Skip flag values so `--fail-on 5 a.json b.json` parses too.
        let mut out = Vec::new();
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--fail-on" || arg == "--store" {
                iter.next();
            } else if !arg.starts_with("--") {
                out.push(arg);
            }
        }
        out
    };
    let [base_path, new_path] = positional.as_slice() else {
        return Err("compare needs two internals JSON files: mhd compare <a.json> <b.json>".into());
    };
    let load = |path: &str| -> Result<mhd_obs::Snapshot, Box<dyn std::error::Error>> {
        let data =
            std::fs::read_to_string(path).map_err(|e| format!("read snapshot {path}: {e}"))?;
        serde_json::from_str(&data).map_err(|e| format!("parse snapshot {path}: {e}").into())
    };
    let base = load(base_path)?;
    let new = load(new_path)?;
    let mut opts = mhd_obs::compare::CompareOptions {
        include_timings: args.iter().any(|a| a == "--include-timings"),
        ..Default::default()
    };
    if let Some(pct) = flag_value(args, "--fail-on") {
        opts.fail_pct = pct.parse()?;
    }
    let report = mhd_obs::compare::compare_snapshots(&base, &new, &opts);
    if args.iter().any(|a| a == "--json") {
        println!("{}", serde_json::to_string_pretty(&report)?);
    } else {
        print!("{}", report.render());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!(
            "{} metric facet(s) regressed past {}% ({} vs {})",
            report.regressions, opts.fail_pct, base_path, new_path
        )
        .into())
    }
}

fn cmd_stats(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let session = Session::open_readonly(&store)?;
    if args.iter().any(|a| a == "--internals") {
        return print_internals(&session, args.iter().any(|a| a == "--pretty"));
    }
    let report = session.report();
    println!("input bytes:      {}", report.input_bytes);
    println!("stored data:      {}", report.ledger.stored_data_bytes);
    println!("duplicate bytes:  {} in {} slices", report.dup_bytes, report.dup_slices);
    println!("metadata bytes:   {}", report.ledger.total_metadata_bytes());
    println!(
        "  hooks:          {} ({} inodes)",
        report.ledger.hook_bytes, report.ledger.inodes_hooks
    );
    println!(
        "  manifests:      {} ({} inodes)",
        report.ledger.manifest_bytes, report.ledger.inodes_manifests
    );
    println!(
        "  file recipes:   {} ({} inodes)",
        report.ledger.file_manifest_bytes, report.ledger.inodes_file_manifests
    );
    println!("HHR re-chunks:    {}", report.hhr_count);
    if report.input_bytes > 0 {
        println!(
            "data-only DER:    {:.3}",
            report.input_bytes as f64 / report.ledger.stored_data_bytes.max(1) as f64
        );
        println!(
            "real DER:         {:.3}",
            report.input_bytes as f64 / report.ledger.total_output_bytes().max(1) as f64
        );
    }
    Ok(())
}
