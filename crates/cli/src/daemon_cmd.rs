//! The `mhd serve` and `mhd client` subcommands: a thin driver over
//! [`mhd_daemon`].
//!
//! `serve` runs the multi-tenant daemon in the foreground until a client
//! sends `SHUTDOWN` (see OPERATIONS.md for the operator runbook).
//! `client` speaks the line protocol over the daemon's Unix socket:
//!
//! ```text
//! mhd serve            --store <store> --socket <path> [--ecs N] [--sd N]
//!                      [--chunker rabin|tttd|fixed|fastcdc|ae]
//!                      [--io-threads N] [--durability none|rename|fsync] [--shards N]
//! mhd client backup <dir>     --socket <path> --tenant T [--label NAME]
//! mhd client restore <name>   --socket <path> --tenant T -o <path>
//! mhd client ls               --socket <path> --tenant T
//! mhd client gc|fsck|stats|ping|shutdown   --socket <path>
//! ```

use std::path::{Path, PathBuf};

use mhd_daemon::{Client, Daemon, DaemonConfig};

use crate::{flag_value, io_config, store_path, CliResult};

fn socket_path(args: &[String]) -> Result<PathBuf, Box<dyn std::error::Error>> {
    flag_value(args, "--socket").map(PathBuf::from).ok_or_else(|| "--socket is required".into())
}

/// `mhd serve`: open the shared store and serve it on a Unix socket
/// until a client sends `SHUTDOWN`.
pub fn cmd_serve(args: &[String]) -> CliResult {
    let store = store_path(args)?;
    let socket = socket_path(args)?;
    let mut config = DaemonConfig { io: io_config(args)?, ..DaemonConfig::default() };
    if let Some(ecs) = flag_value(args, "--ecs") {
        config.ecs = ecs.parse()?;
    }
    if let Some(sd) = flag_value(args, "--sd") {
        config.sd = sd.parse()?;
    }
    if let Some(chunker) = flag_value(args, "--chunker") {
        config.chunker = chunker.parse::<mhd_chunking::ChunkerKind>().map_err(|e| e.to_string())?;
    }
    if let Some(shards) = flag_value(args, "--shards") {
        config.index_shards = shards.parse()?;
    }

    let daemon = Daemon::open(&store, config)?;
    let recovery = daemon.store().recovery().clone();
    if recovery.is_clean() {
        eprintln!("serve: store {} is clean", store.display());
    } else {
        eprintln!(
            "serve: recovered store {}: rolled back {} torn session(s) \
             ({} recipes, {} chunks, {} manifests, {} hooks)",
            store.display(),
            recovery.sessions_rolled_back,
            recovery.recipes_rolled_back,
            recovery.chunks_rolled_back,
            recovery.manifests_rolled_back,
            recovery.hooks_rolled_back,
        );
    }
    eprintln!("serve: listening on {}", socket.display());
    daemon.serve(&socket)?;
    eprintln!("serve: shut down cleanly");
    Ok(())
}

fn tenant_arg(args: &[String]) -> Result<String, Box<dyn std::error::Error>> {
    flag_value(args, "--tenant").ok_or_else(|| "--tenant is required".into())
}

/// `mhd client <verb>`: one protocol interaction per invocation.
pub fn cmd_client(args: &[String]) -> CliResult {
    let Some(verb) = args.first() else {
        return Err("client needs a verb: backup|restore|ls|gc|fsck|stats|ping|shutdown".into());
    };
    let rest = &args[1..];
    let mut client = Client::connect(&socket_path(rest)?)?;
    match verb.as_str() {
        "backup" => {
            let Some(dir) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("client backup needs a source directory".into());
            };
            client.open(&tenant_arg(rest)?)?;
            let label = flag_value(rest, "--label").unwrap_or_else(|| "snapshot".to_string());
            let summary = client.backup_dir(Path::new(dir), &label)?;
            println!(
                "committed {} files ({} B) as {label}: store grew by {} B ({:.1}% of input)",
                summary.files,
                summary.input_bytes,
                summary.grown_bytes,
                summary.grown_bytes as f64 / summary.input_bytes.max(1) as f64 * 100.0
            );
        }
        "restore" => {
            let Some(name) = rest.first().filter(|a| !a.starts_with("--")) else {
                return Err("client restore needs a recipe name (see `mhd client ls`)".into());
            };
            let out = flag_value(rest, "-o")
                .or_else(|| flag_value(rest, "--output"))
                .ok_or("-o <path> is required")?;
            client.open(&tenant_arg(rest)?)?;
            let data = client.restore(name)?;
            if let Some(parent) = Path::new(&out).parent() {
                if !parent.as_os_str().is_empty() {
                    std::fs::create_dir_all(parent)?;
                }
            }
            std::fs::write(&out, &data)?;
            println!("restored {name} -> {out} ({} B)", data.len());
        }
        "ls" => {
            client.open(&tenant_arg(rest)?)?;
            for name in client.ls()? {
                println!("{name}");
            }
        }
        "gc" => {
            let reply = client.gc()?;
            println!("gc: {reply} (deleted / protected / bytes freed)");
        }
        "fsck" => {
            let reply = client.fsck()?;
            println!("fsck: {reply}");
        }
        "stats" => println!("{}", client.stats()?),
        "ping" => {
            client.ping()?;
            println!("pong");
        }
        "shutdown" => {
            client.shutdown()?;
            println!("daemon is shutting down");
        }
        other => return Err(format!("unknown client verb {other:?}").into()),
    }
    Ok(())
}
