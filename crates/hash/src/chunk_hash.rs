//! The universal 160-bit content identifier.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// Length in bytes of a [`ChunkHash`] (SHA-1 digest size).
pub const HASH_LEN: usize = 20;

/// A 160-bit SHA-1 digest identifying a chunk, DiskChunk, Manifest, or Hook.
///
/// Every piece of metadata in the paper's system is keyed by one of these:
/// Manifest entries carry one per data block, Hooks *are* sampled hash
/// values, and DiskChunk/Manifest files are hash-addressable. The type is
/// `Copy` (20 bytes), ordered (so it can key B-tree-style structures and be
/// sorted deterministically in reports), and hashes cheaply into the
/// in-memory indexes by reusing its own leading bytes (the digest is already
/// uniformly distributed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ChunkHash([u8; HASH_LEN]);

impl ChunkHash {
    /// The all-zero digest; used as a sentinel/placeholder, never produced
    /// by SHA-1 in practice.
    pub const ZERO: ChunkHash = ChunkHash([0u8; HASH_LEN]);

    /// Wraps raw digest bytes.
    pub const fn from_bytes(bytes: [u8; HASH_LEN]) -> Self {
        ChunkHash(bytes)
    }

    /// Returns the raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; HASH_LEN] {
        &self.0
    }

    /// Lowercase hex rendering (40 characters).
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(HASH_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
            s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
        }
        s
    }

    /// Parses a 40-character hex string.
    pub fn from_hex(s: &str) -> Result<Self, ParseHashError> {
        if s.len() != HASH_LEN * 2 {
            return Err(ParseHashError::BadLength(s.len()));
        }
        let mut out = [0u8; HASH_LEN];
        for (i, byte) in out.iter_mut().enumerate() {
            let hi = hex_val(s.as_bytes()[i * 2])?;
            let lo = hex_val(s.as_bytes()[i * 2 + 1])?;
            *byte = (hi << 4) | lo;
        }
        Ok(ChunkHash(out))
    }

    /// First 8 bytes of the digest as a little-endian `u64`.
    ///
    /// SHA-1 output is uniform, so this prefix is itself a high-quality
    /// 64-bit hash; the Bloom filter and sparse-index sampling both key off
    /// it rather than re-hashing 20 bytes.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("8-byte prefix"))
    }

    /// Second 8 bytes as a `u64`; independent of [`Self::prefix_u64`] for
    /// double-hashing schemes.
    pub fn second_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[8..16].try_into().expect("8-byte slice"))
    }

    /// Short human-readable form (first 4 bytes in hex) for logs and tables.
    pub fn short(&self) -> String {
        self.to_hex()[..8].to_string()
    }
}

fn hex_val(c: u8) -> Result<u8, ParseHashError> {
    match c {
        b'0'..=b'9' => Ok(c - b'0'),
        b'a'..=b'f' => Ok(c - b'a' + 10),
        b'A'..=b'F' => Ok(c - b'A' + 10),
        other => Err(ParseHashError::BadDigit(other as char)),
    }
}

/// Error parsing a [`ChunkHash`] from hex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseHashError {
    /// Input was not exactly 40 characters.
    BadLength(usize),
    /// Input contained a non-hex character.
    BadDigit(char),
}

impl fmt::Display for ParseHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseHashError::BadLength(n) => write!(f, "expected 40 hex chars, got {n}"),
            ParseHashError::BadDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for ParseHashError {}

impl FromStr for ChunkHash {
    type Err = ParseHashError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChunkHash::from_hex(s)
    }
}

impl fmt::Debug for ChunkHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChunkHash({})", self.to_hex())
    }
}

impl fmt::Display for ChunkHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

// The digest is already uniform: feed the prefix straight to the hasher
// instead of hashing all 20 bytes through the generic path.
impl Hash for ChunkHash {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.prefix_u64());
    }
}

impl Serialize for ChunkHash {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_hex())
    }
}

impl<'de> Deserialize<'de> for ChunkHash {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        ChunkHash::from_hex(&s).map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1;
    use proptest::prelude::*;

    #[test]
    fn hex_round_trip() {
        let h = sha1(b"round trip");
        assert_eq!(ChunkHash::from_hex(&h.to_hex()).unwrap(), h);
    }

    #[test]
    fn hex_rejects_bad_input() {
        assert_eq!(ChunkHash::from_hex("abc"), Err(ParseHashError::BadLength(3)));
        let bad = "zz".repeat(20);
        assert!(matches!(ChunkHash::from_hex(&bad), Err(ParseHashError::BadDigit('z'))));
    }

    #[test]
    fn ordering_is_bytewise() {
        let a = ChunkHash::from_bytes([0u8; 20]);
        let mut b_bytes = [0u8; 20];
        b_bytes[19] = 1;
        let b = ChunkHash::from_bytes(b_bytes);
        assert!(a < b);
    }

    #[test]
    fn prefix_words_differ() {
        let h = sha1(b"prefix words");
        assert_ne!(h.prefix_u64(), h.second_u64());
    }

    #[test]
    fn short_form_is_prefix_of_hex() {
        let h = sha1(b"short");
        assert!(h.to_hex().starts_with(&h.short()));
        assert_eq!(h.short().len(), 8);
    }

    #[test]
    fn serde_json_round_trip() {
        let h = sha1(b"serde");
        let json = serde_json::to_string(&h).unwrap();
        assert_eq!(json, format!("\"{}\"", h.to_hex()));
        let back: ChunkHash = serde_json::from_str(&json).unwrap();
        assert_eq!(back, h);
    }

    proptest! {
        #[test]
        fn prop_hex_round_trip(bytes in prop::array::uniform20(any::<u8>())) {
            let h = ChunkHash::from_bytes(bytes);
            prop_assert_eq!(ChunkHash::from_hex(&h.to_hex()).unwrap(), h);
        }

        #[test]
        fn prop_display_matches_hex(bytes in prop::array::uniform20(any::<u8>())) {
            let h = ChunkHash::from_bytes(bytes);
            prop_assert_eq!(format!("{h}"), h.to_hex());
        }
    }
}
