//! A from-scratch implementation of the SHA-1 message digest (FIPS 180-1).
//!
//! The offline crate set available to this workspace has no SHA
//! implementation, and the paper's whole metadata format is built around
//! 20-byte SHA-1 values, so we implement the algorithm directly. The
//! implementation is the standard 80-round compression function with the
//! message schedule computed in-place over a 16-word ring, which keeps the
//! working set inside one cache line pair and is comfortably fast enough for
//! the simulation workloads in this repository (hundreds of MB/s on a
//! laptop-class core).

use crate::ChunkHash;

const H0: [u32; 5] = [0x6745_2301, 0xEFCD_AB89, 0x98BA_DCFE, 0x1032_5476, 0xC3D2_E1F0];

/// Streaming SHA-1 hasher.
///
/// ```
/// use mhd_hash::Sha1;
/// let mut h = Sha1::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "a9993e364706816aba3e25717850c26c9cd0d89d"
/// );
/// ```
#[derive(Clone)]
pub struct Sha1 {
    state: [u32; 5],
    /// Total message length in bytes.
    len: u64,
    /// Partial block buffer.
    buf: [u8; 64],
    /// Number of valid bytes in `buf` (always < 64 between calls).
    buf_len: usize,
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha1").field("len", &self.len).finish_non_exhaustive()
    }
}

impl Sha1 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha1 { state: H0, len: 0, buf: [0u8; 64], buf_len: 0 }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.len = self.len.wrapping_add(data.len() as u64);
        let mut input = data;

        // Top up a partial block first.
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            } else {
                // Block still partial: all input was consumed by the top-up.
                debug_assert!(input.is_empty());
                return;
            }
        }

        // Whole blocks straight from the input.
        let mut chunks = input.chunks_exact(64);
        for block in &mut chunks {
            compress(&mut self.state, block.try_into().expect("chunks_exact(64)"));
        }

        // Stash the tail.
        let rem = chunks.remainder();
        self.buf[..rem.len()].copy_from_slice(rem);
        self.buf_len = rem.len();
    }

    /// Number of bytes absorbed so far.
    pub fn message_len(&self) -> u64 {
        self.len
    }

    /// Consumes the hasher and returns the 160-bit digest.
    pub fn finalize(mut self) -> ChunkHash {
        let bit_len = self.len.wrapping_mul(8);

        // Padding: 0x80, zeros, 64-bit big-endian bit length.
        self.raw_update(&[0x80]);
        while self.buf_len != 56 {
            self.raw_update(&[0]);
        }
        self.raw_update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);

        let mut out = [0u8; 20];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        ChunkHash::from_bytes(out)
    }

    /// `update` without advancing the message length (used for padding).
    fn raw_update(&mut self, data: &[u8]) {
        for &b in data {
            self.buf[self.buf_len] = b;
            self.buf_len += 1;
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
        }
    }
}

/// One-shot convenience wrapper: `sha1(data)` == update-then-finalize.
pub fn sha1(data: &[u8]) -> ChunkHash {
    let mut h = Sha1::new();
    h.update(data);
    h.finalize()
}

/// The SHA-1 compression function over a single 64-byte block.
///
/// Uses the classic trick of keeping the 80-entry message schedule in a
/// 16-word ring (`w[t & 15]`), since `W[t]` only depends on `W[t-3]`,
/// `W[t-8]`, `W[t-14]`, and `W[t-16]`.
fn compress(state: &mut [u32; 5], block: &[u8; 64]) {
    let mut w = [0u32; 16];
    for (i, word) in w.iter_mut().enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4-byte word"));
    }

    let [mut a, mut b, mut c, mut d, mut e] = *state;

    macro_rules! round {
        ($t:expr, $f:expr, $k:expr) => {{
            let t = $t;
            let wt = if t < 16 {
                w[t]
            } else {
                let x = (w[(t + 13) & 15] ^ w[(t + 8) & 15] ^ w[(t + 2) & 15] ^ w[t & 15])
                    .rotate_left(1);
                w[t & 15] = x;
                x
            };
            let tmp =
                a.rotate_left(5).wrapping_add($f).wrapping_add(e).wrapping_add($k).wrapping_add(wt);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }};
    }

    for t in 0..20 {
        round!(t, (b & c) | ((!b) & d), 0x5A82_7999);
    }
    for t in 20..40 {
        round!(t, b ^ c ^ d, 0x6ED9_EBA1);
    }
    for t in 40..60 {
        round!(t, (b & c) | (b & d) | (c & d), 0x8F1B_BCDC);
    }
    for t in 60..80 {
        round!(t, b ^ c ^ d, 0xCA62_C1D6);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-1 Appendix A/B vectors plus a few well-known digests.
    #[test]
    fn fips_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "84983e441c3bd26ebaae4aa1f95129e5e54670f1",
            ),
            (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
            (
                b"The quick brown fox jumps over the lazy dog",
                "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12",
            ),
            (
                b"The quick brown fox jumps over the lazy cog",
                "de9f2c7fd25e1b3afad3e85a0bd17d9b100db4b3",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(sha1(input).to_hex(), *expect, "input {:?}", input);
        }
    }

    #[test]
    fn million_a() {
        // FIPS 180-1 Appendix C: one million repetitions of "a".
        let mut h = Sha1::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(h.finalize().to_hex(), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
    }

    #[test]
    fn streaming_equals_oneshot_at_every_split() {
        let data: Vec<u8> = (0u32..300).map(|i| (i * 7 + 3) as u8).collect();
        let whole = sha1(&data);
        for split in 0..data.len() {
            let mut h = Sha1::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn multi_way_split_with_empty_updates() {
        let data = vec![0xABu8; 197];
        let mut h = Sha1::new();
        h.update(&[]);
        for chunk in data.chunks(13) {
            h.update(chunk);
            h.update(&[]);
        }
        assert_eq!(h.finalize(), sha1(&data));
    }

    #[test]
    fn message_len_tracks_bytes() {
        let mut h = Sha1::new();
        h.update(&[0u8; 100]);
        h.update(&[0u8; 28]);
        assert_eq!(h.message_len(), 128);
    }

    #[test]
    fn lengths_around_block_boundary() {
        // Exercise padding for every interesting length near 64 and 128.
        for len in (0..=130).chain([1000, 4096]) {
            let data = vec![0x5Cu8; len];
            let mut h = Sha1::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(h.finalize(), sha1(&data), "len {len}");
        }
    }
}
