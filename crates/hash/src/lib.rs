//! Content hashing primitives for the `mhd-dedup` workspace.
//!
//! The paper (Zhou & Wen, ICPP 2013) identifies every data block by a
//! SHA-1 digest; Hooks, Manifest entries, and DiskChunk names are all
//! 160-bit hash values. This crate provides:
//!
//! * [`Sha1`] — a from-scratch, dependency-free implementation of
//!   FIPS 180-1 SHA-1 with a streaming interface,
//! * [`ChunkHash`] — a compact, `Copy`, ordered 160-bit digest newtype used
//!   as the universal identifier throughout the workspace,
//! * [`FxHasher64`] / [`FxHashMap`] / [`FxHashSet`] — a fast, non-DoS-hardened
//!   hasher for hot in-memory index structures (the deduplication indexes
//!   are keyed by already-uniform SHA-1 bytes, so SipHash would be wasted
//!   work), and
//! * [`HashReader`] — an adapter that digests everything read through it.
//!
//! SHA-1 is used here as a *content identifier*, exactly as in the paper and
//! in contemporaneous systems (Venti, LBFS, Data Domain, Sparse Indexing).
//! It is not used for any security purpose.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chunk_hash;
mod fx;
mod reader;
mod sha1;

pub use chunk_hash::{ChunkHash, ParseHashError, HASH_LEN};
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher64};
pub use reader::HashReader;
pub use sha1::{sha1, Sha1};
