//! A `Read` adapter that digests everything flowing through it.

use std::io::Read;

use crate::{ChunkHash, Sha1};

/// Wraps any [`Read`] and computes the SHA-1 of all bytes read through it.
///
/// Used by the storage substrate to compute DiskChunk content addresses
/// while streaming data to the backend, without a second pass.
pub struct HashReader<R> {
    inner: R,
    hasher: Sha1,
}

impl<R: Read> HashReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        HashReader { inner, hasher: Sha1::new() }
    }

    /// Bytes read so far.
    pub fn bytes_read(&self) -> u64 {
        self.hasher.message_len()
    }

    /// Consumes the adapter, returning the digest of everything read and the
    /// inner reader.
    pub fn finalize(self) -> (ChunkHash, R) {
        (self.hasher.finalize(), self.inner)
    }
}

impl<R: Read> Read for HashReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hasher.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1;
    use std::io::Read;

    #[test]
    fn digest_matches_oneshot() {
        let data = vec![7u8; 10_000];
        let mut r = HashReader::new(&data[..]);
        let mut sink = Vec::new();
        r.read_to_end(&mut sink).unwrap();
        assert_eq!(sink, data);
        assert_eq!(r.bytes_read(), 10_000);
        let (digest, _) = r.finalize();
        assert_eq!(digest, sha1(&data));
    }

    #[test]
    fn partial_reads_accumulate() {
        let data: Vec<u8> = (0..=255u8).collect();
        let mut r = HashReader::new(&data[..]);
        let mut buf = [0u8; 7];
        loop {
            if r.read(&mut buf).unwrap() == 0 {
                break;
            }
        }
        let (digest, _) = r.finalize();
        assert_eq!(digest, sha1(&data));
    }
}
