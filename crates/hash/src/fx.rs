//! A fast, non-cryptographic hasher for the hot in-memory index structures.
//!
//! The deduplication engines do millions of `HashMap` probes keyed by
//! [`ChunkHash`](crate::ChunkHash) prefixes and small integers. SipHash's
//! DoS hardening is pure overhead there (the keys are SHA-1 output or
//! internal counters), so we use the FxHash multiply-xor construction made
//! popular by rustc. Implemented locally to stay within the offline crate
//! set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash state.
///
/// For each input word the state is rotated, xored with the word, and
/// multiplied by a large odd constant ("wymum-like" mix). Quality is far
/// below SipHash but plenty for uniform keys, and it compiles to a handful
/// of instructions.
#[derive(Default, Clone, Copy)]
pub struct FxHasher64 {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher64 {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(tail) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher64`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// Drop-in `HashMap` replacement using [`FxHasher64`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` replacement using [`FxHasher64`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha1;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn chunk_hash_keys_do_not_collide_pathologically() {
        // 10k distinct SHA-1 digests must all land as distinct keys.
        let mut set: FxHashSet<crate::ChunkHash> = FxHashSet::default();
        for i in 0u32..10_000 {
            set.insert(sha1(&i.to_le_bytes()));
        }
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn hasher_distinguishes_lengths() {
        // `write` padding must not equate [0,0] with [0,0,0].
        let mut a = FxHasher64::default();
        a.write(&[0, 0]);
        let mut b = FxHasher64::default();
        b.write(&[0, 0, 0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = FxHasher64::default();
        let mut b = FxHasher64::default();
        a.write_u64(42);
        b.write_u64(42);
        assert_eq!(a.finish(), b.finish());
    }
}
