//! End-to-end tests of the static passes over fixture workspaces: a
//! deliberately broken mini-workspace (`ws_bad`) must produce exactly the
//! expected findings per pass, and its clean twin (`ws_good`) none.

use std::path::PathBuf;

use mhd_lint::mck::check;
use mhd_lint::models::{FlushModel, RingModel};
use mhd_lint::{lock_graph, run_passes, Baseline, Finding, Workspace};

fn fixture(name: &str) -> Vec<Finding> {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let ws = Workspace::load(&root).expect("fixture loads");
    run_passes(&ws)
}

fn count(findings: &[Finding], pass: &str) -> usize {
    findings.iter().filter(|f| f.pass == pass).count()
}

fn has(findings: &[Finding], pass: &str, file: &str, line: u32) -> bool {
    findings.iter().any(|f| f.pass == pass && f.file == file && f.line == line)
}

#[test]
fn ws_bad_produces_every_expected_finding() {
    let findings = fixture("ws_bad");

    // L1: panics on durability paths — 4 in the store lib (including the
    // unwraps whose directives are reasonless/typoed and so do not bind
    // past their own line), 3 in the restricted core module.
    assert_eq!(count(&findings, "L1-no-panic"), 7, "{findings:#?}");
    assert!(has(&findings, "L1-no-panic", "crates/store/src/lib.rs", 6));
    assert!(has(&findings, "L1-no-panic", "crates/store/src/lib.rs", 11));
    assert!(has(&findings, "L1-no-panic", "crates/core/src/mhd.rs", 7)); // panic!

    // L2a: one raw fs::write outside backend.rs.
    assert_eq!(count(&findings, "L2-commit-path"), 1);
    assert!(has(&findings, "L2-commit-path", "crates/store/src/lib.rs", 11));

    // L2b: ALL not a permutation, the Manifest→DiskChunk edge inverted,
    // and batched.rs never referencing FLUSH_ORDER.
    assert_eq!(count(&findings, "L2-flush-order"), 3, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.pass == "L2-flush-order" && f.message.contains("not a permutation")));
    assert!(findings
        .iter()
        .any(|f| f.pass == "L2-flush-order" && f.message.contains("Manifest before DiskChunk")));
    assert!(findings
        .iter()
        .any(|f| f.pass == "L2-flush-order" && f.file == "crates/store/src/batched.rs"));

    // L3: the engine rewrote a DiskChunk and deleted a Hook.
    assert_eq!(count(&findings, "L3-immutability"), 2);
    assert!(has(&findings, "L3-immutability", "crates/core/src/mhd.rs", 9));
    assert!(has(&findings, "L3-immutability", "crates/core/src/mhd.rs", 13));

    // L4: unknown scope key, malformed label, two unregistered stages.
    assert_eq!(count(&findings, "L4-obs-labels"), 4, "{findings:#?}");
    assert!(findings.iter().any(|f| f.pass == "L4-obs-labels" && f.message.contains("\"bogus\"")));
    assert!(findings
        .iter()
        .any(|f| f.pass == "L4-obs-labels" && f.message.contains("not key=value")));

    // L5/L6 crate-root hygiene + the gating rule.
    assert_eq!(count(&findings, "L5-missing-docs"), 2);
    assert_eq!(count(&findings, "L6-forbid-unsafe"), 2);
    assert_eq!(count(&findings, "L5-obs-gating"), 1);
    assert!(has(&findings, "L5-obs-gating", "crates/app/Cargo.toml", 7));

    // L7: the engine lock taken under the registry lock, plus a
    // self-deadlocking re-acquisition.
    assert_eq!(count(&findings, "L7-lock-order"), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.pass == "L7-lock-order" && f.message.contains("engine lock")));
    assert!(findings
        .iter()
        .any(|f| f.pass == "L7-lock-order" && f.message.contains("self-deadlock")));

    // L8: one splice loop that skips the remap helper, one raw `1 << 48`.
    assert_eq!(count(&findings, "L8-id-range"), 2, "{findings:#?}");
    assert!(findings
        .iter()
        .any(|f| f.pass == "L8-id-range" && f.message.contains("FileKind::Hook")));
    assert!(findings.iter().any(|f| f.pass == "L8-id-range"
        && f.file == "crates/daemon/src/staging.rs"
        && f.message.contains("re-derives")));

    // Directive hygiene: one reasonless, one typoed name, and one
    // well-formed lock-order exemption that suppresses nothing.
    assert_eq!(count(&findings, "allow-directive"), 2);
    assert!(findings
        .iter()
        .any(|f| f.pass == "allow-directive" && f.message.contains("needs a reason")));
    assert!(findings
        .iter()
        .any(|f| f.pass == "allow-directive" && f.message.contains("unknown allow name")));
    assert_eq!(count(&findings, "stale-directive"), 1, "{findings:#?}");
    assert!(has(&findings, "stale-directive", "crates/daemon/src/shared.rs", 43));
}

#[test]
fn ws_bad_skips_test_code() {
    let findings = fixture("ws_bad");
    // The #[cfg(test)] module in the store lib unwraps freely (line 28).
    assert!(
        !findings.iter().any(|f| f.file == "crates/store/src/lib.rs" && f.line > 23),
        "test-module code must not be linted: {findings:#?}"
    );
}

#[test]
fn ws_good_is_clean() {
    let findings = fixture("ws_good");
    assert!(findings.is_empty(), "clean fixture flagged: {findings:#?}");
}

#[test]
fn baseline_written_from_findings_absorbs_them_all() {
    let findings = fixture("ws_bad");
    let baseline = Baseline::from_findings(&findings);
    let json = baseline.to_json();
    let reread = Baseline::from_json(&json).expect("round-trip");
    let ratchet = reread.ratchet(findings);
    assert!(ratchet.new.is_empty(), "baselined run must pass: {:#?}", ratchet.new);
    assert!(!ratchet.baselined.is_empty());
}

#[test]
fn one_new_finding_escapes_the_baseline() {
    let mut findings = fixture("ws_bad");
    let baseline = Baseline::from_findings(&findings);
    findings.push(Finding {
        pass: "L1-no-panic",
        file: "crates/store/src/lib.rs".into(),
        line: 99,
        message: "a fresh unwrap".into(),
    });
    let ratchet = baseline.ratchet(findings);
    assert_eq!(ratchet.new.len(), 1);
    assert_eq!(ratchet.new[0].line, 99);
}

#[test]
fn real_workspace_is_clean_and_l7_actually_sees_the_daemon() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = Workspace::load(&root).expect("workspace loads");
    let findings = run_passes(&ws);
    assert!(findings.is_empty(), "workspace regressed: {findings:#?}");

    // Guard the guard: a clean L7 run proves nothing if the extractor went
    // blind. The daemon's real nesting — stats/begin_session take registry
    // and shard locks inside the engine lock, in that order everywhere —
    // must show up as edges, and the engine lock must never be the target.
    let graph = lock_graph(&ws);
    assert!(
        graph.has_edge("SharedStore.inner", "SessionRegistry.inner"),
        "engine→registry nesting not extracted: {:?}",
        graph.edges
    );
    assert!(
        graph.has_edge("SharedStore.inner", "SharedHookIndex.shards"),
        "engine→shard nesting not extracted: {:?}",
        graph.edges
    );
    assert!(
        !graph.edges.iter().any(|e| e.to == "SharedStore.inner"),
        "an edge into the engine lock should have been a finding: {:?}",
        graph.edges
    );
}

#[test]
fn seeded_concurrency_bugs_are_caught() {
    // The mutants replicate historical bugs; the checker finding them is
    // what CI relies on to trust the green shipped-model runs.
    let flush = check(&FlushModel::mutant_flush_order(), 1_000_000);
    assert!(flush.violation.is_some(), "reversed FLUSH_ORDER not caught");
    let ring = check(&RingModel::mutant_ring_prune(), 1_000_000);
    assert!(ring.violation.is_some(), "eager ring prune not caught");

    let flush = check(&FlushModel::shipped(), 1_000_000);
    assert!(flush.passed(), "shipped flush protocol flagged: {:?}", flush.violation);
    let ring = check(&RingModel::shipped(), 1_000_000);
    assert!(ring.passed(), "shipped ring protocol flagged: {:?}", ring.violation);
}
