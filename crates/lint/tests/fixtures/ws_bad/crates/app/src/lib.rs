// Fixture: unregistered observability labels (L4) — a scope key not in
// SCOPE_LABEL_KEYS, a scope label that is not key=value, and a stage name
// with an unregistered prefix.

pub fn run() {
    let _scope = obs::scope!("bogus=1");
    let _scope2 = obs::scope!("nokeyvalue");
    let _stage = obs::stage("zzz.phase");
    let _stage2 = obs::stage(format!("warp={}", 9));
}
