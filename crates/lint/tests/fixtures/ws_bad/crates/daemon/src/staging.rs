// Fixture: L8 — re-derives the staging id floor as a raw literal
// instead of using the canonical LOCAL_ID_BASE const.

pub fn local_floor() -> u64 {
    1 << 48
}
