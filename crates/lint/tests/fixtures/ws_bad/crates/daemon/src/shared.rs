// Fixture: a daemon violating L7 (the engine lock acquired while the
// registry lock is held; a self-deadlocking re-acquisition), L8 (a
// splice loop that never remaps staged ids), and directive hygiene (a
// stale lock-order exemption that suppresses nothing).

pub struct SessionRegistry {
    inner: Mutex<u64>,
}

impl SessionRegistry {
    pub fn watermark(&self) -> u64 {
        *self.inner.lock()
    }
}

pub struct SharedStore {
    inner: Mutex<u64>,
    registry: SessionRegistry,
}

pub const LOCAL_ID_BASE: u64 = 1 << 48;

impl SharedStore {
    pub fn open(&self) {
        self.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE);
    }

    // L7: the engine lock is the hierarchy root, yet it is acquired
    // here while the registry lock is already held.
    pub fn inverted(&self) -> u64 {
        let reg = self.registry.inner.lock();
        let eng = self.inner.lock();
        *reg + *eng
    }

    // L7: re-acquired without dropping the first guard.
    pub fn stuck(&self) -> u64 {
        let a = self.inner.lock();
        let b = self.inner.lock();
        *a + *b
    }

    // lint: allow(lock-order): carried over from the old nesting
    pub fn quiet(&self) -> u64 {
        self.registry.watermark()
    }

    // L8: the Hook loop below never routes through map_chunk.
    pub fn splice(&self, overlay: Overlay, base: u64) {
        let staged = overlay.take_staged();
        let map_chunk =
            move |id: u64| if id >= LOCAL_ID_BASE { id - LOCAL_ID_BASE + base } else { id };
        for (name, data) in staged.fresh_of(FileKind::DiskChunk) {
            self.store_chunk(map_chunk(parse(name)), data);
        }
        for (name, target) in staged.fresh_of(FileKind::Hook) {
            self.store_hook(name, parse(target));
        }
    }
}
