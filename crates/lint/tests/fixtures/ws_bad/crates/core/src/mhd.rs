// Fixture: an engine rewriting a DiskChunk and deleting a Hook (L3 —
// both kinds are immutable outside gc/compact) and panicking on an I/O
// path (L1; mhd.rs is one of the restricted core modules).

pub fn rewrite_chunk(backend: &mut impl Backend, name: &str, data: &[u8]) {
    if data.is_empty() {
        panic!("empty chunk");
    }
    backend.update(FileKind::DiskChunk, name, data).unwrap();
}

pub fn drop_hook(backend: &mut impl Backend, name: &str) {
    backend.delete(FileKind::Hook, name).unwrap();
}
