// Fixture: FLUSH_ORDER violates the Manifest→DiskChunk reference edge
// (Manifest flushes first) and ALL is missing a variant.

pub enum FileKind {
    DiskChunk,
    Manifest,
    Hook,
    FileManifest,
}

impl FileKind {
    pub const ALL: [FileKind; 3] = [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook];

    pub const FLUSH_ORDER: [FileKind; 4] =
        [FileKind::Manifest, FileKind::DiskChunk, FileKind::Hook, FileKind::FileManifest];
}
