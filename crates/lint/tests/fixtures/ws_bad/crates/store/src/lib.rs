// Fixture: a store crate violating L1 (panics on a durability path),
// L2a (raw fs mutation outside backend.rs), directive hygiene (missing
// reason, unknown name), L5a (no missing_docs), and L6 (no forbid).

pub fn load(path: &str) -> Vec<u8> {
    let data = std::fs::read(path).unwrap();
    data
}

pub fn store(path: &str, data: &[u8]) {
    std::fs::write(path, data).expect("write failed");
}

// lint: allow(unwrap)
pub fn reasonless(x: Option<u32>) -> u32 {
    x.unwrap()
}

// lint: allow(unwrp): typo in the directive name
pub fn typoed(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
    }
}
