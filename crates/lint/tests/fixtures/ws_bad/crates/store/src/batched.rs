// Fixture: a flush loop spelling out its own kind order instead of
// iterating FileKind::FLUSH_ORDER — the canonical order can drift.

use crate::backend::FileKind;

pub fn flush_all() {
    for kind in [FileKind::Hook, FileKind::Manifest, FileKind::DiskChunk] {
        flush_kind(kind);
    }
}

fn flush_kind(_kind: FileKind) {}
