//! Fixture: garbage collection is the sanctioned home of DiskChunk and
//! Hook deletion — gc.rs is exempt from L3.

pub fn sweep(backend: &mut impl Backend, dead_chunk: &str, dead_hook: &str) {
    let _ = backend.delete(FileKind::DiskChunk, dead_chunk);
    let _ = backend.delete(FileKind::Hook, dead_hook);
}
