//! Fixture: a flush loop driven by the canonical order.

use crate::backend::FileKind;

/// Drains pending writes kind by kind in the canonical order.
pub fn flush_all() {
    for kind in FileKind::FLUSH_ORDER {
        flush_kind(kind);
    }
}

fn flush_kind(_kind: FileKind) {}
