//! Fixture: the canonical FileKind layout — ALL and FLUSH_ORDER are both
//! permutations, and FLUSH_ORDER respects every reference edge. Raw fs
//! calls are fine here: backend.rs owns the commit helpers.

/// Object kinds.
pub enum FileKind {
    /// Data container.
    DiskChunk,
    /// Chunk recipe.
    Manifest,
    /// Sampled index entry.
    Hook,
    /// File recipe.
    FileManifest,
}

impl FileKind {
    /// Every kind.
    pub const ALL: [FileKind; 4] =
        [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest];

    /// Referees strictly before referrers.
    pub const FLUSH_ORDER: [FileKind; 4] =
        [FileKind::DiskChunk, FileKind::Manifest, FileKind::Hook, FileKind::FileManifest];
}

/// The commit helper: backend.rs may touch the filesystem directly.
pub fn commit(tmp: &str, target: &str) -> std::io::Result<()> {
    std::fs::rename(tmp, target)
}
