//! Fixture: a store crate satisfying every pass — reasons on every allow
//! directive, crate-root hygiene attributes, panics only in test code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Loads a file, tolerating a missing path.
pub fn load(path: &str) -> Vec<u8> {
    std::fs::read(path).unwrap_or_default()
}

/// An exempted unwrap with its reviewable reason.
pub fn head(items: &[u32]) -> u32 {
    // lint: allow(unwrap): callers guarantee items is non-empty
    *items.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_panic() {
        let v: Option<u32> = Some(3);
        assert_eq!(v.unwrap(), 3);
        if v.is_none() {
            panic!("unreachable");
        }
    }
}
