// Fixture: bin-target driver; crate-root hygiene attributes are required
// only on src/lib.rs and src/main.rs roots.
fn main() {}
