//! Fixture: observability labels drawn from the registered vocabularies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Emits correctly-labelled scopes and stages.
pub fn run(idx: usize) {
    let _scope = obs::scope!("shard={idx}");
    let _stage = obs::stage("pipeline.producer");
    let _stage2 = obs::stage(format!("engine={}", idx));
}
