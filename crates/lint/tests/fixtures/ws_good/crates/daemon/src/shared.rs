// Fixture: a daemon obeying L7 (the engine lock strictly first, guards
// dropped before re-acquisition) and L8 (one canonical floor, armed at
// open, every splice loop routed through a remap helper).

pub struct SessionRegistry {
    inner: Mutex<u64>,
}

impl SessionRegistry {
    pub fn watermark(&self) -> u64 {
        *self.inner.lock()
    }
}

pub struct SharedStore {
    inner: Mutex<u64>,
    registry: SessionRegistry,
}

pub const LOCAL_ID_BASE: u64 = 1 << 48;

impl SharedStore {
    pub fn open(&self) {
        self.ensure_id_floor(LOCAL_ID_BASE, LOCAL_ID_BASE);
    }

    // Engine first, registry second — the sanctioned nesting.
    pub fn ordered(&self) -> u64 {
        let eng = self.inner.lock();
        let wm = self.registry.watermark();
        *eng + wm
    }

    // Re-acquisition is fine once the first guard is dropped.
    pub fn retry(&self) -> u64 {
        let a = self.inner.lock();
        drop(a);
        let b = self.inner.lock();
        *b
    }

    pub fn splice(&self, overlay: Overlay, base: u64) {
        let staged = overlay.take_staged();
        let map_chunk =
            move |id: u64| if id >= LOCAL_ID_BASE { id - LOCAL_ID_BASE + base } else { id };
        for (name, data) in staged.fresh_of(FileKind::DiskChunk) {
            self.store_chunk(map_chunk(parse(name)), data);
        }
        for (name, target) in staged.fresh_of(FileKind::Hook) {
            self.store_hook(name, map_chunk(parse(target)));
        }
    }
}
