//! The static invariant passes (L1–L6) and the workspace loader.
//!
//! Each pass is a token-pattern scan over [`SourceFile`] streams — no type
//! information, which is exactly the point: these invariants are *layout*
//! and *discipline* rules the compiler cannot see (panics on durability
//! paths, raw filesystem calls bypassing the commit helpers, mutations of
//! immutable object kinds, unregistered observability labels), and a
//! token-level scan keeps them checkable in milliseconds on every CI run
//! with zero external dependencies.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::findings::Finding;
use crate::idrange::pass_l8_id_range;
use crate::locks::pass_l7_lock_order;
use crate::source::{matching_close, SourceFile, ALLOW_NAMES};

/// Fallback scope-label keys, kept in sync with
/// `mhd_obs::SCOPE_LABEL_KEYS`; the real registry is re-parsed from the
/// obs source when present so the two cannot drift silently.
pub const DEFAULT_SCOPE_KEYS: &[&str] =
    &["chunker", "cmd", "engine", "fleet", "io", "run", "shard", "t", "tenant"];

/// Fallback stage-name prefixes, mirroring `mhd_obs::STAGE_NAME_PREFIXES`.
pub const DEFAULT_STAGE_PREFIXES: &[&str] =
    &["backup", "commit", "daemon", "engine", "io", "pipeline", "shard"];

/// A loaded workspace: every lintable source file plus crate manifests.
#[derive(Debug)]
pub struct Workspace {
    /// Root the relative paths hang off.
    pub root: PathBuf,
    /// Parsed `.rs` files.
    pub files: Vec<SourceFile>,
    /// `(relative path, text)` of each crate-level `Cargo.toml`.
    pub manifests: Vec<(String, String)>,
}

/// Directory names never descended into. `fixtures` holds the linter's
/// own deliberately-broken test workspaces; `shims` are vendored stand-in
/// facades that follow upstream idiom, not workspace rules.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures", "shims", "node_modules"];

impl Workspace {
    /// Recursively loads every `.rs` file and `Cargo.toml` under `root`,
    /// skipping `target`, `.git`, `fixtures`, `shims`, `node_modules`
    /// and dot-directories. Files are sorted by path so every run (and
    /// therefore the baseline ratchet's attribution) is deterministic.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let mut manifests = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        let mut rs_paths = Vec::new();
        while let Some(dir) = stack.pop() {
            for entry in fs::read_dir(&dir)? {
                let entry = entry?;
                let path = entry.path();
                let name = entry.file_name().to_string_lossy().into_owned();
                if path.is_dir() {
                    if !SKIP_DIRS.contains(&name.as_str()) && !name.starts_with('.') {
                        stack.push(path);
                    }
                } else if name == "Cargo.toml" {
                    manifests.push((rel_of(root, &path), fs::read_to_string(&path)?));
                } else if name.ends_with(".rs") {
                    rs_paths.push(path);
                }
            }
        }
        rs_paths.sort();
        manifests.sort_by(|a, b| a.0.cmp(&b.0));
        for path in rs_paths {
            let rel = rel_of(root, &path);
            files.push(SourceFile::parse(&rel, &fs::read_to_string(&path)?));
        }
        Ok(Workspace { root: root.to_path_buf(), files, manifests })
    }

    fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

fn rel_of(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Which allow-directive name suppresses findings of each pass. Passes
/// absent here have no per-line escape hatch — the workspace-shape rules
/// (L2b, L4–L6) are properties of registries and crate roots, not of an
/// individual line a reviewer could sanction.
const SUPPRESSIBLE: &[(&str, &str)] = &[
    ("L1-no-panic", "unwrap"),
    ("L2-commit-path", "raw-fs"),
    ("L3-immutability", "immutability"),
    ("L7-lock-order", "lock-order"),
    ("L8-id-range", "id-range"),
];

/// Runs every pass over the workspace and returns findings in a stable
/// order (pass, then file, then line).
///
/// Passes emit unconditionally; suppression happens *here*, centrally, so
/// the linter knows which directives earned their keep. A well-formed
/// directive that suppressed nothing is stale — the code it excused has
/// moved or been fixed — and is itself reported (`stale-directive`):
/// otherwise dead exemptions accumulate and silently blanket future
/// regressions on those lines.
pub fn run_passes(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    pass_allow_directives(ws, &mut findings);
    pass_l1_no_panic(ws, &mut findings);
    pass_l2_commit_path(ws, &mut findings);
    pass_l2_flush_order(ws, &mut findings);
    pass_l3_immutability(ws, &mut findings);
    pass_l4_obs_labels(ws, &mut findings);
    pass_l5_missing_docs(ws, &mut findings);
    pass_l5_obs_gating(ws, &mut findings);
    pass_l6_forbid_unsafe(ws, &mut findings);
    pass_l7_lock_order(ws, &mut findings);
    pass_l8_id_range(ws, &mut findings);
    let mut findings = apply_suppressions(ws, findings);
    findings.sort_by(|a, b| (a.pass, &a.file, a.line).cmp(&(b.pass, &b.file, b.line)));
    findings
}

/// Drops findings covered by a matching allow directive (the directive's
/// own line or the line below it, same reach as
/// [`SourceFile::is_allowed`]), then reports every well-formed directive
/// that covered nothing as stale.
fn apply_suppressions(ws: &Workspace, findings: Vec<Finding>) -> Vec<Finding> {
    let mut used: BTreeSet<(String, u32)> = BTreeSet::new();
    let mut kept = Vec::new();
    for f in findings {
        let Some((_, name)) = SUPPRESSIBLE.iter().find(|(pass, _)| *pass == f.pass) else {
            kept.push(f);
            continue;
        };
        let directive = ws.file(&f.file).and_then(|sf| {
            sf.allows.iter().find(|a| a.name == *name && (a.line == f.line || a.line + 1 == f.line))
        });
        match directive {
            Some(d) => {
                used.insert((f.file.clone(), d.line));
            }
            None => kept.push(f),
        }
    }
    for sf in &ws.files {
        for a in &sf.allows {
            let well_formed = ALLOW_NAMES.contains(&a.name.as_str()) && a.has_reason;
            if well_formed && !used.contains(&(sf.rel.clone(), a.line)) {
                kept.push(Finding {
                    pass: "stale-directive",
                    file: sf.rel.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) suppresses no finding — the code it excused has moved \
                         or been fixed; delete the directive before it blankets a future \
                         regression",
                        a.name
                    ),
                });
            }
        }
    }
    kept
}

// ---------------------------------------------------------------------
// Directive hygiene
// ---------------------------------------------------------------------

/// Every allow directive must name a known pass and carry a reason — the
/// reason is what a reviewer audits instead of the exempted code.
fn pass_allow_directives(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in &ws.files {
        for a in &file.allows {
            if !ALLOW_NAMES.contains(&a.name.as_str()) {
                out.push(Finding {
                    pass: "allow-directive",
                    file: file.rel.clone(),
                    line: a.line,
                    message: format!(
                        "unknown allow name `{}` (known: {})",
                        a.name,
                        ALLOW_NAMES.join(", ")
                    ),
                });
            } else if !a.has_reason {
                out.push(Finding {
                    pass: "allow-directive",
                    file: file.rel.clone(),
                    line: a.line,
                    message: format!(
                        "allow({}) needs a reason: `// lint: allow({}): why this is safe`",
                        a.name, a.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// L1: no unwrap/expect/panic on durability paths
// ---------------------------------------------------------------------

/// Files on which a panic can strand a partially-committed store: the
/// whole store crate, the CLI (user-facing I/O), the daemon (long-lived
/// server holding sessions open), and the core modules that drive engine
/// I/O and recovery.
fn l1_restricted(rel: &str) -> bool {
    rel.starts_with("crates/store/src/")
        || rel.starts_with("crates/cli/src/")
        || rel.starts_with("crates/daemon/src/")
        || matches!(
            rel,
            "crates/core/src/pipeline.rs"
                | "crates/core/src/shard.rs"
                | "crates/core/src/fsck.rs"
                | "crates/core/src/mhd.rs"
                | "crates/chunking/src/fastcdc.rs"
                | "crates/chunking/src/ae.rs"
                | "crates/chunking/src/simd.rs"
        )
}

fn pass_l1_no_panic(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in ws.files.iter().filter(|f| l1_restricted(&f.rel)) {
        for (i, tok) in file.toks.iter().enumerate() {
            if file.test_mask[i] {
                continue;
            }
            let method_call = |name: &str| {
                tok.is_ident(name)
                    && i > 0
                    && file.toks[i - 1].is_punct('.')
                    && file.toks.get(i + 1).map(|t| t.is_punct('(')).unwrap_or(false)
            };
            let offense = if method_call("unwrap") || method_call("expect") {
                Some(format!(".{}() can panic", tok.text))
            } else if tok.is_ident("panic")
                && file.toks.get(i + 1).map(|t| t.is_punct('!')).unwrap_or(false)
            {
                Some("panic! aborts a durability path".to_string())
            } else {
                None
            };
            if let Some(what) = offense {
                out.push(Finding {
                    pass: "L1-no-panic",
                    file: file.rel.clone(),
                    line: tok.line,
                    message: format!(
                        "{what}; return StoreError (or `// lint: allow(unwrap): reason`)"
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// L2a: raw filesystem mutation must go through the commit helpers
// ---------------------------------------------------------------------

const RAW_FS_OPS: &[&str] =
    &["write", "rename", "remove_file", "remove_dir_all", "create", "create_dir_all", "set_len"];

/// In the store crate, only `backend.rs` owns the tmp+rename+intent commit
/// sequence; raw `std::fs` mutation anywhere else bypasses crash safety.
fn pass_l2_commit_path(ws: &Workspace, out: &mut Vec<Finding>) {
    for file in ws.files.iter().filter(|f| {
        f.rel.starts_with("crates/store/src/") && f.rel != "crates/store/src/backend.rs"
    }) {
        for (i, tok) in file.toks.iter().enumerate() {
            if file.test_mask[i] {
                continue;
            }
            let qualified_by = |name: &str| {
                i >= 3
                    && file.toks[i - 1].is_punct(':')
                    && file.toks[i - 2].is_punct(':')
                    && file.toks[i - 3].is_ident(name)
            };
            if tok.kind == crate::lexer::TokKind::Ident
                && RAW_FS_OPS.contains(&tok.text.as_str())
                && (qualified_by("fs") || qualified_by("File"))
            {
                out.push(Finding {
                    pass: "L2-commit-path",
                    file: file.rel.clone(),
                    line: tok.line,
                    message: format!(
                        "raw fs::{} bypasses the tmp+rename commit helpers in backend.rs",
                        tok.text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// L2b: FLUSH_ORDER cross-file consistency
// ---------------------------------------------------------------------

/// Reference edges between object kinds: `(referrer, referee)` — the
/// referee must flush strictly before the referrer so a crash between any
/// two writes leaves no dangling reference.
pub const REF_EDGES: &[(&str, &str)] =
    &[("Manifest", "DiskChunk"), ("Hook", "Manifest"), ("FileManifest", "DiskChunk")];

fn pass_l2_flush_order(ws: &Workspace, out: &mut Vec<Finding>) {
    let rel = "crates/store/src/backend.rs";
    let Some(backend) = ws.file(rel) else { return };
    let push = |out: &mut Vec<Finding>, line: u32, message: String| {
        out.push(Finding { pass: "L2-flush-order", file: rel.to_string(), line, message });
    };

    let variants = enum_variants(backend, "FileKind");
    if variants.is_empty() {
        push(out, 0, "could not parse `enum FileKind` variants".into());
        return;
    }
    let flush_order = const_kind_list(backend, "FLUSH_ORDER");
    let all = const_kind_list(backend, "ALL");
    for (name, list) in [("FLUSH_ORDER", &flush_order), ("ALL", &all)] {
        match list {
            None => push(out, 0, format!("const {name} not found or not a FileKind array")),
            Some((line, kinds)) => {
                let got: BTreeSet<&str> = kinds.iter().map(String::as_str).collect();
                let want: BTreeSet<&str> = variants.iter().map(String::as_str).collect();
                if got != want {
                    push(
                        out,
                        *line,
                        format!("{name} {kinds:?} is not a permutation of FileKind {variants:?}"),
                    );
                }
            }
        }
    }
    if let Some((line, order)) = &flush_order {
        let pos = |k: &str| order.iter().position(|v| v == k);
        for (referrer, referee) in REF_EDGES {
            if let (Some(a), Some(b)) = (pos(referrer), pos(referee)) {
                if b >= a {
                    push(
                        out,
                        *line,
                        format!(
                            "FLUSH_ORDER writes {referrer} before {referee}, but {referrer} \
                             references {referee}: a crash between them dangles"
                        ),
                    );
                }
            }
        }
    }
    // The batched backend must drain pending writes in the canonical
    // order, not a locally spelled-out kind list.
    if let Some(batched) = ws.file("crates/store/src/batched.rs") {
        if !batched.toks.iter().any(|t| t.is_ident("FLUSH_ORDER")) {
            out.push(Finding {
                pass: "L2-flush-order",
                file: batched.rel.clone(),
                line: 0,
                message: "batched.rs never references FileKind::FLUSH_ORDER; \
                          its flush loop can drift from the canonical order"
                    .into(),
            });
        }
    }
}

/// Variant names of `enum <name> { … }` (unit variants only, which is all
/// `FileKind` has; tokens inside `[...]` attributes are skipped).
fn enum_variants(file: &SourceFile, name: &str) -> Vec<String> {
    let toks = &file.toks;
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].is_ident("enum") && toks[i + 1].is_ident(name) && toks[i + 2].is_punct('{') {
            let Some(close) = matching_close(toks, i + 2, '{', '}') else { return Vec::new() };
            let mut variants = Vec::new();
            let mut j = i + 3;
            while j < close {
                if toks[j].is_punct('[') {
                    j = matching_close(toks, j, '[', ']').map(|e| e + 1).unwrap_or(close);
                    continue;
                }
                if toks[j].kind == crate::lexer::TokKind::Ident {
                    let next = &toks[j + 1];
                    if next.is_punct(',') || next.is_punct('}') {
                        variants.push(toks[j].text.clone());
                    }
                }
                j += 1;
            }
            return variants;
        }
    }
    Vec::new()
}

/// The `FileKind::X` names inside `const <name>: … = [ … ];`, with the
/// line of the array literal.
fn const_kind_list(file: &SourceFile, name: &str) -> Option<(u32, Vec<String>)> {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("const") && toks.get(i + 1).map(|t| t.is_ident(name)) == Some(true)) {
            continue;
        }
        // Find the `=` then the `[` of the value; the type annotation also
        // contains `[FileKind; 4]`, which the `=` skips past.
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('=') {
            j += 1;
        }
        while j < toks.len() && !toks[j].is_punct('[') {
            j += 1;
        }
        let close = matching_close(toks, j, '[', ']')?;
        let mut kinds = Vec::new();
        let mut k = j + 1;
        while k < close {
            if (toks[k].is_ident("FileKind") || toks[k].is_ident("Self"))
                && toks[k + 1].is_punct(':')
                && toks[k + 2].is_punct(':')
            {
                kinds.push(toks[k + 3].text.clone());
                k += 4;
            } else {
                k += 1;
            }
        }
        return Some((toks[j].line, kinds));
    }
    None
}

// ---------------------------------------------------------------------
// L3: DiskChunks and Hooks are immutable outside GC/compaction
// ---------------------------------------------------------------------

/// The paper's core invariant: HHR rewrites only Manifests; DiskChunks
/// and Hooks are write-once. Only garbage collection and compaction may
/// delete them — those live in `gc.rs` / `compact.rs`.
fn pass_l3_immutability(ws: &Workspace, out: &mut Vec<Finding>) {
    let exempt = ["crates/core/src/gc.rs", "crates/core/src/compact.rs"];
    for file in ws.files.iter().filter(|f| {
        (f.rel.starts_with("crates/store/src/")
            || f.rel.starts_with("crates/core/src/")
            || f.rel.starts_with("crates/cli/src/")
            || f.rel.starts_with("crates/daemon/src/"))
            && !exempt.contains(&f.rel.as_str())
    }) {
        let toks = &file.toks;
        for i in 0..toks.len().saturating_sub(5) {
            if file.test_mask[i] {
                continue;
            }
            let is_mutation = (toks[i].is_ident("update") || toks[i].is_ident("delete"))
                && i > 0
                && toks[i - 1].is_punct('.');
            if is_mutation
                && toks[i + 1].is_punct('(')
                && toks[i + 2].is_ident("FileKind")
                && toks[i + 3].is_punct(':')
                && toks[i + 4].is_punct(':')
                && (toks[i + 5].is_ident("DiskChunk") || toks[i + 5].is_ident("Hook"))
            {
                out.push(Finding {
                    pass: "L3-immutability",
                    file: file.rel.clone(),
                    line: toks[i].line,
                    message: format!(
                        "{}s are immutable; .{}() outside gc/compact breaks dedup \
                         (`// lint: allow(immutability): reason` for sanctioned paths)",
                        toks[i + 5].text,
                        toks[i].text
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// L4: observability label hygiene
// ---------------------------------------------------------------------

/// Scope keys and stage prefixes, parsed from the obs crate's registries
/// when present (so the linter follows the source of truth), else the
/// built-in mirrors.
fn obs_registries(ws: &Workspace) -> (Vec<String>, Vec<String>) {
    let parse = |rel: &str, const_name: &str, fallback: &[&str]| {
        ws.file(rel)
            .and_then(|f| const_str_list(f, const_name))
            .unwrap_or_else(|| fallback.iter().map(|s| s.to_string()).collect())
    };
    (
        parse("crates/obs/src/scope.rs", "SCOPE_LABEL_KEYS", DEFAULT_SCOPE_KEYS),
        parse("crates/obs/src/trace.rs", "STAGE_NAME_PREFIXES", DEFAULT_STAGE_PREFIXES),
    )
}

/// String literals inside `const <name>: … = &[ … ];`.
fn const_str_list(file: &SourceFile, name: &str) -> Option<Vec<String>> {
    let toks = &file.toks;
    for i in 0..toks.len() {
        if !(toks[i].is_ident("const") && toks.get(i + 1).map(|t| t.is_ident(name)) == Some(true)) {
            continue;
        }
        let mut j = i + 2;
        while j < toks.len() && !toks[j].is_punct('=') {
            j += 1;
        }
        while j < toks.len() && !toks[j].is_punct('[') {
            j += 1;
        }
        let close = matching_close(toks, j, '[', ']')?;
        let strs = toks[j + 1..close]
            .iter()
            .filter(|t| t.kind == crate::lexer::TokKind::Str)
            .map(|t| t.text.clone())
            .collect();
        return Some(strs);
    }
    None
}

fn pass_l4_obs_labels(ws: &Workspace, out: &mut Vec<Finding>) {
    let (scope_keys, stage_prefixes) = obs_registries(ws);
    for file in ws.files.iter().filter(|f| !f.rel.starts_with("crates/obs/src/")) {
        let toks = &file.toks;
        for i in 0..toks.len() {
            // Tests may fabricate foreign labels (e.g. feeding the trace
            // analyzer synthetic stage names); only production emissions
            // must use the registered vocabulary.
            if file.test_mask[i] {
                continue;
            }
            // scope!("key=value" …)
            if toks[i].is_ident("scope")
                && toks.get(i + 1).map(|t| t.is_punct('!')) == Some(true)
                && toks.get(i + 2).map(|t| t.is_punct('(')) == Some(true)
            {
                if let Some(lit) = toks.get(i + 3).filter(|t| t.kind == crate::lexer::TokKind::Str)
                {
                    match lit.text.split_once('=') {
                        None => out.push(Finding {
                            pass: "L4-obs-labels",
                            file: file.rel.clone(),
                            line: lit.line,
                            message: format!("scope label {:?} is not key=value form", lit.text),
                        }),
                        Some((key, _)) if !scope_keys.iter().any(|k| k == key) => {
                            out.push(Finding {
                                pass: "L4-obs-labels",
                                file: file.rel.clone(),
                                line: lit.line,
                                message: format!(
                                    "scope key {key:?} not in SCOPE_LABEL_KEYS {scope_keys:?}"
                                ),
                            })
                        }
                        Some(_) => {}
                    }
                }
            }
            // stage("name") or stage(format!("name…", …))
            if toks[i].is_ident("stage") && toks.get(i + 1).map(|t| t.is_punct('(')) == Some(true) {
                let lit = match toks.get(i + 2) {
                    Some(t) if t.kind == crate::lexer::TokKind::Str => Some(t),
                    Some(t)
                        if t.is_ident("format")
                            && toks.get(i + 3).map(|t| t.is_punct('!')) == Some(true)
                            && toks.get(i + 4).map(|t| t.is_punct('(')) == Some(true) =>
                    {
                        toks.get(i + 5).filter(|t| t.kind == crate::lexer::TokKind::Str)
                    }
                    _ => None,
                };
                if let Some(lit) = lit {
                    let prefix: String = lit
                        .text
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !stage_prefixes.iter().any(|p| p == &prefix) {
                        out.push(Finding {
                            pass: "L4-obs-labels",
                            file: file.rel.clone(),
                            line: lit.line,
                            message: format!(
                                "stage name {:?} has prefix {prefix:?}, not in \
                                 STAGE_NAME_PREFIXES {stage_prefixes:?}",
                                lit.text
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// L5: crate-root hygiene (missing_docs, obs feature gating)
// ---------------------------------------------------------------------

/// Crate root files: `src/lib.rs` and `src/main.rs` of each crate. Bin
/// target files under `src/bin/` are thin drivers over a documented lib
/// and are deliberately out of scope.
fn crate_roots(ws: &Workspace) -> Vec<&SourceFile> {
    ws.files
        .iter()
        .filter(|f| f.rel.ends_with("/src/lib.rs") || f.rel.ends_with("/src/main.rs"))
        .collect()
}

/// True when the file carries inner attribute `#![level(lint)]` for any
/// of the given levels.
fn has_inner_attr(file: &SourceFile, levels: &[&str], lint: &str) -> bool {
    let toks = &file.toks;
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].is_punct('#') && toks[i + 1].is_punct('!') && toks[i + 2].is_punct('[') {
            if let Some(close) = matching_close(toks, i + 2, '[', ']') {
                let attr = &toks[i + 3..close];
                if attr.iter().any(|t| {
                    t.kind == crate::lexer::TokKind::Ident && levels.contains(&t.text.as_str())
                }) && attr.iter().any(|t| t.is_ident(lint))
                {
                    return true;
                }
            }
        }
    }
    false
}

fn pass_l5_missing_docs(ws: &Workspace, out: &mut Vec<Finding>) {
    for root in crate_roots(ws) {
        if !has_inner_attr(root, &["warn", "deny", "forbid"], "missing_docs") {
            out.push(Finding {
                pass: "L5-missing-docs",
                file: root.rel.clone(),
                line: 1,
                message: "crate root lacks #![warn(missing_docs)]".into(),
            });
        }
    }
}

/// Only binary and integration-test crates may force the `obs` feature:
/// a library forcing it would switch every downstream build into the
/// instrumented configuration and defeat the zero-cost-when-off design.
fn pass_l5_obs_gating(ws: &Workspace, out: &mut Vec<Finding>) {
    for (rel, text) in &ws.manifests {
        let Some(crate_dir) = rel.strip_suffix("Cargo.toml").map(|p| p.trim_end_matches('/'))
        else {
            continue;
        };
        let forces_obs = text.lines().any(|l| {
            let l = l.trim();
            !l.starts_with('#')
                && l.starts_with("mhd-obs")
                && l.contains("features")
                && l.contains("\"obs\"")
        });
        if !forces_obs {
            continue;
        }
        let dir = ws.root.join(crate_dir);
        let is_binary_like = text.contains("[[bin]]")
            || dir.join("src/main.rs").exists()
            || dir.join("src/bin").exists()
            || dir.join("tests").exists();
        if !is_binary_like {
            let line = text
                .lines()
                .position(|l| l.trim_start().starts_with("mhd-obs"))
                .map(|i| i as u32 + 1)
                .unwrap_or(0);
            out.push(Finding {
                pass: "L5-obs-gating",
                file: rel.clone(),
                line,
                message: "library crate forces mhd-obs feature \"obs\"; only binaries and \
                          integration-test crates may opt the build into instrumentation"
                    .into(),
            });
        }
    }
}

// ---------------------------------------------------------------------
// L6: forbid(unsafe_code) everywhere unsafe isn't needed
// ---------------------------------------------------------------------

fn pass_l6_forbid_unsafe(ws: &Workspace, out: &mut Vec<Finding>) {
    for root in crate_roots(ws) {
        let Some(crate_dir) =
            root.rel.strip_suffix("/lib.rs").or_else(|| root.rel.strip_suffix("/main.rs"))
        else {
            continue;
        };
        // A crate using `unsafe` anywhere cannot forbid it at the root.
        let crate_uses_unsafe = ws
            .files
            .iter()
            .filter(|f| f.rel.starts_with(crate_dir))
            .any(|f| f.toks.iter().any(|t| t.is_ident("unsafe")));
        if crate_uses_unsafe {
            continue;
        }
        if !has_inner_attr(root, &["forbid", "deny"], "unsafe_code") {
            out.push(Finding {
                pass: "L6-forbid-unsafe",
                file: root.rel.clone(),
                line: 1,
                message: "crate has no unsafe code but the root lacks #![forbid(unsafe_code)]"
                    .into(),
            });
        }
    }
}
