//! L7 — lock-order discipline over the daemon and core crates.
//!
//! The daemon's concurrency contract is a strict lock hierarchy: the
//! engine lock (`SharedStore.inner`) is the top of the order, and while
//! holding it code may take the session-registry lock or a hook-index
//! shard lock — never the reverse, and never a cycle anywhere. A single
//! violation is a potential deadlock that no test schedule may ever hit,
//! which is exactly why it belongs to the linter and not the test suite.
//!
//! The pass extracts the acquisition graph statically from the token
//! streams:
//!
//! 1. **Lock declarations** — struct fields whose type mentions `Mutex`
//!    or `RwLock` in `crates/daemon/src/` and `crates/core/src/`. Each
//!    becomes a node `Struct.field`.
//! 2. **Acquisition sites** — `….lock()` / `….read()` / `….write()` with
//!    *empty* argument lists (so `io::Write::write(buf)` never matches),
//!    resolved to a declared lock through the receiver chain
//!    (`self.field`, `self.other.field` via field types) with a
//!    statement-scoped fallback for closure forms like
//!    `shards.iter().map(|s| s.read().len())`.
//! 3. **Guard scopes** — a `let guard = ….lock();` holds until
//!    `drop(guard)` or the end of the enclosing block; a bare temporary
//!    holds to the end of its statement. This is what lets the daemon's
//!    commit loop re-acquire after an explicit `drop(inner)` without a
//!    false self-edge.
//! 4. **Call edges** — calls to functions declared in the scanned files
//!    (resolved by unique name, minus a deny-list of ubiquitous method
//!    names like `len`/`insert` that would mis-resolve standard-library
//!    calls) propagate the callee's transitively-acquired lock set to
//!    the caller's held-set, to a fixpoint.
//!
//! Findings: any edge that closes a cycle (including a re-acquisition
//! self-edge), and any acquisition of the engine lock while *any* other
//! lock is held — the engine lock is the hierarchy root, so it must
//! always be taken first.

use crate::findings::Finding;
use crate::lexer::{TokKind, Token};
use crate::passes::Workspace;
use crate::source::{matching_close, SourceFile};

/// Method names that are never resolved to in-workspace functions: they
/// shadow ubiquitous standard-library methods, so a call through them is
/// far more likely `Vec::len` than `SharedHookIndex::len`. Lock-relevant
/// facts behind these names must also be reachable through a uniquely
/// named function (e.g. the hook index's `occupancy`) to be seen.
const CALL_DENY: &[&str] = &[
    "clear",
    "clone",
    "contains",
    "contains_key",
    "default",
    "delete",
    "drop",
    "finish",
    "flush",
    "fmt",
    "get",
    "get_range",
    "insert",
    "is_empty",
    "iter",
    "len",
    "lock",
    "new",
    "next",
    "pop",
    "push",
    "put",
    "read",
    "remove",
    "take",
    "update",
    "write",
];

/// A declared lock: a struct field of `Mutex`/`RwLock` type.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Graph node id, `Struct.field`.
    pub id: String,
    /// Owning struct name.
    pub strukt: String,
    /// Field name.
    pub field: String,
    /// Declaring file (workspace-relative).
    pub file: String,
    /// Declaration line.
    pub line: u32,
}

/// One "acquires `to` while holding `from`" edge, anchored at the
/// acquisition (or call) site that creates it.
#[derive(Debug, Clone)]
pub struct LockEdge {
    /// Lock held at the site.
    pub from: String,
    /// Lock acquired at the site (directly or via a resolved call).
    pub to: String,
    /// Site file.
    pub file: String,
    /// Site line.
    pub line: u32,
}

/// The extracted acquisition graph.
#[derive(Debug, Default)]
pub struct LockGraph {
    /// Every declared lock in scope.
    pub locks: Vec<LockDecl>,
    /// Every held→acquired edge found.
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// True when the graph contains an edge `from → to`.
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        self.edges.iter().any(|e| e.from == from && e.to == to)
    }
}

fn in_scope(rel: &str) -> bool {
    rel.starts_with("crates/daemon/src/") || rel.starts_with("crates/core/src/")
}

/// The engine lock is the hierarchy root: `SharedStore`'s mutex in the
/// daemon crate.
fn is_engine(decl: &LockDecl) -> bool {
    decl.file.starts_with("crates/daemon/") && decl.strukt == "SharedStore"
}

// ---------------------------------------------------------------------
// Declaration scan
// ---------------------------------------------------------------------

/// A struct field with the identifiers appearing in its type, used both
/// for lock detection and for resolving `self.other.field` chains.
#[derive(Debug)]
struct FieldDecl {
    strukt: String,
    field: String,
    type_idents: Vec<String>,
    file: String,
    line: u32,
}

/// Skips a generic argument list starting at `<`, returning the index
/// just past the matching `>`.
fn skip_generics(toks: &[Token], mut i: usize) -> usize {
    if !toks.get(i).map(|t| t.is_punct('<')).unwrap_or(false) {
        return i;
    }
    let mut depth = 0isize;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            depth += 1;
        } else if toks[i].is_punct('>') {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

fn scan_fields(file: &SourceFile, out: &mut Vec<FieldDecl>) {
    let toks = &file.toks;
    let mut i = 0usize;
    while i + 2 < toks.len() {
        if !(toks[i].is_ident("struct") && toks[i + 1].kind == TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut j = skip_generics(toks, i + 2);
        // Only brace structs have fields; tuple/unit structs end at `(`/`;`.
        if !toks.get(j).map(|t| t.is_punct('{')).unwrap_or(false) {
            i += 1;
            continue;
        }
        let Some(close) = matching_close(toks, j, '{', '}') else {
            return;
        };
        j += 1;
        while j < close {
            // Skip field attributes and visibility.
            if toks[j].is_punct('#') && toks.get(j + 1).map(|t| t.is_punct('[')) == Some(true) {
                j = matching_close(toks, j + 1, '[', ']').map(|e| e + 1).unwrap_or(close);
                continue;
            }
            if toks[j].is_ident("pub") {
                j += 1;
                if toks.get(j).map(|t| t.is_punct('(')) == Some(true) {
                    j = matching_close(toks, j, '(', ')').map(|e| e + 1).unwrap_or(close);
                }
                continue;
            }
            // `field: Type,` — collect type idents up to the comma at
            // field depth (commas inside <>/() belong to the type).
            if toks[j].kind == TokKind::Ident
                && toks.get(j + 1).map(|t| t.is_punct(':')) == Some(true)
                && toks.get(j + 2).map(|t| !t.is_punct(':')).unwrap_or(false)
            {
                let field = toks[j].text.clone();
                let line = toks[j].line;
                let mut k = j + 2;
                let mut type_idents = Vec::new();
                let mut angle = 0isize;
                let mut paren = 0isize;
                while k < close {
                    let t = &toks[k];
                    if t.is_punct('<') {
                        angle += 1;
                    } else if t.is_punct('>') {
                        angle -= 1;
                    } else if t.is_punct('(') || t.is_punct('[') {
                        paren += 1;
                    } else if t.is_punct(')') || t.is_punct(']') {
                        paren -= 1;
                    } else if t.is_punct(',') && angle <= 0 && paren <= 0 {
                        break;
                    } else if t.kind == TokKind::Ident {
                        type_idents.push(t.text.clone());
                    }
                    k += 1;
                }
                out.push(FieldDecl {
                    strukt: name.clone(),
                    field,
                    type_idents,
                    file: file.rel.clone(),
                    line,
                });
                j = k + 1;
                continue;
            }
            j += 1;
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------
// Function scan
// ---------------------------------------------------------------------

/// One function in the scanned files, with its body token range and the
/// impl type it hangs off (None for free functions).
struct FnDecl {
    name: String,
    file_idx: usize,
    impl_type: Option<String>,
    body: (usize, usize),
}

/// `impl` blocks as `(type name, token range)`.
fn scan_impls(file: &SourceFile) -> Vec<(String, (usize, usize))> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = skip_generics(toks, i + 1);
        // Header runs to the opening brace; the implemented type is the
        // first path ident after `for` when present (trait impls), else
        // the first ident of the header (inherent impls).
        let mut first: Option<String> = None;
        let mut after_for: Option<String> = None;
        let mut saw_for = false;
        while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
            let t = &toks[j];
            if t.is_ident("for") {
                saw_for = true;
            } else if t.kind == TokKind::Ident && !t.is_ident("where") && !t.is_ident("dyn") {
                if saw_for && after_for.is_none() {
                    after_for = Some(t.text.clone());
                }
                if first.is_none() {
                    first = Some(t.text.clone());
                }
                // Path types: keep the *last* segment after `for`.
                if saw_for
                    && toks.get(j + 1).map(|t| t.is_punct(':')) == Some(true)
                    && toks.get(j + 2).map(|t| t.is_punct(':')) == Some(true)
                {
                    after_for = None; // a later segment will overwrite
                }
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(';') {
            i = j + 1;
            continue;
        }
        let Some(close) = matching_close(toks, j, '{', '}') else {
            break;
        };
        if let Some(name) = after_for.or(first) {
            out.push((name, (j, close)));
        }
        i = j + 1; // descend: nested impls don't exist, but fns do
    }
    out
}

fn scan_fns(files: &[&SourceFile]) -> Vec<FnDecl> {
    let mut out = Vec::new();
    for (file_idx, file) in files.iter().enumerate() {
        let impls = scan_impls(file);
        let toks = &file.toks;
        let mut i = 0usize;
        while i + 1 < toks.len() {
            if !(toks[i].is_ident("fn") && toks[i + 1].kind == TokKind::Ident) {
                i += 1;
                continue;
            }
            // Find the body `{` (or `;` for trait-method declarations).
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                j += 1;
            }
            if j >= toks.len() || toks[j].is_punct(';') {
                i = j + 1;
                continue;
            }
            let Some(close) = matching_close(toks, j, '{', '}') else {
                break;
            };
            let impl_type =
                impls.iter().find(|(_, (a, b))| *a < i && i < *b).map(|(name, _)| name.clone());
            out.push(FnDecl {
                name: toks[i + 1].text.clone(),
                file_idx,
                impl_type,
                body: (j, close),
            });
            // Continue *inside* the body too: nested fns are rare but
            // scanning them twice only duplicates edges, never loses one.
            i = j + 1;
        }
    }
    out
}

// ---------------------------------------------------------------------
// Acquisition + call extraction
// ---------------------------------------------------------------------

/// Backward scan for the start of the statement containing `k`: the token
/// after the closest preceding `;`, `{` or `}`.
fn stmt_start(toks: &[Token], k: usize, lo: usize) -> usize {
    let mut i = k;
    while i > lo {
        let t = &toks[i - 1];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            return i;
        }
        i -= 1;
    }
    lo
}

/// Walks the receiver chain backwards from the `.` before a lock method,
/// collecting the member idents (`self.index.shards[x]` → `[self, index,
/// shards]`), skipping over index/call argument lists.
fn receiver_chain(toks: &[Token], dot: usize, lo: usize) -> Vec<String> {
    let mut chain = Vec::new();
    let mut i = dot; // points at the '.'
    loop {
        if i == lo {
            break;
        }
        let mut p = i - 1;
        // Skip a trailing `[...]` or `(...)` group backwards.
        loop {
            let t = &toks[p];
            let (close, open) = if t.is_punct(']') {
                (']', '[')
            } else if t.is_punct(')') {
                (')', '(')
            } else {
                break;
            };
            let mut depth = 0isize;
            while p > lo {
                if toks[p].is_punct(close) {
                    depth += 1;
                } else if toks[p].is_punct(open) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p -= 1;
            }
            if p == lo {
                return chain;
            }
            p -= 1;
        }
        if toks[p].kind != TokKind::Ident {
            break;
        }
        chain.push(toks[p].text.clone());
        if p == lo || !toks[p - 1].is_punct('.') {
            break;
        }
        i = p - 1;
    }
    chain.reverse();
    chain
}

/// Builds the full acquisition graph for the workspace.
pub fn lock_graph(ws: &Workspace) -> LockGraph {
    let files: Vec<&SourceFile> = ws.files.iter().filter(|f| in_scope(&f.rel)).collect();

    let mut fields = Vec::new();
    for f in &files {
        scan_fields(f, &mut fields);
    }
    let struct_names: Vec<&str> = {
        let mut v: Vec<&str> = fields.iter().map(|f| f.strukt.as_str()).collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Lock decls: fields whose type mentions Mutex/RwLock.
    let locks: Vec<LockDecl> = fields
        .iter()
        .filter(|f| f.type_idents.iter().any(|t| t == "Mutex" || t == "RwLock"))
        .map(|f| LockDecl {
            id: format!("{}.{}", f.strukt, f.field),
            strukt: f.strukt.clone(),
            field: f.field.clone(),
            file: f.file.clone(),
            line: f.line,
        })
        .collect();
    // `self.other.field` resolution: a field's type resolves to the last
    // type ident naming a scanned struct (`Arc<SessionRegistry>` →
    // `SessionRegistry`).
    let field_type = |strukt: &str, field: &str| -> Option<String> {
        fields.iter().find(|f| f.strukt == strukt && f.field == field).and_then(|f| {
            f.type_idents.iter().rev().find(|t| struct_names.contains(&t.as_str())).cloned()
        })
    };
    let lock_of = |strukt: &str, field: &str| -> Option<usize> {
        locks.iter().position(|l| l.strukt == strukt && l.field == field)
    };
    let unique_lock_field = |field: &str| -> Option<usize> {
        let hits: Vec<usize> =
            locks.iter().enumerate().filter(|(_, l)| l.field == field).map(|(i, _)| i).collect();
        if hits.len() == 1 {
            Some(hits[0])
        } else {
            None
        }
    };

    let fns = scan_fns(&files);
    // Unique-name resolution: a call `foo(...)` resolves only when exactly
    // one scanned function is named `foo`.
    let fn_by_name = |name: &str| -> Option<usize> {
        let hits: Vec<usize> =
            fns.iter().enumerate().filter(|(_, f)| f.name == name).map(|(i, _)| i).collect();
        if hits.len() == 1 {
            Some(hits[0])
        } else {
            None
        }
    };

    struct Held {
        lock: usize,
        guard: Option<String>,
        depth: usize,
        temp: bool,
    }
    struct CallSite {
        callee: usize,
        held: Vec<usize>,
        file: String,
        line: u32,
    }

    let mut edges: Vec<LockEdge> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();
    // Direct lock sets per fn, then closed over calls to a fixpoint.
    let mut fn_locks: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];
    let mut fn_calls: Vec<Vec<usize>> = vec![Vec::new(); fns.len()];

    for (fi, fun) in fns.iter().enumerate() {
        let file = files[fun.file_idx];
        let toks = &file.toks;
        let (body_open, body_close) = fun.body;
        let mut held: Vec<Held> = Vec::new();
        let mut depth = 0usize;
        let mut k = body_open;
        while k <= body_close {
            let t = &toks[k];
            if t.is_punct('{') {
                depth += 1;
                k += 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                held.retain(|h| depth >= h.depth);
                k += 1;
                continue;
            }
            if t.is_punct(';') {
                held.retain(|h| !h.temp);
                k += 1;
                continue;
            }
            if file.test_mask[k] {
                k += 1;
                continue;
            }
            // Explicit guard release: `drop(guard)`.
            if t.is_ident("drop")
                && toks.get(k + 1).map(|t| t.is_punct('(')) == Some(true)
                && toks.get(k + 2).map(|t| t.kind == TokKind::Ident) == Some(true)
                && toks.get(k + 3).map(|t| t.is_punct(')')) == Some(true)
            {
                let name = &toks[k + 2].text;
                held.retain(|h| h.guard.as_deref() != Some(name.as_str()));
                k += 4;
                continue;
            }
            // Acquisition: `.lock()` / `.read()` / `.write()` with no args.
            let is_acquire = t.kind == TokKind::Ident
                && matches!(t.text.as_str(), "lock" | "read" | "write")
                && k > body_open
                && toks[k - 1].is_punct('.')
                && toks.get(k + 1).map(|t| t.is_punct('(')) == Some(true)
                && toks.get(k + 2).map(|t| t.is_punct(')')) == Some(true);
            if is_acquire {
                let start = stmt_start(toks, k, body_open);
                let chain = receiver_chain(toks, k - 1, start.saturating_sub(1));
                let mut resolved: Option<usize> = None;
                // Rightmost chain ident that is a lock field, qualified by
                // the ident before it.
                for (ci, name) in chain.iter().enumerate().rev() {
                    let qualifier = if ci > 0 { Some(chain[ci - 1].as_str()) } else { None };
                    let candidate = match qualifier {
                        Some("self") | None => fun
                            .impl_type
                            .as_deref()
                            .and_then(|t| lock_of(t, name))
                            .or_else(|| unique_lock_field(name)),
                        Some(q) => fun
                            .impl_type
                            .as_deref()
                            .and_then(|t| field_type(t, q))
                            .and_then(|qt| lock_of(&qt, name))
                            .or_else(|| unique_lock_field(name)),
                    };
                    if candidate.is_some() {
                        resolved = candidate;
                        break;
                    }
                }
                // Closure fallback: `shards.iter().map(|s| s.read()…)` —
                // the receiver is a closure binding, but the statement
                // names the lock field it iterates.
                if resolved.is_none() {
                    if let Some(t) = fun.impl_type.as_deref() {
                        resolved = toks[start..k]
                            .iter()
                            .filter(|t| t.kind == TokKind::Ident)
                            .find_map(|tok| lock_of(t, &tok.text));
                    }
                }
                if let Some(lock) = resolved {
                    for h in &held {
                        edges.push(LockEdge {
                            from: locks[h.lock].id.clone(),
                            to: locks[lock].id.clone(),
                            file: file.rel.clone(),
                            line: t.line,
                        });
                    }
                    if !fn_locks[fi].contains(&lock) {
                        fn_locks[fi].push(lock);
                    }
                    // Guard binding: the statement is `let [mut] NAME = …`.
                    let mut s = start;
                    let guard = if toks.get(s).map(|t| t.is_ident("let")) == Some(true) {
                        s += 1;
                        if toks.get(s).map(|t| t.is_ident("mut")) == Some(true) {
                            s += 1;
                        }
                        match (toks.get(s), toks.get(s + 1)) {
                            (Some(n), Some(eq)) if n.kind == TokKind::Ident && eq.is_punct('=') => {
                                Some(n.text.clone())
                            }
                            _ => None,
                        }
                    } else {
                        None
                    };
                    let temp = guard.is_none();
                    held.push(Held { lock, guard, depth, temp });
                }
                k += 3;
                continue;
            }
            // Call into a scanned function (by unique name, deny-listed
            // ubiquitous method names excluded).
            let is_call = t.kind == TokKind::Ident
                && toks.get(k + 1).map(|t| t.is_punct('(')) == Some(true)
                && !(k > 0 && toks[k - 1].is_ident("fn"))
                && !CALL_DENY.contains(&t.text.as_str());
            if is_call {
                if let Some(callee) = fn_by_name(&t.text) {
                    if callee != fi {
                        if !fn_calls[fi].contains(&callee) {
                            fn_calls[fi].push(callee);
                        }
                        if !held.is_empty() {
                            calls.push(CallSite {
                                callee,
                                held: held.iter().map(|h| h.lock).collect(),
                                file: file.rel.clone(),
                                line: t.line,
                            });
                        }
                    }
                }
            }
            k += 1;
        }
    }

    // Fixpoint: a function's lock set includes every callee's.
    let mut changed = true;
    while changed {
        changed = false;
        for fi in 0..fns.len() {
            let callees = fn_calls[fi].clone();
            for callee in callees {
                let callee_locks = fn_locks[callee].clone();
                for l in callee_locks {
                    if !fn_locks[fi].contains(&l) {
                        fn_locks[fi].push(l);
                        changed = true;
                    }
                }
            }
        }
    }
    for site in &calls {
        for &h in &site.held {
            for &l in &fn_locks[site.callee] {
                edges.push(LockEdge {
                    from: locks[h].id.clone(),
                    to: locks[l].id.clone(),
                    file: site.file.clone(),
                    line: site.line,
                });
            }
        }
    }

    LockGraph { locks, edges }
}

/// True when `to` can reach `from` through the edge set — i.e. adding
/// `from → to` closes a cycle.
fn reaches(edges: &[LockEdge], from: &str, to: &str) -> bool {
    let mut stack: Vec<&str> = vec![to];
    let mut seen: Vec<&str> = vec![to];
    while let Some(node) = stack.pop() {
        if node == from {
            return true;
        }
        for e in edges {
            if e.from == node && !seen.contains(&e.to.as_str()) {
                seen.push(&e.to);
                stack.push(&e.to);
            }
        }
    }
    false
}

/// Runs the L7 pass: extracts the graph and reports cycles and edges
/// into the engine lock.
pub fn pass_l7_lock_order(ws: &Workspace, out: &mut Vec<Finding>) {
    let graph = lock_graph(ws);
    let mut reported: Vec<(String, String)> = Vec::new();
    for edge in &graph.edges {
        let key = (edge.from.clone(), edge.to.clone());
        if reported.contains(&key) {
            continue;
        }
        let cyclic = edge.from == edge.to || reaches(&graph.edges, &edge.from, &edge.to);
        let into_engine =
            graph.locks.iter().any(|l| l.id == edge.to && is_engine(l) && edge.from != edge.to);
        if cyclic {
            reported.push(key);
            out.push(Finding {
                pass: "L7-lock-order",
                file: edge.file.clone(),
                line: edge.line,
                message: if edge.from == edge.to {
                    format!(
                        "re-acquires `{}` while already holding it: self-deadlock \
                         (drop the guard first)",
                        edge.to
                    )
                } else {
                    format!(
                        "acquiring `{}` while holding `{}` closes a lock-order cycle: \
                         `{}` is (transitively) acquired while `{}` is held elsewhere",
                        edge.to, edge.from, edge.from, edge.to
                    )
                },
            });
        } else if into_engine {
            reported.push(key);
            out.push(Finding {
                pass: "L7-lock-order",
                file: edge.file.clone(),
                line: edge.line,
                message: format!(
                    "acquires the engine lock `{}` while holding `{}`: the engine lock \
                     is the hierarchy root and must be taken first",
                    edge.to, edge.from
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn ws_of(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::from("/nonexistent"),
            files: files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect(),
            manifests: Vec::new(),
        }
    }

    const REGISTRY: &str = "
        pub struct SessionRegistry { inner: Mutex<Map<u64, u64>> }
        impl SessionRegistry {
            pub fn register(&self, sid: u64) { let mut inner = self.inner.lock(); inner.insert(sid, 0); }
            pub fn deregister(&self, sid: u64) { self.inner.lock().remove(&sid); }
            pub fn min_watermark(&self) -> Option<u64> { self.inner.lock().values().min() }
        }";

    const INDEX: &str = "
        pub struct SharedHookIndex { shards: Vec<RwLock<Map<u64, u64>>> }
        impl SharedHookIndex {
            pub fn occupancy(&self) -> usize { self.shards.iter().map(|s| s.read().len()).sum() }
            pub fn add(&self, k: u64) { self.shards[0].write().insert(k, k); }
        }";

    fn shared(body: &str) -> String {
        format!(
            "pub struct SharedStore {{ inner: Mutex<StoreInner>, registry: SessionRegistry, \
             index: SharedHookIndex }}\nimpl SharedStore {{ {body} }}"
        )
    }

    #[test]
    fn extracts_the_daemon_shaped_graph() {
        let shared_src = shared(
            "pub fn begin(&self) { let mut inner = self.inner.lock(); register(0); }
             pub fn stats(&self) -> usize { let inner = self.inner.lock(); occupancy(self) }",
        );
        // Call resolution is name-based; spell the calls unqualified so
        // the test exercises exactly that mechanism.
        let ws = ws_of(&[
            ("crates/daemon/src/registry.rs", REGISTRY),
            ("crates/daemon/src/index.rs", INDEX),
            ("crates/daemon/src/shared.rs", &shared_src),
        ]);
        let g = lock_graph(&ws);
        assert_eq!(g.locks.len(), 3, "{:?}", g.locks);
        assert!(g.has_edge("SharedStore.inner", "SessionRegistry.inner"), "{:?}", g.edges);
        assert!(g.has_edge("SharedStore.inner", "SharedHookIndex.shards"), "{:?}", g.edges);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn method_call_chain_resolves_through_field_types() {
        let shared_src = shared(
            "pub fn begin(&self) { let mut inner = self.inner.lock(); \
             self.registry.register(0); }",
        );
        let ws = ws_of(&[
            ("crates/daemon/src/registry.rs", REGISTRY),
            ("crates/daemon/src/shared.rs", &shared_src),
        ]);
        let g = lock_graph(&ws);
        assert!(g.has_edge("SharedStore.inner", "SessionRegistry.inner"), "{:?}", g.edges);
    }

    #[test]
    fn qualified_foreign_lock_resolves_via_field_type_not_self() {
        // `self.registry.inner.lock()` must resolve to the *registry's*
        // lock even though the enclosing type also has an `inner` field.
        let shared_src = shared(
            "pub fn leak(&self) { let g = self.registry.inner.lock(); \
             let mut inner = self.inner.lock(); }",
        );
        let ws = ws_of(&[
            ("crates/daemon/src/registry.rs", REGISTRY),
            ("crates/daemon/src/shared.rs", &shared_src),
        ]);
        let g = lock_graph(&ws);
        assert!(g.has_edge("SessionRegistry.inner", "SharedStore.inner"), "{:?}", g.edges);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(
            out.iter().any(|f| f.message.contains("engine lock")),
            "holding registry while taking engine must be flagged: {out:?}"
        );
    }

    #[test]
    fn drop_releases_the_guard_before_reacquisition() {
        let shared_src = shared(
            "pub fn retry(&self) { loop { let mut inner = self.inner.lock(); drop(inner); \
             let mut inner = self.inner.lock(); drop(inner); } }",
        );
        let ws = ws_of(&[("crates/daemon/src/shared.rs", &shared_src)]);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(out.is_empty(), "drop() must release the guard: {out:?}");
    }

    #[test]
    fn reacquisition_without_drop_is_a_self_deadlock() {
        let shared_src =
            shared("pub fn stuck(&self) { let a = self.inner.lock(); let b = self.inner.lock(); }");
        let ws = ws_of(&[("crates/daemon/src/shared.rs", &shared_src)]);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].message.contains("self-deadlock"), "{}", out[0].message);
    }

    #[test]
    fn block_scope_ends_a_guard() {
        let shared_src = shared(
            "pub fn scoped(&self) { { let g = self.inner.lock(); } \
             let h = self.inner.lock(); }",
        );
        let ws = ws_of(&[("crates/daemon/src/shared.rs", &shared_src)]);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(out.is_empty(), "block end must release the guard: {out:?}");
    }

    #[test]
    fn cycles_across_functions_are_found() {
        let registry = "
            pub struct SessionRegistry { inner: Mutex<u32> }
            impl SessionRegistry {
                pub fn cross(&self, s: &SharedStore) { let g = self.inner.lock(); poke(s); }
            }";
        let shared_src = shared(
            "pub fn begin(&self) { let mut inner = self.inner.lock(); \
             self.registry.register_watermark(0); }
             pub fn register_watermark(&self, w: u64) { let g = self.registry.inner.lock(); }
             pub fn poke(&self) { let mut inner = self.inner.lock(); }",
        );
        // engine → registry (begin → register_watermark) and
        // registry → engine (cross → poke): a cycle.
        let ws = ws_of(&[
            ("crates/daemon/src/registry.rs", registry),
            ("crates/daemon/src/shared.rs", &shared_src),
        ]);
        let g = lock_graph(&ws);
        assert!(g.has_edge("SharedStore.inner", "SessionRegistry.inner"), "{:?}", g.edges);
        assert!(g.has_edge("SessionRegistry.inner", "SharedStore.inner"), "{:?}", g.edges);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(out.iter().any(|f| f.message.contains("cycle")), "{out:?}");
    }

    #[test]
    fn io_write_with_args_is_not_an_acquisition() {
        let src = "
            pub struct Writer { file: File }
            impl Writer {
                pub fn save(&mut self, buf: &[u8]) { self.file.write(buf); self.file.read(); }
            }";
        let ws = ws_of(&[("crates/core/src/io.rs", src)]);
        let g = lock_graph(&ws);
        assert!(g.locks.is_empty());
        assert!(g.edges.is_empty());
    }

    #[test]
    fn deny_listed_names_do_not_resolve() {
        // `v.len()` while holding the engine lock must NOT resolve to the
        // index's lock-taking `len`-alike; only the uniquely named
        // `occupancy` may.
        let index = "
            pub struct SharedHookIndex { shards: Vec<RwLock<u32>> }
            impl SharedHookIndex {
                pub fn len(&self) -> usize { self.shards.iter().map(|s| s.read().len()).sum() }
            }";
        let shared_src = shared(
            "pub fn stats(&self, v: &Vec<u32>) -> usize { \
             let inner = self.inner.lock(); v.len() }",
        );
        let ws = ws_of(&[
            ("crates/daemon/src/index.rs", index),
            ("crates/daemon/src/shared.rs", &shared_src),
        ]);
        let g = lock_graph(&ws);
        assert!(
            !g.has_edge("SharedStore.inner", "SharedHookIndex.shards"),
            "deny-listed `len` must not create an edge: {:?}",
            g.edges
        );
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "
            pub struct T { m: Mutex<u32> }
            #[cfg(test)]
            mod tests {
                fn nested(t: &super::T) { let a = t.m.lock(); let b = t.m.lock(); }
            }";
        let ws = ws_of(&[("crates/daemon/src/t.rs", src)]);
        let mut out = Vec::new();
        pass_l7_lock_order(&ws, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
